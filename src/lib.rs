//! # bridge-repro — umbrella crate
//!
//! A reproduction of *Bridge: A High-Performance File System for Parallel
//! Processors* (Dibble, Ellis, Scott; ICDCS 1988). This crate re-exports
//! the workspace layers; see `README.md` for the architecture and
//! `DESIGN.md` for the experiment index.
//!
//! * [`parsim`] — deterministic multiprocessor simulator (the Butterfly
//!   stand-in).
//! * [`simdisk`] — Wren-class simulated disks.
//! * [`efs`] — the Elementary File System (one instance per node).
//! * [`core`] — the Bridge Server, interleaved files, the three views,
//!   and redundancy (mirroring / rotating parity).
//! * [`tools`] — copy/filter/grep/summary/sort tools.
//! * [`baseline`] — §2's striped sets and storage arrays under one FS.
//! * [`model`] — the analytical companion (the paper's reference \[17\]).
//! * [`trace`] — virtual-time tracing: Chrome trace export and a metrics
//!   registry, observation-only by construction.

pub use bridge_baseline as baseline;
pub use bridge_core as core;
pub use bridge_efs as efs;
pub use bridge_model as model;
pub use bridge_tools as tools;
pub use bridge_trace as trace;
pub use parsim;
pub use simdisk;
