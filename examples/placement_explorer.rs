//! Exploring block placement: how round-robin, chunked, hashed, and
//! linked placements behave under sequential, random, and parallel access
//! — the trade-offs of the paper's section 3, observable.
//!
//! Run with: `cargo run --example placement_explorer`

use bridge_core::{
    BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec, PlacementSpec,
};
use parsim::{Ctx, SimDuration};

const BLOCKS: u64 = 256;

fn build_file(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    spec: PlacementSpec,
) -> (BridgeFileId, SimDuration) {
    let file = bridge
        .create(
            ctx,
            CreateSpec {
                placement: spec,
                size_hint: Some(BLOCKS),
                ..CreateSpec::default()
            },
        )
        .expect("create");
    let t0 = ctx.now();
    for i in 0..BLOCKS {
        bridge
            .seq_write(ctx, file, format!("block {i}").into_bytes())
            .expect("write");
    }
    (file, ctx.now() - t0)
}

fn main() {
    let p = 8;
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(p));
    let server = machine.server;

    sim.block_on(machine.frontend, "explorer", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        println!("placement        write/blk  seqread/blk  randread/blk (64 probes)");
        for (name, spec) in [
            ("round-robin", PlacementSpec::RoundRobin),
            ("chunked", PlacementSpec::Chunked),
            ("hashed", PlacementSpec::Hashed { seed: 1 }),
            ("linked", PlacementSpec::Linked),
        ] {
            let (file, wt) = build_file(ctx, &mut bridge, spec);

            bridge.open(ctx, file).expect("open");
            let t0 = ctx.now();
            while bridge.seq_read(ctx, file).expect("read").is_some() {}
            let seq = ctx.now() - t0;

            let t0 = ctx.now();
            for k in 0..64u64 {
                let block = (k * 97) % BLOCKS; // scattered probes
                bridge.rand_read(ctx, file, block).expect("rand read");
            }
            let rand = ctx.now() - t0;

            println!(
                "{name:<16} {:>8.1}ms {:>10.1}ms {:>12.1}ms",
                wt.as_millis_f64() / BLOCKS as f64,
                seq.as_millis_f64() / BLOCKS as f64,
                rand.as_millis_f64() / 64.0,
            );
            bridge.delete(ctx, file).expect("delete");
        }
        println!();
        println!("Notes:");
        println!(" * linked files pay an extra read-modify-write per append (pointer fix-up)");
        println!("   and a chain walk per random access — the paper's 'very slow random access'.");
        println!(" * strict placements all random-access in O(1); the differences appear under");
        println!("   *parallel* access, where only round-robin guarantees p-distinct nodes");
        println!("   (run `cargo bench -p bridge-bench --bench ablate_placement`).");
    });
}
