//! Quickstart: stand up a simulated 8-node Bridge machine, store a file
//! through the naive interface, and read it back — no knowledge of the
//! interleaving required.
//!
//! Run with: `cargo run --example quickstart`

use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec};

fn main() {
    // An 8-node machine with paper-faithful timing: Wren-class disks
    // (15 ms positioning), Butterfly-like interconnect.
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(8));
    let server = machine.server;

    sim.block_on(machine.frontend, "app", move |ctx| {
        let mut bridge = BridgeClient::new(server);

        // Create an interleaved file. Round-robin placement across all 8
        // LFS instances is the default.
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        println!("created {file}");

        // Write 100 blocks through the naive sequential interface.
        let t0 = ctx.now();
        for i in 0..100u32 {
            let data = format!("record {i:03}: the quick brown fox");
            bridge
                .seq_write(ctx, file, data.into_bytes())
                .expect("write");
        }
        let write_time = ctx.now() - t0;

        // Open (a hint, not a lock — Bridge has no close) and read back.
        let info = bridge.open(ctx, file).expect("open");
        println!(
            "file spans {} LFS instances, {} blocks total ({} per column)",
            info.nodes.len(),
            info.size,
            info.nodes[0].local_size
        );

        let t0 = ctx.now();
        let mut count = 0;
        while let Some(block) = bridge.seq_read(ctx, file).expect("read") {
            if count < 3 {
                let text = String::from_utf8_lossy(&block[..32]);
                println!("  block {count}: {text}");
            }
            count += 1;
        }
        let read_time = ctx.now() - t0;

        println!(
            "wrote 100 blocks in {write_time} of virtual time ({} per block)",
            write_time / 100
        );
        println!(
            "read  100 blocks in {read_time} of virtual time ({} per block)",
            read_time / 100
        );
        println!(
            "(sequential reads amortize disk positioning through full-track \
             buffering,\n which is why they are far cheaper than the 15 ms disk latency)"
        );

        let freed = bridge.delete(ctx, file).expect("delete");
        println!("deleted {freed} blocks");
    });
}
