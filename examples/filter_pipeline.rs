//! A filter pipeline built from copy-tool variants: encrypt a file, then
//! decrypt the ciphertext, then run a lexical classifier — each stage an
//! O(n/p + log p) one-to-one filter running where the data lives.
//!
//! Run with: `cargo run --example filter_pipeline`

use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec};
use bridge_tools::{copy_with, summarize, transforms, ToolOptions};

fn main() {
    let p = 8;
    let blocks = 512u64;
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(p));
    let server = machine.server;

    sim.block_on(machine.frontend, "pipeline", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let opts = ToolOptions::default();

        let plain = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..blocks {
            let mut line = format!("Document line {i:05}: Attack at dawn 0600 hours.");
            line.truncate(80);
            let mut bytes = line.into_bytes();
            bytes.resize(80, b' ');
            let block: Vec<u8> = bytes.iter().cycle().take(960).copied().collect();
            bridge.seq_write(ctx, plain, block).expect("write");
        }
        let before = summarize(ctx, &mut bridge, plain, &opts).expect("summary");

        let key = b"butterfly".to_vec();
        let (cipher, enc_stats) = copy_with(
            ctx,
            &mut bridge,
            plain,
            transforms::xor_cipher(key.clone()),
            &opts,
        )
        .expect("encrypt");
        println!(
            "encrypted {} blocks in {}",
            enc_stats.blocks, enc_stats.elapsed
        );

        let mid = summarize(ctx, &mut bridge, cipher, &opts).expect("summary");
        assert_ne!(before.checksum, mid.checksum, "ciphertext differs");

        let (restored, dec_stats) =
            copy_with(ctx, &mut bridge, cipher, transforms::xor_cipher(key), &opts)
                .expect("decrypt");
        println!(
            "decrypted {} blocks in {}",
            dec_stats.blocks, dec_stats.elapsed
        );

        let after = summarize(ctx, &mut bridge, restored, &opts).expect("summary");
        assert_eq!(before, after, "decrypt(encrypt(x)) == x");
        println!("round trip verified: checksum {:#018x}", after.checksum);

        // A lexical pass over fixed-length lines, as the paper suggests.
        let (lexed, lex_stats) =
            copy_with(ctx, &mut bridge, plain, transforms::lex_classes(80), &opts).expect("lex");
        println!("lexed {} blocks in {}", lex_stats.blocks, lex_stats.elapsed);
        bridge.open(ctx, lexed).expect("open");
        let first = bridge.seq_read(ctx, lexed).expect("read").expect("block");
        println!(
            "first classified line: {}",
            String::from_utf8_lossy(&first[..48])
        );

        // Cleanup in one parallel wave.
        let freed = bridge
            .delete_many(ctx, vec![plain, cipher, restored, lexed])
            .expect("delete");
        println!("cleaned up {freed} blocks");
    });
}
