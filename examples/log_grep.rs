//! Searching a large log file: the naive interface vs the grep *tool*.
//!
//! The tool exports the search to the nodes that hold the data, so only
//! matches cross the interconnect — the paper's central argument for
//! letting applications become part of the file system.
//!
//! Run with: `cargo run --example log_grep`

use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec};
use bridge_tools::{grep, ToolOptions};

fn main() {
    let p = 8;
    let blocks = 1024u64; // a 1 MB log
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(p));
    let server = machine.server;

    sim.block_on(machine.frontend, "grep-app", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");

        // 12 fixed-length 80-byte log lines per block; every 37th block
        // contains the token we will hunt for.
        for (i, block) in make_log(blocks).into_iter().enumerate() {
            let _ = i;
            bridge.seq_write(ctx, file, block).expect("write");
        }

        // Naive scan: every block crosses the interconnect to this client.
        let t0 = ctx.now();
        bridge.open(ctx, file).expect("open");
        let mut naive_hits = 0;
        while let Some(block) = bridge.seq_read(ctx, file).expect("read") {
            naive_hits += block.windows(5).filter(|w| w == b"PANIC").count();
        }
        let naive_time = ctx.now() - t0;

        // Tool: per-node scanners; only the match list comes back.
        let t0 = ctx.now();
        let hits = grep(
            ctx,
            &mut bridge,
            file,
            b"PANIC".to_vec(),
            &ToolOptions::default(),
        )
        .expect("grep tool");
        let tool_time = ctx.now() - t0;

        assert_eq!(hits.len(), naive_hits, "both methods agree");
        println!(
            "log: {blocks} blocks across {p} nodes; {} PANIC lines",
            hits.len()
        );
        println!("first hits: {:?}", &hits[..3.min(hits.len())]);
        println!("naive client-side scan: {naive_time}");
        println!("grep tool (code to data): {tool_time}");
        println!(
            "tool speedup: {:.1}x",
            naive_time.as_secs_f64() / tool_time.as_secs_f64()
        );
    });
}

fn make_log(blocks: u64) -> Vec<Vec<u8>> {
    (0..blocks)
        .map(|i| {
            let mut block = Vec::with_capacity(960);
            for line_no in 0..12 {
                let level = if i % 37 == 0 && line_no == 5 {
                    "PANIC"
                } else if i % 5 == 0 {
                    "WARN"
                } else {
                    "INFO"
                };
                let mut line = format!(
                    "2026-07-06T12:{:02}:{:02} {level} unit=fs event={}",
                    (i / 60) % 60,
                    i % 60,
                    i * 12 + line_no
                );
                line.truncate(80);
                let mut bytes = line.into_bytes();
                bytes.resize(80, b' ');
                block.extend_from_slice(&bytes);
            }
            block
        })
        .collect()
}
