//! Fault tolerance: the paper's §6 worry, played out.
//!
//! "Interleaved files … are inherently intolerant of faults. A failure
//! anywhere in the system is fatal; it ruins every file." This example
//! kills a node under three files — unprotected, mirrored, and
//! parity-protected — then repairs the redundant ones after the node
//! returns. Machine state between phases is printed through the shared
//! health-snapshot renderer (the same code path as `bridgetop`), fed by
//! in-band `GetHealth` polls of the live server.
//!
//! Run with: `cargo run --example fault_tolerance`

use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, Redundancy};
use bridge_efs::LfsFailControl;
use bridge_trace::render_snapshot;
use parsim::SimDuration;

fn main() {
    let p = 8;
    let blocks = 64u64;
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(p));
    let server = machine.server;
    let victim = machine.lfs[3];
    let other = machine.lfs[6];

    sim.block_on(machine.frontend, "app", move |ctx| {
        let mut bridge = BridgeClient::new(server);

        // Three files with the same contents, three protection levels.
        let mut files = Vec::new();
        for (name, redundancy) in [
            ("unprotected", Redundancy::None),
            ("mirrored", Redundancy::Mirror),
            ("parity", Redundancy::parity()),
        ] {
            let t0 = ctx.now();
            let file = bridge
                .create(
                    ctx,
                    CreateSpec {
                        redundancy,
                        ..CreateSpec::default()
                    },
                )
                .expect("create");
            for i in 0..blocks {
                bridge
                    .seq_write(ctx, file, format!("precious record {i:04}").into_bytes())
                    .expect("write");
            }
            println!(
                "{name:<12} wrote {blocks} blocks in {} ({} capacity)",
                ctx.now() - t0,
                match redundancy {
                    Redundancy::None => "1.00x".to_string(),
                    Redundancy::Mirror => "2.00x".to_string(),
                    Redundancy::Parity { .. } => format!("{:.2}x", p as f64 / (p - 1) as f64),
                }
            );
            files.push((name, file));
        }

        // Node 3 fails.
        println!("\n*** node 3 fails ***\n");
        ctx.send(victim, LfsFailControl { failed: true });
        ctx.delay(SimDuration::from_millis(1));

        for &(name, file) in &files {
            let mut ok = 0u64;
            let mut lost = 0u64;
            for b in 0..blocks {
                match bridge.rand_read(ctx, file, b) {
                    Ok(data) => {
                        assert_eq!(&data[..16], b"precious record ");
                        ok += 1;
                    }
                    Err(_) => lost += 1,
                }
            }
            println!("{name:<12} {ok}/{blocks} blocks readable, {lost} lost");
        }
        let health = bridge.get_health(ctx).expect("health");
        println!("\n{}", render_snapshot(&health));

        // The node comes back blank for what it missed; rebuild repairs.
        println!("*** node 3 revived; rebuilding redundant files ***\n");
        ctx.send(victim, LfsFailControl { failed: false });
        ctx.delay(SimDuration::from_millis(1));
        for &(name, file) in &files[1..] {
            let repaired = bridge.rebuild(ctx, file).expect("rebuild");
            println!("{name:<12} rebuild checked the file, repaired {repaired} components");
        }

        // A different node can now fail without loss.
        println!("\n*** a different node (6) fails ***\n");
        ctx.send(other, LfsFailControl { failed: true });
        ctx.delay(SimDuration::from_millis(1));
        for &(name, file) in &files[1..] {
            let t0 = ctx.now();
            bridge.open(ctx, file).expect("open");
            let mut n = 0;
            while bridge.seq_read(ctx, file).expect("read").is_some() {
                n += 1;
            }
            println!(
                "{name:<12} all {n} blocks verified in {} (degraded reads)",
                ctx.now() - t0
            );
        }
        let health = bridge.get_health(ctx).expect("health");
        println!("\n{}", render_snapshot(&health));
    });
}
