//! Trace audit of a p = 4 copy: run the Table-3 copy workload with the
//! trace collector installed, export a Chrome trace (load it at
//! <https://ui.perfetto.dev>), validate it, and reconcile the trace's disk
//! spans against each disk's own `DiskStats` counters — the trace is only
//! trustworthy if the two bookkeeping paths agree exactly.
//!
//! Run with: `cargo run --release --example trace_copy [out.json]`
//! (default output `target/trace_copy.json`). Exits nonzero if the trace
//! fails validation or disagrees with the disk counters.

use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec};
use bridge_efs::{LfsClient, LfsData, LfsOp};
use bridge_tools::{copy, ToolOptions};
use bridge_trace::{chrome_trace_json, validate_chrome_trace, Metrics, TraceCollector};
use simdisk::DiskStats;
use std::process::ExitCode;

const P: u32 = 4;
const BLOCKS: u64 = 512;

fn main() -> ExitCode {
    let collector = TraceCollector::install();
    let mut config = BridgeConfig::paper(P);
    config.tracer = Some(collector.as_tracer());
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let lfs = machine.lfs.clone();

    let (elapsed, disks) = sim.block_on(machine.frontend, "trace-copy", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..BLOCKS {
            let record = format!("record {i:06}").into_bytes();
            bridge.seq_write(ctx, src, record).expect("write");
        }
        let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
        assert_eq!(stats.blocks, BLOCKS);
        // Pull each disk's own counters through the control op, so the
        // reconciliation below compares two independent bookkeeping paths.
        let mut client = LfsClient::new();
        let disks: Vec<DiskStats> = lfs
            .iter()
            .map(
                |&proc| match client.call(ctx, proc, LfsOp::DiskStats).expect("stats") {
                    LfsData::DiskCounters(s) => s,
                    other => panic!("unexpected DiskStats reply {other:?}"),
                },
            )
            .collect();
        (stats.elapsed, disks)
    });

    let data = collector.take();
    println!(
        "p={P} copy of {BLOCKS} blocks: {elapsed} virtual, {} spans, {} flows",
        data.spans.len(),
        data.flows.len()
    );
    print!(
        "{}",
        Metrics::from_trace(&data).with_kernel(sim.stats()).render()
    );

    // Export + validate the Chrome trace.
    let json = chrome_trace_json(&data);
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/trace_copy.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("FAIL: cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("FAIL: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    let summary = match validate_chrome_trace(&json) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("FAIL: exported trace is invalid: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "wrote {out}: {} events ({} spans, {} flows), {} named processes",
        summary.events,
        summary.spans,
        summary.flows,
        summary.named_pids.len()
    );

    // Reconciliation: the disks' track-load counters must equal the loads
    // visible in the trace — every single-block read miss is one
    // "disk.read.load" span, and each batched read reports its misses in
    // the "track_loads" arg of its "disk.read_run" span.
    let counter_loads: u64 = disks.iter().map(|s| s.track_loads).sum();
    let span_loads: u64 = data
        .spans_in("disk")
        .map(|s| match s.name.as_str() {
            "disk.read.load" => 1,
            "disk.read_run" => s.arg("track_loads").unwrap_or(0),
            _ => 0,
        })
        .sum();
    let counter_busy: u64 = disks.iter().map(|s| s.busy.as_nanos()).sum();
    let span_busy: u64 = data
        .spans_in("disk")
        .map(|s| s.arg("busy").unwrap_or(0))
        .sum();
    println!(
        "reconcile: track_loads counters={counter_loads} trace={span_loads}; \
         busy counters={counter_busy}ns trace={span_busy}ns"
    );
    if counter_loads != span_loads {
        eprintln!("FAIL: trace track loads disagree with DiskStats");
        return ExitCode::FAILURE;
    }
    if counter_busy != span_busy {
        eprintln!("FAIL: trace disk busy time disagrees with DiskStats");
        return ExitCode::FAILURE;
    }
    println!("OK: trace reconciles with disk counters");
    ExitCode::SUCCESS
}
