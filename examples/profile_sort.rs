//! Causal profile of the two-phase parallel merge sort: run the paper's
//! sort tool traced, attribute every operation's latency to a category
//! (`disk.position`, `lfs.queue_wait`, `interconnect`, ...), split the
//! attribution by phase (local external sorts vs token-passing merge),
//! and reconcile the profiler's arithmetic against the independent
//! bookkeeping paths — `DiskStats` counters and the scheduler's
//! `RunStats` — exactly.
//!
//! The disk reconciliation is an exact accounting identity, not a bound:
//! every nanosecond of `DiskStats` busy time is either attributed to some
//! operation's critical path or counted as *fan-out shadow* — disk work
//! that ran concurrently on several disks under one parallel command
//! (`create`'s agent tree, `delete_many`), where wall-clock attribution
//! can only credit one disk at a time. The shadow is recomputed here from
//! the raw trace by an independent request-matching pass, so
//!
//! ```text
//! profiler disk attribution + fan-out shadow == DiskStats busy   (0 ns slack)
//! ```
//!
//! Run with: `cargo run --release --example profile_sort [out.json]`
//! (default output `target/profile_sort.json`). Exits nonzero if the
//! causality DAG is broken, any sum is off by a nanosecond, or any
//! operation's `untraced` bucket exceeds 5% of its latency — the same
//! gate CI's profile-smoke step enforces.

use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec};
use bridge_efs::{LfsClient, LfsData, LfsOp};
use bridge_tools::{sort, SortOptions, SortStats};
use bridge_trace::{
    validate_causality, validate_profile_json, Breakdown, Category, ProfileReport, TraceCollector,
    TraceData,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simdisk::DiskStats;
use std::collections::{HashMap, HashSet};
use std::process::ExitCode;

const P: u32 = 4;
const RECORDS: u64 = 256;
const BINS: usize = 48;

fn main() -> ExitCode {
    let collector = TraceCollector::install();
    let mut config = BridgeConfig::paper(P);
    config.tracer = Some(collector.as_tracer());
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let lfs = machine.lfs.clone();

    let (stats, disks) = sim.block_on(machine.frontend, "profile-sort", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        let mut rng = SmallRng::seed_from_u64(1988);
        for _ in 0..RECORDS {
            let key: u64 = rng.random_range(0..1_000_000);
            let mut rec = key.to_be_bytes().to_vec();
            rec.extend_from_slice(format!(" payload for key {key:06}").as_bytes());
            bridge.seq_write(ctx, file, rec).expect("write");
        }
        // A small in-core buffer so phase 1 does real external merging.
        let opts = SortOptions {
            in_core_records: 32,
            ..SortOptions::default()
        };
        let (_, stats) = sort(ctx, &mut bridge, file, &opts).expect("sort");
        assert_eq!(stats.records, RECORDS);
        // Pull each disk's own counters so the reconciliation below
        // compares the profiler against independent bookkeeping.
        let mut client = LfsClient::new();
        let disks: Vec<DiskStats> = lfs
            .iter()
            .map(
                |&proc| match client.call(ctx, proc, LfsOp::DiskStats).expect("stats") {
                    LfsData::DiskCounters(s) => s,
                    other => panic!("unexpected DiskStats reply {other:?}"),
                },
            )
            .collect();
        (stats, disks)
    });

    let run = sim.stats();
    let data = collector.take();
    println!(
        "p={P} sort of {RECORDS} records: {} virtual, {} spans, {} flows",
        stats.total,
        data.spans.len(),
        data.flows.len()
    );

    // The DAG must close: every successful client op reachable from its
    // request span through to its reply span.
    if let Err(e) = validate_causality(&data) {
        eprintln!("FAIL: causality audit: {e}");
        return ExitCode::FAILURE;
    }

    let report = ProfileReport::from_trace(&data, BINS);
    print!("{}", report.render());

    // Phase-by-phase attribution: the sort tool brackets each phase with
    // a span on the controller, so its window selects the phase's ops.
    let phase = |name: &str| {
        data.spans
            .iter()
            .find(|s| s.cat == "tool" && s.name == name)
            .map(|s| (s.start.as_nanos(), s.end.as_nanos()))
    };
    let Some(local) = phase("tool.sort.local") else {
        eprintln!("FAIL: trace has no tool.sort.local span");
        return ExitCode::FAILURE;
    };
    let Some(merge) = phase("tool.sort.merge") else {
        eprintln!("FAIL: trace has no tool.sort.merge span");
        return ExitCode::FAILURE;
    };
    print_phase(
        "phase 1: local external sorts",
        &report.profile.breakdown_between(local.0, local.1),
        local,
    );
    print_phase(
        "phase 2: token-passing merge",
        &report.profile.breakdown_between(merge.0, merge.1),
        merge,
    );

    if !reconcile(&report, run.end_time.as_nanos(), &stats, &disks, &data) {
        return ExitCode::FAILURE;
    }

    // Every op must be essentially fully explained; CI fails the run on
    // the same threshold.
    let worst = report.profile.worst_untraced_fraction();
    println!(
        "worst untraced fraction across {} ops: {:.4}",
        report.profile.ops.len(),
        worst
    );
    if worst > 0.05 {
        eprintln!("FAIL: an op has more than 5% untraced latency");
        return ExitCode::FAILURE;
    }

    // Export the report and audit the artifact's own arithmetic.
    let json = report.to_json();
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/profile_sort.json".to_string());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("FAIL: cannot create {}: {e}", parent.display());
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("FAIL: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = validate_profile_json(&json) {
        eprintln!("FAIL: exported report is invalid: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out}: {} bytes", json.len());
    println!("OK: profile reconciles with DiskStats and RunStats");
    ExitCode::SUCCESS
}

/// Prints one phase's summed per-op attribution as a table.
fn print_phase(label: &str, bd: &Breakdown, window: (u64, u64)) {
    println!(
        "{label}: {:.3} ms wall, {:.3} ms summed op latency",
        (window.1 - window.0) as f64 / 1e6,
        bd.total() as f64 / 1e6
    );
    let total = bd.total().max(1);
    for (cat, ns) in bd.iter() {
        if ns > 0 {
            println!(
                "  {:<16} {:>14} ns  {:>5.1}%",
                cat.label(),
                ns,
                ns as f64 * 100.0 / total as f64
            );
        }
    }
}

/// Audits the profiler's sums against the run's independent bookkeeping.
/// Every check is exact — zero slack beyond the reported `untraced`
/// buckets and the separately-computed fan-out shadow.
fn reconcile(
    report: &ProfileReport,
    end_nanos: u64,
    stats: &SortStats,
    disks: &[DiskStats],
    data: &TraceData,
) -> bool {
    let mut ok = true;

    // 1. Each op's categories partition its latency exactly.
    for op in &report.profile.ops {
        if op.breakdown.total() != op.latency_nanos() {
            eprintln!(
                "FAIL: op {} (id {}) categories sum to {} ns, latency is {} ns",
                op.name,
                op.id,
                op.breakdown.total(),
                op.latency_nanos()
            );
            ok = false;
        }
    }

    // 2. The critical path partitions the makespan, and the makespan is
    // the scheduler's own end time.
    let cp = &report.profile.critical_path;
    if cp.breakdown.total() != cp.makespan_nanos {
        eprintln!(
            "FAIL: critical path sums to {} ns over a {} ns makespan",
            cp.breakdown.total(),
            cp.makespan_nanos
        );
        ok = false;
    }
    if cp.makespan_nanos != end_nanos {
        eprintln!(
            "FAIL: profiler makespan {} ns != RunStats end_time {end_nanos} ns",
            cp.makespan_nanos
        );
        ok = false;
    }

    // 3. The phase spans' wall times agree with the tool's own phase
    // timings (two independent measurements of the same barriers).
    let tool_total: u64 = data
        .spans
        .iter()
        .filter(|s| s.cat == "tool" && (s.name == "tool.sort.local" || s.name == "tool.sort.merge"))
        .map(|s| s.dur_nanos())
        .sum();
    let stats_total = stats.local_sort.as_nanos() + stats.merge.as_nanos();
    if tool_total != stats_total {
        eprintln!("FAIL: phase spans cover {tool_total} ns, SortStats reports {stats_total} ns");
        ok = false;
    }

    // 4. Disk time, exactly. First the two recording paths must agree:
    // the devices' own busy counters vs the trace spans' position +
    // transfer args.
    let counter_busy: u64 = disks.iter().map(|s| s.busy.as_nanos()).sum();
    let span_busy: u64 = data
        .spans_in("disk")
        .filter_map(|s| Some(s.arg("position")? + s.arg("transfer").unwrap_or(0)))
        .sum();
    if counter_busy != span_busy {
        eprintln!(
            "FAIL: disk span args carry {span_busy} ns, DiskStats counters say {counter_busy} ns"
        );
        ok = false;
    }

    // Then the accounting identity: the profiler's per-op disk buckets
    // plus the fan-out shadow (computed below, independently) must equal
    // the counters. Per op the profiler may only under-attribute — the
    // shadow is concurrent disk work that cannot fit in a wall-time
    // partition — never over-attribute.
    let expected = expected_disk_per_op(data);
    let mut shadow = 0u64;
    let mut claimed: HashMap<(usize, u64), u64> = HashMap::new();
    for op in &report.profile.ops {
        let got =
            op.breakdown.get(Category::DiskPosition) + op.breakdown.get(Category::DiskTransfer);
        let want = expected.get(&(op.client, op.id)).copied().unwrap_or(0);
        if got > want {
            eprintln!(
                "FAIL: op {} (id {}) attributes {got} ns of disk time but only {want} ns \
                 of disk service ran on its behalf",
                op.name, op.id
            );
            ok = false;
        } else {
            shadow += want - got;
        }
        *claimed.entry((op.client, op.id)).or_default() += 1;
    }
    let totals = report.profile.total();
    let prof_disk = totals.get(Category::DiskPosition) + totals.get(Category::DiskTransfer);
    println!(
        "reconcile disk: counters busy={counter_busy}ns = attributed {prof_disk}ns \
         + fan-out shadow {shadow}ns"
    );
    if prof_disk + shadow != counter_busy {
        eprintln!(
            "FAIL: attributed {prof_disk} + shadow {shadow} = {} ns, counters say {counter_busy} ns",
            prof_disk + shadow
        );
        ok = false;
    }
    ok
}

/// Recomputes, straight from the raw trace with none of the profiler's
/// machinery, how much disk service ran on behalf of each top-level
/// client operation: every disk span is matched to its covering LFS
/// service span, the service span to the client request it answered (by
/// server pid, request id, and the queue-wait span's client arg), and
/// requests issued by the Bridge Server mid-dispatch are folded into the
/// client command that triggered them.
fn expected_disk_per_op(data: &TraceData) -> HashMap<(usize, u64), u64> {
    struct Op {
        pid: usize,
        id: u64,
        server: usize,
        s: u64,
        e: u64,
    }
    let mut ops: Vec<Op> = Vec::new();
    for s in &data.spans {
        if s.cat == "client" {
            ops.push(Op {
                pid: s.pid,
                id: s.arg("id").unwrap_or(u64::MAX),
                server: s.arg("server").unwrap_or(u64::MAX) as usize,
                s: s.start.as_nanos(),
                e: s.end.as_nanos(),
            });
        }
    }
    // LFS service spans (pid, id, window) and queue-wait keys.
    let mut services: Vec<(usize, u64, u64, u64)> = Vec::new();
    let mut queue_waits: HashSet<(usize, u64, usize)> = HashSet::new();
    let mut bridge_svcs: Vec<(u64, usize, u64, u64)> = Vec::new();
    let mut bridge_pids: HashSet<usize> = HashSet::new();
    for s in &data.spans {
        match s.cat {
            "lfs" if s.name == "lfs.queue_wait" => {
                if let (Some(id), Some(client)) = (s.arg("id"), s.arg("client")) {
                    queue_waits.insert((s.pid, id, client as usize));
                }
            }
            "lfs" => services.push((
                s.pid,
                s.arg("id").unwrap_or(u64::MAX),
                s.start.as_nanos(),
                s.end.as_nanos(),
            )),
            "bridge" => {
                bridge_pids.insert(s.pid);
                if let (Some(id), Some(client)) = (s.arg("id"), s.arg("client")) {
                    bridge_svcs.push((id, client as usize, s.start.as_nanos(), s.end.as_nanos()));
                }
            }
            _ => {}
        }
    }
    // Disk span -> covering service -> claiming client op.
    let mut direct: HashMap<(usize, u64), u64> = HashMap::new();
    for d in data.spans_in("disk") {
        let busy = d.arg("position").unwrap_or(0) + d.arg("transfer").unwrap_or(0);
        let Some(&(pid, id, s0, s1)) = services.iter().find(|&&(pid, _, s0, s1)| {
            pid == d.pid && s0 <= d.start.as_nanos() && d.end.as_nanos() <= s1
        }) else {
            continue;
        };
        if let Some(o) = ops.iter().find(|o| {
            o.id == id
                && o.server == pid
                && o.s <= s0
                && s1 <= o.e
                && queue_waits.contains(&(pid, id, o.pid))
        }) {
            *direct.entry((o.pid, o.id)).or_default() += busy;
        }
    }
    // Fold requests the Bridge Server issued while dispatching a command
    // into that command's own op (mirroring the profiler's nesting).
    let mut top: HashMap<(usize, u64), u64> = HashMap::new();
    for ((pid, id), busy) in direct {
        if bridge_pids.contains(&pid) {
            let op = ops.iter().find(|o| o.pid == pid && o.id == id);
            let cover = op.and_then(|o| {
                bridge_svcs
                    .iter()
                    .find(|&&(_, _, b0, b1)| b0 <= o.s && o.e <= b1)
            });
            if let Some(&(bid, bclient, _, _)) = cover {
                *top.entry((bclient, bid)).or_default() += busy;
                continue;
            }
        }
        *top.entry((pid, id)).or_default() += busy;
    }
    top
}
