//! The >32-processor scaling curves (EXPERIMENTS.md §A12): copy and
//! merge-sort the paper's 10 240-record file on machines far past the
//! largest Butterfly the paper measured, and report where Bridge-the-
//! design stops scaling. Runs on the run-to-completion engine — a p=1024
//! machine simulates in seconds; it was intractable on one-OS-thread-
//! per-process. The first probed machine's end-of-run state is printed
//! through the shared health-snapshot renderer (the same code path as
//! `bridgetop`).
//!
//! ```text
//! cargo run --release --example scale_probe -- [blocks] [p ...]
//! ```
//!
//! Defaults: the paper's 10 240 blocks at p ∈ {32, 64, 128, 256, 512,
//! 1024}.

use bridge_bench::{records_per_second, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, HealthSnapshot};
use bridge_tools::{copy, sort, SortOptions, SortStats, ToolOptions};
use bridge_trace::render_snapshot;
use parsim::SimDuration;
use std::time::Instant;

fn build(p: u32) -> (parsim::Simulation, BridgeMachine) {
    BridgeMachine::build(&BridgeConfig::paper(p))
}

/// The machine's quiescence dashboard frame: every layer's gauges plus
/// the kernel's own counters — the one code path for rendering machine
/// state, shared with `bridgetop` and `fault_tolerance`.
fn final_frame(sim: &parsim::Simulation, machine: &BridgeMachine) -> HealthSnapshot {
    let stats = sim.stats();
    machine
        .telemetry
        .as_ref()
        .expect("paper config arms telemetry")
        .snapshot(stats.end_time, Some(stats))
}

fn run_copy(p: u32, blocks: u64) -> (SimDuration, HealthSnapshot, f64) {
    let t0 = Instant::now();
    let (mut sim, machine) = build(p);
    let server = machine.server;
    let elapsed = sim.block_on(machine.frontend, "probe", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, blocks, 42);
        let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
        assert_eq!(stats.blocks, blocks);
        stats.elapsed
    });
    let frame = final_frame(&sim, &machine);
    (elapsed, frame, t0.elapsed().as_secs_f64())
}

fn run_sort(p: u32, blocks: u64) -> (SortStats, f64) {
    let t0 = Instant::now();
    let (mut sim, machine) = build(p);
    let server = machine.server;
    let stats = sim.block_on(machine.frontend, "probe", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, blocks, 7);
        let (out, stats) = sort(ctx, &mut bridge, src, &SortOptions::default()).expect("sort");
        assert_eq!(bridge.open(ctx, out).expect("open").size, blocks);
        stats
    });
    (stats, t0.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<u64> = std::env::args()
        .skip(1)
        .filter_map(|s| s.parse().ok())
        .collect();
    let blocks = args.first().copied().unwrap_or(10 * 1024);
    let ps: Vec<u32> = if args.len() > 1 {
        args[1..].iter().map(|&p| p as u32).collect()
    } else {
        vec![32, 64, 128, 256, 512, 1024]
    };

    println!("## Scaling curves past p = 32 — {blocks}-record file\n");
    println!(
        "| p | Copy (virtual) | Copy rec/s | Sort local | Sort merge | Sort total | Host wall | Events |"
    );
    println!(
        "|---|----------------|------------|------------|------------|------------|-----------|--------|"
    );
    let mut first_frame = None;
    for &p in &ps {
        let (copy_t, frame, copy_wall) = run_copy(p, blocks);
        let (sort_stats, sort_wall) = run_sort(p, blocks);
        let events = frame.kernel.map_or(0, |k| k.events);
        println!(
            "| {p} | {:.1} s | {:.0} | {:.1} s | {:.1} s | {:.1} s | {:.1} s | {events} |",
            copy_t.as_secs_f64(),
            records_per_second(blocks, copy_t),
            sort_stats.local_sort.as_secs_f64(),
            sort_stats.merge.as_secs_f64(),
            sort_stats.total.as_secs_f64(),
            copy_wall + sort_wall,
        );
        if first_frame.is_none() {
            first_frame = Some((p, frame));
        }
    }
    if let Some((p, frame)) = first_frame {
        println!("\n### Copy machine at quiescence (p = {p})\n");
        print!("{}", render_snapshot(&frame));
    }
}
