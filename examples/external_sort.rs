//! Sorting a dataset that does not fit in any node's memory: the paper's
//! merge sort tool end to end, with phase timings.
//!
//! Run with: `cargo run --example external_sort`

use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec};
use bridge_tools::{sort, SortOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let p = 8;
    let records = 2048u64;
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(p));
    let server = machine.server;

    sim.block_on(machine.frontend, "sort-app", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");

        // Block-sized records with shuffled 8-byte keys.
        let mut rng = SmallRng::seed_from_u64(2026);
        for _ in 0..records {
            let key: u64 = rng.random_range(0..1_000_000);
            let mut rec = key.to_be_bytes().to_vec();
            rec.extend_from_slice(format!(" payload for key {key:06}").as_bytes());
            bridge.seq_write(ctx, file, rec).expect("write");
        }

        // Sort with a small in-core buffer so the local external merge
        // actually runs (the paper's c = 512 would swallow 256-record
        // columns whole).
        let opts = SortOptions {
            in_core_records: 64,
            ..SortOptions::default()
        };
        let (sorted, stats) = sort(ctx, &mut bridge, file, &opts).expect("sort");

        println!("sorted {} records on {p} nodes", stats.records);
        println!(
            "  local sort : {} ({} local merge passes)",
            stats.local_sort, stats.local_merge_passes
        );
        println!(
            "  merge      : {} ({} token-merge passes)",
            stats.merge, stats.merge_passes
        );
        println!("  total      : {}", stats.total);

        // Verify: keys ascend.
        bridge.open(ctx, sorted).expect("open");
        let mut prev = 0u64;
        let mut n = 0u64;
        while let Some(block) = bridge.seq_read(ctx, sorted).expect("read") {
            let key = u64::from_be_bytes(block[..8].try_into().expect("key"));
            assert!(key >= prev, "output must be sorted");
            prev = key;
            n += 1;
        }
        assert_eq!(n, records);
        println!("verified: {n} records in non-decreasing key order (max key {prev})");
    });
}
