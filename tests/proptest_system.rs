//! Property-based system tests: arbitrary operation sequences against a
//! whole Bridge machine behave like an in-memory model, for every strict
//! placement.

use bridge_repro::core::{
    BridgeClient, BridgeConfig, BridgeError, BridgeFileId, BridgeMachine, CreateSpec,
    PlacementSpec, BRIDGE_DATA,
};
use proptest::prelude::*;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Delete(u8),
    Append { slot: u8, byte: u8 },
    Overwrite { slot: u8, at: u16, byte: u8 },
    ReadSeqAll(u8),
    ReadRand { slot: u8, at: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let slot = 0u8..4;
    prop_oneof![
        slot.clone().prop_map(Op::Create),
        slot.clone().prop_map(Op::Delete),
        (slot.clone(), any::<u8>()).prop_map(|(slot, byte)| Op::Append { slot, byte }),
        (slot.clone(), 0u16..64, any::<u8>()).prop_map(|(slot, at, byte)| Op::Overwrite {
            slot,
            at,
            byte
        }),
        slot.clone().prop_map(Op::ReadSeqAll),
        (slot, 0u16..64).prop_map(|(slot, at)| Op::ReadRand { slot, at }),
    ]
}

fn block(byte: u8) -> Vec<u8> {
    vec![byte; 50]
}

fn padded(byte: u8) -> Vec<u8> {
    let mut b = block(byte);
    b.resize(BRIDGE_DATA, 0);
    b
}

fn run_ops(placement: PlacementSpec, ops: Vec<Op>) {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(3));
    let server = machine.server;
    sim.block_on(machine.frontend, "prop", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        // slot → (file id, model blocks)
        let mut model: HashMap<u8, (BridgeFileId, Vec<Vec<u8>>)> = HashMap::new();
        for op in ops {
            match op {
                Op::Create(slot) => {
                    if let Entry::Vacant(open_slot) = model.entry(slot) {
                        let file = bridge
                            .create(
                                ctx,
                                CreateSpec {
                                    placement,
                                    size_hint: Some(64),
                                    ..CreateSpec::default()
                                },
                            )
                            .unwrap();
                        open_slot.insert((file, Vec::new()));
                    }
                }
                Op::Delete(slot) => {
                    if let Some((file, blocks)) = model.remove(&slot) {
                        let freed = bridge.delete(ctx, file).unwrap();
                        assert_eq!(freed, blocks.len() as u64);
                    }
                }
                Op::Append { slot, byte } => {
                    if let Some((file, blocks)) = model.get_mut(&slot) {
                        let n = bridge.seq_write(ctx, *file, block(byte)).unwrap();
                        assert_eq!(n, blocks.len() as u64);
                        blocks.push(padded(byte));
                    }
                }
                Op::Overwrite { slot, at, byte } => {
                    if let Some((file, blocks)) = model.get_mut(&slot) {
                        if blocks.is_empty() {
                            continue;
                        }
                        let at = u64::from(at) % blocks.len() as u64;
                        bridge.rand_write(ctx, *file, at, block(byte)).unwrap();
                        blocks[at as usize] = padded(byte);
                    }
                }
                Op::ReadSeqAll(slot) => {
                    if let Some((file, blocks)) = model.get(&slot) {
                        bridge.open(ctx, *file).unwrap();
                        let mut got = Vec::new();
                        while let Some(b) = bridge.seq_read(ctx, *file).unwrap() {
                            got.push(b);
                        }
                        assert_eq!(&got, blocks);
                    }
                }
                Op::ReadRand { slot, at } => match model.get(&slot) {
                    Some((file, blocks)) if !blocks.is_empty() => {
                        let at = u64::from(at) % blocks.len() as u64;
                        let got = bridge.rand_read(ctx, *file, at).unwrap();
                        assert_eq!(got, blocks[at as usize]);
                    }
                    Some((file, _)) => {
                        assert!(matches!(
                            bridge.rand_read(ctx, *file, u64::from(at)),
                            Err(BridgeError::BlockOutOfRange { .. })
                        ));
                    }
                    None => {}
                },
            }
        }
        // Final verification of every surviving file.
        for (file, blocks) in model.values() {
            bridge.open(ctx, *file).unwrap();
            let mut got = Vec::new();
            while let Some(b) = bridge.seq_read(ctx, *file).unwrap() {
                got.push(b);
            }
            assert_eq!(&got, blocks);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        .. ProptestConfig::default()
    })]

    #[test]
    fn round_robin_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_ops(PlacementSpec::RoundRobin, ops);
    }

    #[test]
    fn chunked_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_ops(PlacementSpec::Chunked, ops);
    }

    #[test]
    fn hashed_matches_model(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        run_ops(PlacementSpec::Hashed { seed: 5 }, ops);
    }

    #[test]
    fn linked_matches_model(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        run_ops(PlacementSpec::Linked, ops);
    }
}
