//! Whole-system integration tests: every layer together — simulator,
//! disks, EFS, Bridge Server, and tools — under realistic scenarios.

use bridge_repro::core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, PlacementSpec};
use bridge_repro::tools::{
    copy, copy_with, grep, sort, summarize, transforms, SortOptions, ToolOptions,
};
use parsim::Ctx;

fn record(i: u64) -> Vec<u8> {
    let mut r = (i * 7919 % 100_000).to_be_bytes().to_vec();
    r.extend_from_slice(format!(" body of record {i}").as_bytes());
    r
}

#[test]
fn full_lifecycle_across_all_layers() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(4));
    let server = machine.server;
    sim.block_on(machine.frontend, "app", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let opts = ToolOptions::default();

        // Naive writes.
        let original = bridge.create(ctx, CreateSpec::default()).unwrap();
        for i in 0..200u64 {
            bridge.seq_write(ctx, original, record(i)).unwrap();
        }

        // Copy tool → identical summary.
        let (duplicate, cstats) = copy(ctx, &mut bridge, original, &opts).unwrap();
        assert_eq!(cstats.blocks, 200);
        let s1 = summarize(ctx, &mut bridge, original, &opts).unwrap();
        let s2 = summarize(ctx, &mut bridge, duplicate, &opts).unwrap();
        assert_eq!(s1, s2);

        // Sort tool → ordered output with the same multiset of blocks.
        let (sorted, stats) = sort(
            ctx,
            &mut bridge,
            duplicate,
            &SortOptions {
                in_core_records: 16,
                ..SortOptions::default()
            },
        )
        .unwrap();
        assert_eq!(stats.records, 200);
        let s3 = summarize(ctx, &mut bridge, sorted, &opts).unwrap();
        assert_eq!(s1.checksum, s3.checksum, "sort permutes, never alters");
        bridge.open(ctx, sorted).unwrap();
        let mut prev = vec![0u8; 8];
        while let Some(block) = bridge.seq_read(ctx, sorted).unwrap() {
            assert!(block[..8].to_vec() >= prev, "non-decreasing keys");
            prev = block[..8].to_vec();
        }

        // Grep the sorted file for a known body substring.
        let hits = grep(ctx, &mut bridge, sorted, b"record 199".to_vec(), &opts).unwrap();
        assert_eq!(hits.len(), 1);

        // Tear everything down in one wave; names remain usable afterwards.
        let freed = bridge
            .delete_many(ctx, vec![original, duplicate, sorted])
            .unwrap();
        assert_eq!(freed, 600);
        let fresh = bridge.create(ctx, CreateSpec::default()).unwrap();
        bridge
            .seq_write(ctx, fresh, b"still works".to_vec())
            .unwrap();
        assert_eq!(bridge.open(ctx, fresh).unwrap().size, 1);
    });
}

#[test]
fn runs_are_deterministic() {
    let run = || -> (u64, u64) {
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(4));
        let server = machine.server;
        let checksum = sim.block_on(machine.frontend, "app", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let file = bridge.create(ctx, CreateSpec::default()).unwrap();
            for i in 0..64u64 {
                bridge.seq_write(ctx, file, record(i)).unwrap();
            }
            let (sorted, _) = sort(ctx, &mut bridge, file, &SortOptions::default()).unwrap();
            summarize(ctx, &mut bridge, sorted, &ToolOptions::default())
                .unwrap()
                .checksum
        });
        (checksum, sim.now().as_nanos())
    };
    let (c1, t1) = run();
    let (c2, t2) = run();
    assert_eq!(c1, c2, "identical results");
    assert_eq!(
        t1, t2,
        "identical virtual timelines, down to the nanosecond"
    );
}

#[test]
fn concurrent_clients_share_the_machine() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    let node = machine.frontend;
    sim.block_on(machine.frontend, "main", move |ctx| {
        // Three concurrent client processes, each with a private file.
        let me = ctx.me();
        for k in 0..3u64 {
            ctx.spawn(node, format!("client{k}"), move |c: &mut Ctx| {
                let mut bridge = BridgeClient::new(server);
                let file = bridge.create(c, CreateSpec::default()).unwrap();
                for i in 0..40u64 {
                    bridge.seq_write(c, file, record(k * 1000 + i)).unwrap();
                }
                bridge.open(c, file).unwrap();
                let mut n = 0u64;
                while let Some(block) = bridge.seq_read(c, file).unwrap() {
                    let expected = record(k * 1000 + n);
                    assert_eq!(&block[..expected.len()], &expected[..]);
                    n += 1;
                }
                assert_eq!(n, 40);
                c.send(me, k);
            });
        }
        let mut done = Vec::new();
        for _ in 0..3 {
            done.push(ctx.recv_as::<u64>().1);
        }
        done.sort_unstable();
        assert_eq!(done, vec![0, 1, 2]);
    });
}

#[test]
fn filters_compose_with_sort() {
    // Encrypt, sort the ciphertext, decrypt block-wise: contents survive,
    // order is by ciphertext key.
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    sim.block_on(machine.frontend, "app", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let opts = ToolOptions::default();
        let plain = bridge.create(ctx, CreateSpec::default()).unwrap();
        for i in 0..60u64 {
            bridge.seq_write(ctx, plain, record(i)).unwrap();
        }
        let key = vec![0x42u8, 0x17];
        let (cipher, _) = copy_with(
            ctx,
            &mut bridge,
            plain,
            transforms::xor_cipher(key.clone()),
            &opts,
        )
        .unwrap();
        let (sorted_cipher, _) = sort(ctx, &mut bridge, cipher, &SortOptions::default()).unwrap();
        let (restored, _) = copy_with(
            ctx,
            &mut bridge,
            sorted_cipher,
            transforms::xor_cipher(key),
            &opts,
        )
        .unwrap();
        // The multiset of plaintext blocks is preserved.
        let a = summarize(ctx, &mut bridge, plain, &opts).unwrap();
        let b = summarize(ctx, &mut bridge, restored, &opts).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.blocks, b.blocks);
    });
}

#[test]
fn tools_work_on_every_strict_placement() {
    for placement in [
        PlacementSpec::RoundRobin,
        PlacementSpec::Chunked,
        PlacementSpec::Hashed { seed: 99 },
    ] {
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(3));
        let server = machine.server;
        sim.block_on(machine.frontend, "app", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let file = bridge
                .create(
                    ctx,
                    CreateSpec {
                        placement,
                        size_hint: Some(50),
                        ..CreateSpec::default()
                    },
                )
                .unwrap();
            for i in 0..50u64 {
                bridge.seq_write(ctx, file, record(i)).unwrap();
            }
            let (sorted, stats) = sort(ctx, &mut bridge, file, &SortOptions::default()).unwrap();
            assert_eq!(stats.records, 50, "{placement:?}");
            bridge.open(ctx, sorted).unwrap();
            let mut prev = vec![0u8; 8];
            while let Some(block) = bridge.seq_read(ctx, sorted).unwrap() {
                assert!(block[..8].to_vec() >= prev, "{placement:?}");
                prev = block[..8].to_vec();
            }
        });
    }
}

#[test]
fn virtual_time_is_consistent_across_views() {
    // Reading the same file through the naive view, a width-p job, and the
    // summary tool must get cheaper in that order (per the paper's §6).
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(8));
    let server = machine.server;
    let lfs_nodes = machine.lfs_nodes.clone();
    let (naive, tool) = sim.block_on(machine.frontend, "app", move |ctx| {
        let _ = lfs_nodes;
        let mut bridge = BridgeClient::new(server);
        let file = bridge.create(ctx, CreateSpec::default()).unwrap();
        for i in 0..256u64 {
            bridge.seq_write(ctx, file, record(i)).unwrap();
        }
        bridge.open(ctx, file).unwrap();
        let t0 = ctx.now();
        while bridge.seq_read(ctx, file).unwrap().is_some() {}
        let naive = ctx.now() - t0;

        let t0 = ctx.now();
        summarize(ctx, &mut bridge, file, &ToolOptions::default()).unwrap();
        let tool = ctx.now() - t0;
        (naive, tool)
    });
    assert!(
        tool.as_secs_f64() * 3.0 < naive.as_secs_f64(),
        "tool view ({tool}) should beat the naive view ({naive}) by far more than 3x"
    );
}
