//! Availability tests: the redundancy headline invariant.
//!
//! For any plan that permanently loses **one** disk ([`DiskLost`] —
//! the medium never comes back, unlike a [`CrashAt`] kill), a workload
//! run against a redundant Bridge machine produces exactly the
//! client-visible replies and final contents of the fault-free run:
//! reads of the lost columns are reconstructed on the fly (degraded
//! mode), a spare racks in mid-run, an online rebuild repopulates it,
//! and the closing machine-wide `pfsck` — parity audit included — comes
//! back clean. Loss may only change timing, never observable behaviour.
//!
//! Three entry points exercise it, mirroring `tests/chaos.rs`:
//!
//! * `media_loss_preserves_observable_behavior` — proptest over random
//!   loss plans, a quick subset on every `cargo test`.
//! * `avail_soak` — the CI soak hook. `AVAIL_SEED` picks the seed block
//!   (nightly CI derives it from the date), `AVAIL_CASES` the case
//!   count, and `AVAIL_REPLAY` replays one failing plan seed exactly. A
//!   failing seed is written to `target/chaos_failures/*.lossseed` so CI
//!   can attach it, and the panic message carries the replay command.
//! * `loss_seed_corpus_replays_clean` — regression corpus: every seed in
//!   `tests/fault_seeds/*.lossseed` replays on plain `cargo test`.
//!
//! A pure-math proptest rides along: for any parity layout and any
//! single lost column, every lost block is reconstructed exactly from
//! its surviving stripe peers — the algebra the degraded path leans on.

use bridge_repro::core::{
    xor_into, BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, ParityLayout, Redundancy,
};
use bridge_repro::efs;
use bridge_repro::parsim::{
    mix64, splitmix64, DiskLost, FaultPlan, MsgFaults, NodeId, ProcId, SimDuration,
};
use bridge_repro::tools::{pfsck, FsckOptions};
use bridge_repro::trace::TraceCollector;
use proptest::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Machine breadth used by every availability run. Four columns means a
/// whole-breadth parity group of width 3 plus the rotating parity slot.
const BREADTH: u32 = 4;

/// Draws a loss plan from a seed: exactly one disk dies for good at a
/// random write ordinal — possibly before anything persists, possibly
/// past the whole write stream (in which case the victim is still
/// healthy when the spare racks in, and the rebuild must cope with a
/// freshly formatted column that lost *everything*) — under random
/// message *delays* so the loss races in-flight traffic. Drops and
/// duplicates stay out of loss plans: the operator-driven spare rack-in
/// ([`efs::install_spare`]) is a bare control message with no retry or
/// dedup identity, by design — re-racking a spare mid-rebuild wipes the
/// rebuild's progress, which is an operator error, not a fault to
/// converge through. (The chaos suite owns drop/dup coverage.)
fn loss_plan_from_seed(seed: u64) -> FaultPlan {
    let mut s = mix64(seed, 0x0105_5EED);
    let mut draw = move || splitmix64(&mut s);
    let msg = MsgFaults {
        delay_per_mille: (draw() % 300) as u16,
        delay_max: SimDuration::from_micros(1 + draw() % 50_000),
        ..MsgFaults::default()
    };
    let losses = vec![DiskLost {
        disk: (draw() % u64::from(BREADTH)) as u32,
        after_writes: draw() % 600,
    }];
    FaultPlan {
        seed,
        msg,
        losses,
        ..FaultPlan::none()
    }
}

/// Deterministic payload for append/overwrite `i` of stream `tag`.
fn content(tag: u8, i: u64) -> Vec<u8> {
    vec![tag ^ (i as u8), (i >> 8) as u8, tag, 0x42]
        .into_iter()
        .cycle()
        .take(64 + (i as usize % 7) * 16)
        .collect()
}

/// FNV-1a, to log block contents compactly.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the fixed availability workload and returns the transcript of
/// every client-visible reply (results and read-back contents, no
/// timing, no repair counters — those are allowed to differ between the
/// degraded and fault-free runs).
///
/// With `recover = Some(disk)`, after the degraded read phase a spare
/// medium racks into that LFS (wiping whatever survived there) and an
/// online, paced rebuild repopulates its columns from the surviving
/// group members — the full kill → degraded → rebuild arc. The final
/// reads and the closing machine-wide `pfsck` land in the transcript
/// either way, so a faulted-and-rebuilt machine must end
/// indistinguishable from one that never faulted.
fn run_workload(config: &BridgeConfig, recover: Option<u32>) -> Vec<String> {
    let (mut sim, machine) = BridgeMachine::build(config);
    let server = machine.server;
    let spare = recover.map(|disk| machine.lfs[disk as usize]);
    let pairs: Vec<(ProcId, NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    let retry = config.server.lfs_retry;
    sim.block_on(machine.frontend, "avail-client", move |ctx| {
        let mut bridge = BridgeClient::with_retry(server, retry);
        let mut log: Vec<String> = Vec::new();
        // `a` inherits the machine's default redundancy (parity in the
        // standard configs below); `b` pins a mirror so both modes ride
        // through every plan.
        let a = bridge.create(ctx, CreateSpec::default()).expect("create a");
        let b = bridge
            .create(
                ctx,
                CreateSpec {
                    redundancy: Redundancy::Mirror,
                    ..CreateSpec::default()
                },
            )
            .expect("create b");
        log.push(format!("create a={a:?} b={b:?}"));
        for i in 0..40 {
            let n = bridge
                .seq_write(ctx, a, content(0xA0, i))
                .expect("append a");
            log.push(format!("a.append[{i}] -> {n}"));
        }
        for i in 0..24 {
            let n = bridge
                .seq_write(ctx, b, content(0xB0, i))
                .expect("append b");
            log.push(format!("b.append[{i}] -> {n}"));
        }
        for at in [3u64, 17, 29] {
            bridge
                .rand_write(ctx, a, at, content(0xEE, at))
                .expect("overwrite a");
            log.push(format!("a.overwrite[{at}]"));
        }
        // Degraded phase: if the loss has fired, these reads reconstruct
        // the dead columns from the survivors — same hashes regardless.
        for (name, file) in [("a", a), ("b", b)] {
            let info = bridge.open(ctx, file).expect("open");
            let mut line = format!("{name}.read size={}:", info.size);
            while let Some(block) = bridge.seq_read(ctx, file).expect("seq read") {
                write!(line, " {:016x}", fnv(&block)).unwrap();
            }
            log.push(line);
        }
        if let Some(victim) = spare {
            assert!(
                efs::install_spare(ctx, victim),
                "device produced a spare medium"
            );
            for file in [a, b] {
                bridge
                    .rebuild_paced(ctx, file, 8, SimDuration::from_micros(200))
                    .expect("rebuild onto the spare");
            }
        }
        for at in [0u64, 17, 39] {
            let block = bridge.rand_read(ctx, a, at).expect("rand read a");
            log.push(format!("a.rand_read[{at}] -> {:016x}", fnv(&block)));
        }
        for (name, file) in [("a", a), ("b", b)] {
            let info = bridge.open(ctx, file).expect("reopen");
            let mut line = format!("{name}.final size={}:", info.size);
            while let Some(block) = bridge.seq_read(ctx, file).expect("final read") {
                write!(line, " {:016x}", fnv(&block)).unwrap();
            }
            log.push(line);
        }
        let verdict = pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                retry,
                server: Some(server),
                ..FsckOptions::default()
            },
        )
        .expect("pfsck");
        log.push(format!(
            "pfsck clean={} errors={:?}",
            verdict.clean(),
            verdict.errors(),
        ));
        log
    })
}

/// The standard availability machine: machine-wide atomicity (so parity
/// can never go stale across a crash) and parity redundancy by default.
fn avail_config() -> BridgeConfig {
    BridgeConfig::instant(BREADTH)
        .with_2pc()
        .with_redundancy(Redundancy::parity())
}

/// The headline invariant for one plan: kill the plan's disk for good,
/// serve degraded, rack in a spare, rebuild online — and the transcript
/// (replies, contents, closing pfsck verdict) equals the fault-free
/// run's. Panics with a replayable report on mismatch.
fn check_loss_plan(label: &str, plan: FaultPlan) {
    let victim = plan.losses[0].disk;
    let baseline = run_workload(&avail_config(), None);
    let faulted = run_workload(&avail_config().with_faults(plan.clone()), Some(victim));
    if baseline == faulted {
        return;
    }
    let divergence = baseline
        .iter()
        .zip(faulted.iter())
        .position(|(b, f)| b != f)
        .unwrap_or_else(|| baseline.len().min(faulted.len()));
    record_failure(plan.seed);
    panic!(
        "availability invariant violated ({label}, plan seed {seed}):\n\
         first divergence at reply {divergence}:\n\
           fault-free: {base:?}\n\
           degraded:   {fault:?}\n\
         replay with: AVAIL_REPLAY={seed} cargo test --test availability avail_soak\n\
         plan: {plan:?}",
        seed = plan.seed,
        base = baseline.get(divergence),
        fault = faulted.get(divergence),
    );
}

fn check_loss_seed(label: &str, seed: u64) {
    check_loss_plan(label, loss_plan_from_seed(seed));
}

/// Saves a failing plan seed under `target/chaos_failures/` (the same
/// artifact directory the chaos suites use) so CI can upload it, with
/// the `.lossseed` extension picking the `AVAIL_REPLAY` command.
fn record_failure(seed: u64) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("chaos_failures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{seed}.lossseed")), format!("{seed}\n"));
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a u64, got {v:?}")),
        Err(_) => default,
    }
}

/// The CI soak hook (also a normal quick test when the env is unset).
#[test]
fn avail_soak() {
    if let Ok(replay) = std::env::var("AVAIL_REPLAY") {
        let seed = replay
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("AVAIL_REPLAY must be a u64, got {replay:?}"));
        check_loss_seed("replay", seed);
        return;
    }
    let base = env_u64("AVAIL_SEED", 0x00AB_A11A);
    let cases = env_u64("AVAIL_CASES", 4);
    for case in 0..cases {
        check_loss_seed("avail soak", mix64(base, case));
    }
}

/// Every loss-plan seed ever caught in the wild replays clean, forever
/// (`tests/fault_seeds/*.lossseed`).
#[test]
fn loss_seed_corpus_replays_clean() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fault_seeds");
    let mut seeds = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/fault_seeds exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != "lossseed") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable seed file");
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            seeds.push(
                line.parse::<u64>()
                    .unwrap_or_else(|_| panic!("bad seed line {line:?} in {path:?}")),
            );
        }
    }
    assert!(
        !seeds.is_empty(),
        "corpus holds at least one .lossseed seed"
    );
    for seed in seeds {
        check_loss_seed("loss corpus", seed);
    }
}

/// Directed plan: disk 1 dies early in the write stream, no other
/// faults. The run must actually go degraded — the trace shows on-the-fly
/// reconstructions — and still match the fault-free transcript.
#[test]
fn early_loss_is_served_degraded_then_rebuilt() {
    let plan = FaultPlan {
        seed: 21,
        losses: vec![DiskLost {
            disk: 1,
            after_writes: 20,
        }],
        ..FaultPlan::none()
    };
    check_loss_plan("early loss", plan.clone());

    // Rerun traced to prove degraded mode actually engaged.
    let collector = TraceCollector::install();
    let mut config = avail_config().with_faults(plan);
    config.tracer = Some(collector.as_tracer());
    run_workload(&config, Some(1));
    let degraded = collector
        .snapshot()
        .instants
        .iter()
        .filter(|i| i.name == "redundancy.degraded_read")
        .count();
    assert!(
        degraded > 0,
        "an early loss must force degraded reads, got none"
    );
}

/// Directed plan: the medium is gone before it persists a single block —
/// every column on disk 2 only ever exists as reconstructions until the
/// spare arrives.
#[test]
fn loss_before_first_write_converges() {
    check_loss_plan(
        "loss at birth",
        FaultPlan {
            seed: 22,
            losses: vec![DiskLost {
                disk: 2,
                after_writes: 0,
            }],
            ..FaultPlan::none()
        },
    );
}

/// Directed plan: the loss ordinal lies past the whole write stream, so
/// the "victim" is healthy when the spare racks in. Installing the spare
/// wipes its perfectly good columns; the rebuild must restore them and
/// the closing parity audit must still come back clean.
#[test]
fn spare_install_on_healthy_node_is_rebuilt_losslessly() {
    check_loss_plan(
        "inert loss, live wipe",
        FaultPlan {
            seed: 23,
            losses: vec![DiskLost {
                disk: 0,
                after_writes: u64::MAX,
            }],
            ..FaultPlan::none()
        },
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        .. ProptestConfig::default()
    })]

    /// The headline invariant over random loss plans.
    #[test]
    fn media_loss_preserves_observable_behavior(seed in any::<u64>()) {
        check_loss_seed("proptest", seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// The algebra under the degraded path: for any grouped parity
    /// layout and any single lost column, every data block on that
    /// column is recomputed exactly by XOR-ing its surviving stripe
    /// peers with the stripe's parity block.
    #[test]
    fn any_single_lost_column_reconstructs_exactly(
        breadth in 2u32..=8,
        lost in 0u32..8,
        size in 1u64..48,
        fill in any::<u64>(),
    ) {
        let lost = lost % breadth;
        let layout = ParityLayout::new(breadth);
        let block = |b: u64| -> Vec<u8> {
            let mut s = mix64(fill, b);
            let mut draw = move || splitmix64(&mut s);
            (0..96).map(|_| (draw() & 0xFF) as u8).collect()
        };
        for b in 0..size {
            let ptr = layout.locate(b);
            if ptr.lfs.0 != lost {
                continue;
            }
            // Reconstruct block `b` from its surviving peers + parity.
            let stripe = layout.stripe_of(b);
            let mut acc: Vec<u8> = Vec::new();
            for peer in layout.stripe_peers(b, size) {
                xor_into(&mut acc, &block(peer));
            }
            let mut parity: Vec<u8> = Vec::new();
            let lo = stripe * layout.stripe_width();
            let hi = ((stripe + 1) * layout.stripe_width()).min(size);
            for d in lo..hi {
                xor_into(&mut parity, &block(d));
            }
            prop_assert!(
                layout.parity_position(stripe) != lost,
                "parity never shares a column with the stripe's data"
            );
            xor_into(&mut acc, &parity);
            let mut want = block(b);
            want.resize(acc.len().max(want.len()), 0);
            acc.resize(want.len(), 0);
            prop_assert_eq!(acc, want, "block {} reconstructs exactly", b);
        }
    }
}
