//! Telemetry determinism and exactness.
//!
//! The live-health subsystem's contract has two halves:
//!
//! 1. **Observation never changes the run.** Arming the registry,
//!    polling it from the host-side virtual-time sampler, or polling
//!    `GetHealth` in-band must leave the workload's observable
//!    behaviour untouched: armed-but-unpolled and sampler-polled runs
//!    are `RunStats`-bit-identical to a disarmed run (same pattern as
//!    the trace-determinism and inert-fault-plan suites), and an
//!    in-band poller may shift timing but never reply contents.
//! 2. **Snapshots are exact.** The end-of-run health snapshot's disk
//!    counters reconcile with zero slack against the `DiskStats` the
//!    devices themselves report, and the sampler's quiescence frame
//!    carries the kernel's own final `RunStats` verbatim.

use bridge_repro::core::{
    BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, DiskLost, FaultPlan, Redundancy,
};
use bridge_repro::efs::{install_spare, LfsClient, LfsData, LfsOp};
use bridge_repro::parsim::{RunStats, SimDuration};
use bridge_repro::simdisk;
use bridge_repro::trace::HealthSnapshot;
use std::fmt::Write as _;

const BREADTH: u32 = 4;
const BLOCKS: u64 = 40;

/// The machine every test drives: machine-wide atomicity and parity
/// redundancy, so the 2PC, WAL, and redundancy gauges all carry weight.
fn config(telemetry: bool) -> BridgeConfig {
    let mut c = BridgeConfig::instant(BREADTH)
        .with_2pc()
        .with_redundancy(Redundancy::parity());
    c.telemetry = telemetry;
    c
}

fn content(i: u64) -> Vec<u8> {
    format!("telemetry record {i:05}").into_bytes()
}

fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the fixed workload; returns the client-visible reply transcript
/// (contents and results, no timing) and the kernel's final counters.
/// With `poll_health`, a `GetHealth` poll is injected between phases —
/// the transcript must not change (the polls themselves are excluded
/// from it; timing is allowed to shift).
fn run_workload(config: &BridgeConfig, poll_health: bool) -> (Vec<String>, RunStats) {
    let (mut sim, machine) = BridgeMachine::build(config);
    let server = machine.server;
    let log = sim.block_on(machine.frontend, "telemetry-client", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let mut log: Vec<String> = Vec::new();
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..BLOCKS {
            let n = bridge.seq_write(ctx, file, content(i)).expect("append");
            log.push(format!("append[{i}] -> {n}"));
        }
        if poll_health {
            let h = bridge.get_health(ctx).expect("health");
            assert!(h.server.ops > 0, "mid-run poll saw a live server");
        }
        for at in [0u64, 7, 19, 33] {
            bridge
                .rand_write(ctx, file, at, content(1000 + at))
                .expect("overwrite");
            log.push(format!("overwrite[{at}]"));
        }
        let info = bridge.open(ctx, file).expect("open");
        let mut line = format!("read size={}:", info.size);
        while let Some(block) = bridge.seq_read(ctx, file).expect("read") {
            write!(line, " {:016x}", fnv(&block)).unwrap();
        }
        log.push(line);
        if poll_health {
            let h = bridge.get_health(ctx).expect("health");
            assert_eq!(h.server.txns_in_doubt, 0, "quiescent 2PC at end");
        }
        log
    });
    (log, sim.stats())
}

/// Arming the registry without ever polling it must be invisible to the
/// kernel: bit-identical `RunStats`, identical reply transcript.
#[test]
fn armed_but_unpolled_is_bit_identical_to_disabled() {
    let (log_off, stats_off) = run_workload(&config(false), false);
    let (log_on, stats_on) = run_workload(&config(true), false);
    assert_eq!(
        stats_off, stats_on,
        "arming telemetry changed the kernel counters"
    );
    assert_eq!(
        log_off, log_on,
        "arming telemetry changed the reply transcript"
    );
}

/// Host-side sampler polling is observation-only: the polled run's
/// `RunStats` are bit-identical to the unpolled run's, and the final
/// (quiescence) frame carries those counters verbatim.
#[test]
fn sampler_polling_is_bit_identical_and_final_frame_exact() {
    // Paper-profile disks, so virtual time really advances and the
    // sampler crosses many boundaries (instant machines quiesce at t=0).
    let cfg = BridgeConfig::paper(BREADTH)
        .with_2pc()
        .with_redundancy(Redundancy::parity());
    let (mut sim, machine) = BridgeMachine::build(&cfg);
    let registry = machine.telemetry.clone().expect("armed");
    let frames = std::rc::Rc::new(std::cell::RefCell::new(Vec::<HealthSnapshot>::new()));
    {
        let frames = std::rc::Rc::clone(&frames);
        sim.set_sampler(SimDuration::from_millis(50), move |at, stats| {
            frames
                .borrow_mut()
                .push(registry.snapshot(at, Some(*stats)));
        });
    }
    let server = machine.server;
    sim.block_on(machine.frontend, "telemetry-client", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..BLOCKS {
            bridge.seq_write(ctx, file, content(i)).expect("append");
        }
        bridge.open(ctx, file).expect("open");
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
    });
    let polled = sim.stats();

    // Different workload tail than `run_workload` (no overwrites), so
    // only compare the sampled run against itself re-run unpolled.
    let (mut sim2, machine2) = BridgeMachine::build(&cfg);
    let server2 = machine2.server;
    sim2.block_on(machine2.frontend, "telemetry-client", move |ctx| {
        let mut bridge = BridgeClient::new(server2);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..BLOCKS {
            bridge.seq_write(ctx, file, content(i)).expect("append");
        }
        bridge.open(ctx, file).expect("open");
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
    });
    assert_eq!(
        sim2.stats(),
        polled,
        "sampler polling changed the kernel counters"
    );

    let frames = frames.take();
    assert!(frames.len() >= 2, "expected multiple sampled frames");
    let last = frames.last().unwrap();
    assert_eq!(
        last.kernel,
        Some(polled),
        "quiescence frame must carry the run's final RunStats verbatim"
    );
}

/// An in-band `GetHealth` poller is a real client: it consumes virtual
/// time, so timing may shift — but the workload's reply *contents* must
/// be identical with and without it.
#[test]
fn inband_polling_leaves_reply_contents_identical() {
    let (quiet, _) = run_workload(&config(true), false);
    let (polled, _) = run_workload(&config(true), true);
    assert_eq!(
        quiet, polled,
        "in-band GetHealth polling changed reply contents"
    );
}

/// End-of-run exactness, driven through the full operational arc
/// (column loss → degraded reads → spare → paced rebuild): the health
/// snapshot's per-instance disk counters must equal, field for field,
/// the `DiskStats` the devices themselves report via `LfsOp::DiskStats`,
/// and its gauges must agree with the ground-truth `LfsOp::GetTelemetry`
/// reads.
#[test]
fn end_of_run_snapshot_reconciles_exactly_with_diskstats() {
    let victim = 1u32;
    let cfg = config(true).with_faults(FaultPlan {
        seed: 0x7e1e,
        losses: vec![DiskLost {
            disk: victim,
            after_writes: 25,
        }],
        ..FaultPlan::none()
    });
    let (mut sim, machine) = BridgeMachine::build(&cfg);
    let server = machine.server;
    let spare = machine.lfs[victim as usize];
    let lfs: Vec<_> = machine.lfs.clone();
    let retry = cfg.server.lfs_retry;
    let (health, ground) = sim.block_on(machine.frontend, "telemetry-client", move |ctx| {
        let mut bridge = BridgeClient::with_retry(server, retry);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..BLOCKS {
            bridge.seq_write(ctx, file, content(i)).expect("append");
        }
        bridge.open(ctx, file).expect("open");
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        assert!(install_spare(ctx, spare), "spare racked in");
        bridge
            .rebuild_paced(ctx, file, 8, SimDuration::from_micros(200))
            .expect("rebuild");
        bridge.open(ctx, file).expect("reopen");
        while bridge.seq_read(ctx, file).expect("final read").is_some() {}

        let health = bridge.get_health(ctx).expect("health");
        // Ground truth, straight from each device and instance. These
        // ops are untimed and touch no media, so the counters the
        // snapshot mirrored cannot move between the two observations.
        let mut client = LfsClient::with_retry(retry);
        let ground: Vec<(simdisk::DiskStats, Box<bridge_repro::trace::LfsTelemetry>)> = lfs
            .iter()
            .map(|&proc| {
                let stats = match client.call(ctx, proc, LfsOp::DiskStats) {
                    Ok(LfsData::DiskCounters(s)) => s,
                    other => panic!("DiskStats reply: {other:?}"),
                };
                let telemetry = match client.call(ctx, proc, LfsOp::GetTelemetry) {
                    Ok(LfsData::Telemetry(t)) => t,
                    other => panic!("GetTelemetry reply: {other:?}"),
                };
                (stats, telemetry)
            })
            .collect();
        (health, ground)
    });
    let _ = sim.stats();

    assert!(health.server.degraded_reads > 0, "the loss was exercised");
    assert_eq!(health.server.rebuilds_started, 1);
    assert_eq!(health.server.rebuilds_done, 1);
    assert!(health.has_event("disk.lost"));
    assert!(health.has_event("redundancy.degraded_onset"));
    assert!(health.has_event("disk.spare_installed"));
    assert!(health.has_event("rebuild.start"));
    assert!(health.has_event("rebuild.done"));
    assert_eq!(health.lfs.len(), BREADTH as usize);

    for (i, (mirror, (stats, telemetry))) in health.lfs.iter().zip(&ground).enumerate() {
        // Zero slack: every disk counter in the snapshot equals the
        // device's own ledger.
        assert_eq!(mirror.disk.reads, stats.reads, "lfs {i} reads");
        assert_eq!(mirror.disk.writes, stats.writes, "lfs {i} writes");
        assert_eq!(
            mirror.disk.buffer_hits, stats.buffer_hits,
            "lfs {i} buffer hits"
        );
        assert_eq!(
            mirror.disk.track_loads, stats.track_loads,
            "lfs {i} track loads"
        );
        assert_eq!(
            mirror.disk.head_travel, stats.head_travel,
            "lfs {i} head travel"
        );
        assert_eq!(
            mirror.disk.transient_faults, stats.transient_faults,
            "lfs {i} transient faults"
        );
        assert_eq!(
            mirror.disk.busy_nanos,
            stats.busy.as_nanos(),
            "lfs {i} busy time"
        );
        // And the instance gauges agree with the ground-truth read.
        assert_eq!(mirror.disk, telemetry.disk, "lfs {i} disk view");
        assert_eq!(
            mirror.free_blocks, telemetry.free_blocks,
            "lfs {i} free blocks"
        );
        assert_eq!(
            mirror.wal_ring_used, telemetry.wal_ring_used,
            "lfs {i} wal ring"
        );
        assert_eq!(mirror.media_lost, telemetry.media_lost, "lfs {i} media");
        assert!(!mirror.media_lost, "spare racked in and rebuilt");
    }
}
