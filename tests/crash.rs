//! Crash-point and consistency-check coverage for the WAL era (PR 7):
//!
//! * `crash_at_every_write_preserves_acknowledged_state` — the exhaustive
//!   sweep: measure how many elementary disk writes the reference run
//!   performs on each disk, then re-run the workload killing the node
//!   after write 1, 2, …, N of each disk. Every run must produce the
//!   byte-identical client transcript (replies, read-back contents, and
//!   the closing machine-wide `pfsck --check` verdict).
//! * `random_crash_schedules_preserve_acknowledged_state` — proptest over
//!   seeded multi-crash schedules on the same workload.
//! * `pfsck_detects_and_repairs_seeded_corruptions` /
//!   `seeded_corruption_mixes_repair_to_clean` — every
//!   [`CorruptionKind`] planted on a live instance is detected by
//!   `pfsck`, repaired under `--repair`, and a second pass reports clean.
//! * `pfsck_smoke` — the quick single-instance detect/repair/clean pass
//!   the CI pfsck-smoke step runs on every push.

use bridge_repro::core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, PlacementSpec};
use bridge_repro::efs::{
    spawn_lfs, CorruptionKind, Efs, EfsConfig, LfsClient, LfsData, LfsFileId, LfsOp,
};
use bridge_repro::parsim::{
    mix64, splitmix64, CrashAt, FaultPlan, NodeId, ProcId, SimConfig, SimDuration, Simulation,
};
use bridge_repro::simdisk::{DiskGeometry, DiskProfile, SimDisk};
use bridge_repro::tools::{pfsck, FsckOptions};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Breadth of the sweep machine. Small on purpose: the sweep runs the
/// workload once per elementary write per disk.
const BREADTH: u32 = 2;

/// Deterministic payload for append/overwrite `i` of stream `tag`.
fn content(tag: u8, i: u64) -> Vec<u8> {
    vec![tag ^ (i as u8), (i >> 8) as u8, tag, 0x42]
        .into_iter()
        .cycle()
        .take(48 + (i as usize % 5) * 16)
        .collect()
}

/// FNV-1a, to log block contents compactly.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the fixed sweep workload on a WAL machine and returns the client
/// transcript (ending with the machine-wide `pfsck --check` verdict) plus
/// each disk's elementary write count at the end of the run — the crash
/// ordinal space the sweep walks.
fn sweep_workload(config: &BridgeConfig) -> (Vec<String>, Vec<u64>) {
    let (mut sim, machine) = BridgeMachine::build(config);
    let server = machine.server;
    let pairs: Vec<(ProcId, NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    let retry = config.server.lfs_retry;
    sim.block_on(machine.frontend, "sweep-client", move |ctx| {
        let mut bridge = BridgeClient::with_retry(server, retry);
        let mut log: Vec<String> = Vec::new();
        let a = bridge
            .create(
                ctx,
                CreateSpec {
                    placement: PlacementSpec::RoundRobin,
                    size_hint: Some(16),
                    ..CreateSpec::default()
                },
            )
            .expect("create a");
        let b = bridge
            .create(
                ctx,
                CreateSpec {
                    placement: PlacementSpec::Chunked,
                    size_hint: Some(8),
                    ..CreateSpec::default()
                },
            )
            .expect("create b");
        log.push(format!("create a={a:?} b={b:?}"));
        for i in 0..10 {
            let n = bridge
                .seq_write(ctx, a, content(0xC0, i))
                .expect("append a");
            log.push(format!("a.append[{i}] -> {n}"));
        }
        for i in 0..6 {
            let n = bridge
                .seq_write(ctx, b, content(0xD0, i))
                .expect("append b");
            log.push(format!("b.append[{i}] -> {n}"));
        }
        bridge
            .rand_write(ctx, a, 4, content(0xEE, 4))
            .expect("overwrite a");
        log.push("a.overwrite[4]".to_string());
        for (name, file) in [("a", a), ("b", b)] {
            let info = bridge.open(ctx, file).expect("open");
            let mut line = format!("{name}.read size={}:", info.size);
            while let Some(block) = bridge.seq_read(ctx, file).expect("seq read") {
                write!(line, " {:016x}", fnv(&block)).unwrap();
            }
            log.push(line);
        }
        let freed = bridge.delete(ctx, b).expect("delete b");
        log.push(format!("b.delete -> {freed}"));
        for i in 10..12 {
            let n = bridge
                .seq_write(ctx, a, content(0xC0, i))
                .expect("append a");
            log.push(format!("a.append[{i}] -> {n}"));
        }
        let info = bridge.open(ctx, a).expect("reopen a");
        let mut line = format!("a.final size={}:", info.size);
        while let Some(block) = bridge.seq_read(ctx, a).expect("final read") {
            write!(line, " {:016x}", fnv(&block)).unwrap();
        }
        log.push(line);
        let verdict = pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                retry,
                ..FsckOptions::default()
            },
        )
        .expect("pfsck");
        log.push(format!(
            "pfsck clean={} repaired={} errors={:?}",
            verdict.clean(),
            verdict.repaired,
            verdict.errors(),
        ));
        let mut client = LfsClient::with_retry(retry);
        let mut writes = Vec::new();
        for &(proc, _) in &pairs {
            match client
                .call(ctx, proc, LfsOp::DiskStats)
                .expect("disk stats")
            {
                LfsData::DiskCounters(stats) => writes.push(stats.writes),
                other => panic!("unexpected DiskStats reply: {other:?}"),
            }
        }
        (log, writes)
    })
}

/// The fault-free reference run, computed once per process.
fn reference() -> &'static (Vec<String>, Vec<u64>) {
    static REF: OnceLock<(Vec<String>, Vec<u64>)> = OnceLock::new();
    REF.get_or_init(|| sweep_workload(&BridgeConfig::instant(BREADTH).with_wal()))
}

/// Runs the sweep workload under `crashes` and asserts the transcript is
/// identical to the fault-free reference.
fn check_crashes(label: &str, crashes: Vec<CrashAt>) {
    let (baseline, _) = reference();
    let plan = FaultPlan {
        seed: 0x0C4A_0007,
        crashes,
        ..FaultPlan::none()
    };
    let (crashed, _) = sweep_workload(
        &BridgeConfig::instant(BREADTH)
            .with_wal()
            .with_faults(plan.clone()),
    );
    assert_eq!(
        &crashed, baseline,
        "crash invariant violated ({label}): plan {plan:?}"
    );
}

/// The headline sweep: kill each node after every single elementary disk
/// write it performs (including the WAL appends, commit records,
/// checkpoints, and the recovery-era writes of earlier crash points in
/// multi-crash plans — the ordinal space is the reference run's), and
/// require the acknowledged state to survive every cut.
#[test]
fn crash_at_every_write_preserves_acknowledged_state() {
    let (_, writes) = reference();
    assert_eq!(writes.len(), BREADTH as usize);
    let mut swept = 0u64;
    for (disk, &n) in writes.iter().enumerate() {
        assert!(n > 0, "disk {disk} never wrote — workload too small");
        for k in 1..=n {
            check_crashes(
                &format!("disk {disk}, write {k}/{n}"),
                vec![CrashAt {
                    disk: disk as u32,
                    after_writes: k,
                    down: SimDuration::from_millis(300),
                }],
            );
            swept += 1;
        }
    }
    eprintln!("swept {swept} crash points across {} disks", writes.len());
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Seeded multi-crash schedules (1–3 kills, random disks, ordinals
    /// and down windows) on the sweep workload: same invariant.
    #[test]
    fn random_crash_schedules_preserve_acknowledged_state(seed in any::<u64>()) {
        let (_, writes) = reference();
        let max_writes = writes.iter().copied().max().unwrap_or(1);
        let mut s = mix64(seed, 0x5EED_0C4A);
        let mut draw = move || splitmix64(&mut s);
        let mut crashes = Vec::new();
        for _ in 0..1 + draw() % 3 {
            crashes.push(CrashAt {
                disk: (draw() % u64::from(BREADTH)) as u32,
                // Past-the-end ordinals (never firing) are legal and must
                // behave like no fault; bias toward in-range cuts.
                after_writes: 1 + draw() % (max_writes + max_writes / 4 + 1),
                down: SimDuration::from_millis(100 + draw() % 1_200),
            });
        }
        check_crashes("random schedule", crashes);
    }
}

/// Builds one LFS instance per requested corruption: populate a fresh
/// Efs with a few files, plant the corruption, then hand the damaged
/// instance to a live LFS server. Returns the simulation, the pfsck
/// targets, a controller node, and what was corrupted.
fn corrupted_machine(
    kinds: &[CorruptionKind],
) -> (Simulation, Vec<(ProcId, NodeId)>, NodeId, Vec<String>) {
    let mut sim = Simulation::new(SimConfig::default());
    let frontend = sim.add_node("frontend");
    let geometry = DiskGeometry {
        block_size: 1024,
        blocks_per_track: 8,
        tracks: 64,
    };
    let mut pairs = Vec::new();
    let mut planted = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        let node = sim.add_node(format!("p{i}"));
        let mut efs = sim.block_on(node, format!("loader{i}"), move |ctx| {
            let mut efs = Efs::format(
                SimDisk::new(geometry, DiskProfile::instant()),
                EfsConfig {
                    cpu_per_request: SimDuration::ZERO,
                    ..EfsConfig::default()
                },
            );
            for f in 0..3u32 {
                let file = LfsFileId(f);
                efs.create(ctx, file).expect("create");
                for block_no in 0..4u32 {
                    efs.write(
                        ctx,
                        file,
                        block_no,
                        &content(f as u8, u64::from(block_no)),
                        None,
                    )
                    .expect("write");
                }
            }
            efs.sync(ctx).expect("sync");
            efs
        });
        let desc = efs
            .seed_corruption(kind)
            .expect("instance has a corruption target");
        planted.push(format!("lfs{i}: {desc}"));
        pairs.push((spawn_lfs(&mut sim, node, format!("lfs{i}"), efs), node));
    }
    (sim, pairs, frontend, planted)
}

/// Runs `pfsck --repair` then `pfsck --check` against `pairs` and
/// returns both verdicts.
fn repair_then_check(
    sim: &mut Simulation,
    frontend: NodeId,
    pairs: Vec<(ProcId, NodeId)>,
) -> (
    bridge_repro::tools::FsckVerdict,
    bridge_repro::tools::FsckVerdict,
) {
    sim.block_on(frontend, "pfsck-ctl", move |ctx| {
        let first = pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .expect("pfsck --repair");
        let second = pfsck(ctx, &pairs, &FsckOptions::default()).expect("pfsck --check");
        (first, second)
    })
}

/// Every corruption kind, one per instance: all are detected, all are
/// repaired, and the second machine-wide pass is clean.
#[test]
fn pfsck_detects_and_repairs_seeded_corruptions() {
    let kinds = [
        CorruptionKind::TornTail,
        CorruptionKind::OrphanBlock,
        CorruptionKind::DanglingEntry,
    ];
    let (mut sim, pairs, frontend, planted) = corrupted_machine(&kinds);
    let (first, second) = repair_then_check(&mut sim, frontend, pairs);
    assert_eq!(first.reports.len(), kinds.len());
    for (i, report) in first.reports.iter().enumerate() {
        assert!(
            !report.errors.is_empty(),
            "instance {i} corruption went undetected ({})",
            planted[i]
        );
        assert!(
            report.repaired > 0,
            "instance {i} corruption not repaired ({})",
            planted[i]
        );
    }
    assert!(
        second.clean(),
        "second pass must be clean, got {:?}",
        second.errors()
    );
    assert_eq!(second.repaired, 0, "nothing left to repair");
}

/// The CI pfsck-smoke step: one instance, one corruption, detect →
/// repair → clean, in well under a second.
#[test]
fn pfsck_smoke() {
    let (mut sim, pairs, frontend, planted) = corrupted_machine(&[CorruptionKind::TornTail]);
    let (first, second) = repair_then_check(&mut sim, frontend, pairs);
    assert!(!first.clean(), "corruption undetected ({planted:?})");
    assert!(first.repaired > 0);
    assert!(
        second.clean(),
        "not repaired to clean: {:?}",
        second.errors()
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Random mixes of seeded corruptions across 1–4 instances: pfsck
    /// with repair always converges to a clean second pass.
    #[test]
    fn seeded_corruption_mixes_repair_to_clean(seed in any::<u64>()) {
        let mut s = mix64(seed, 0xF5C6_u64);
        let mut draw = move || splitmix64(&mut s);
        let all = [
            CorruptionKind::TornTail,
            CorruptionKind::OrphanBlock,
            CorruptionKind::DanglingEntry,
        ];
        let kinds: Vec<CorruptionKind> = (0..1 + draw() % 4)
            .map(|_| all[(draw() % 3) as usize])
            .collect();
        let (mut sim, pairs, frontend, planted) = corrupted_machine(&kinds);
        let (first, second) = repair_then_check(&mut sim, frontend, pairs);
        for (i, report) in first.reports.iter().enumerate() {
            prop_assert!(
                !report.errors.is_empty(),
                "instance {} corruption went undetected ({})", i, planted[i]
            );
        }
        prop_assert!(
            second.clean(),
            "second pass not clean: {:?}", second.errors()
        );
    }
}
