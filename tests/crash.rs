//! Crash-point and consistency-check coverage for the WAL (PR 7) and
//! two-phase-commit eras:
//!
//! * `crash_at_every_write_preserves_acknowledged_state` — the exhaustive
//!   sweep: measure how many elementary disk writes the reference run
//!   performs on each disk, then re-run the workload killing the node
//!   after write 1, 2, …, N of each disk. Every run must produce the
//!   byte-identical client transcript (replies, read-back contents, and
//!   the closing machine-wide `pfsck --check` verdict).
//! * `server_kill_at_every_decision_point_preserves_atomicity` — the same
//!   workload on a 2PC machine, killing the *coordinator* on each of its
//!   decision-log writes: every BEGIN (in-doubt window, presumed abort)
//!   and every COMMIT (phase-2 redo) of every Create/Delete fan-out.
//! * `crash_at_every_lfs_write_under_2pc_preserves_atomicity` — the
//!   participant side of the same sweep: PREPARE and DECIDE records die
//!   with their node at every ordinal.
//! * `random_crash_schedules_preserve_acknowledged_state` /
//!   `random_schedules_mixing_server_and_node_kills_under_2pc` — proptest
//!   over seeded multi-crash schedules on the same workload.
//! * `pfsck_detects_and_repairs_seeded_corruptions` /
//!   `seeded_corruption_mixes_repair_to_clean` — every
//!   [`CorruptionKind`] planted on a live instance is detected by
//!   `pfsck`, repaired under `--repair`, and a second pass reports clean.
//! * `orphan_column_is_resolved_by_the_logged_decision` — a column left
//!   behind on a node that missed phase 2 is repaired by `pfsck`'s
//!   machine-wide pass exactly as the decision log says.
//! * `pfsck_smoke` — the quick single-instance detect/repair/clean pass
//!   the CI pfsck-smoke step runs on every push.

use bridge_repro::core::{
    BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec, MachineManifest,
    ManifestEntry, PlacementSpec, Redundancy,
};
use bridge_repro::efs::{
    set_failed, spawn_lfs, CorruptionKind, Efs, EfsConfig, LfsClient, LfsData, LfsFileId, LfsOp,
};
use bridge_repro::parsim::{
    mix64, splitmix64, CrashAt, FaultPlan, NodeId, ProcId, SimConfig, SimDuration, Simulation,
    SERVER_DISK,
};
use bridge_repro::simdisk::{DiskGeometry, DiskProfile, SimDisk};
use bridge_repro::tools::{machine_check, pfsck, FsckOptions, MachineFinding};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Breadth of the sweep machine. Small on purpose: the sweep runs the
/// workload once per elementary write per disk.
const BREADTH: u32 = 2;

/// Deterministic payload for append/overwrite `i` of stream `tag`.
fn content(tag: u8, i: u64) -> Vec<u8> {
    vec![tag ^ (i as u8), (i >> 8) as u8, tag, 0x42]
        .into_iter()
        .cycle()
        .take(48 + (i as usize % 5) * 16)
        .collect()
}

/// FNV-1a, to log block contents compactly.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the fixed sweep workload on a WAL machine and returns the client
/// transcript (ending with the machine-wide `pfsck --check` verdict),
/// each disk's elementary write count at the end of the run — the crash
/// ordinal space the sweep walks — and the run's elapsed virtual time
/// (not part of the transcript: recovery legitimately costs time).
fn sweep_workload(config: &BridgeConfig) -> (Vec<String>, Vec<u64>, u64) {
    let (mut sim, machine) = BridgeMachine::build(config);
    let server = machine.server;
    let pairs: Vec<(ProcId, NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    let retry = config.server.lfs_retry;
    sim.block_on(machine.frontend, "sweep-client", move |ctx| {
        let mut bridge = BridgeClient::with_retry(server, retry);
        let mut log: Vec<String> = Vec::new();
        let a = bridge
            .create(
                ctx,
                CreateSpec {
                    placement: PlacementSpec::RoundRobin,
                    size_hint: Some(16),
                    ..CreateSpec::default()
                },
            )
            .expect("create a");
        let b = bridge
            .create(
                ctx,
                CreateSpec {
                    placement: PlacementSpec::Chunked,
                    size_hint: Some(8),
                    ..CreateSpec::default()
                },
            )
            .expect("create b");
        log.push(format!("create a={a:?} b={b:?}"));
        for i in 0..10 {
            let n = bridge
                .seq_write(ctx, a, content(0xC0, i))
                .expect("append a");
            log.push(format!("a.append[{i}] -> {n}"));
        }
        for i in 0..6 {
            let n = bridge
                .seq_write(ctx, b, content(0xD0, i))
                .expect("append b");
            log.push(format!("b.append[{i}] -> {n}"));
        }
        bridge
            .rand_write(ctx, a, 4, content(0xEE, 4))
            .expect("overwrite a");
        log.push("a.overwrite[4]".to_string());
        for (name, file) in [("a", a), ("b", b)] {
            let info = bridge.open(ctx, file).expect("open");
            let mut line = format!("{name}.read size={}:", info.size);
            while let Some(block) = bridge.seq_read(ctx, file).expect("seq read") {
                write!(line, " {:016x}", fnv(&block)).unwrap();
            }
            log.push(line);
        }
        let freed = bridge.delete(ctx, b).expect("delete b");
        log.push(format!("b.delete -> {freed}"));
        for i in 10..12 {
            let n = bridge
                .seq_write(ctx, a, content(0xC0, i))
                .expect("append a");
            log.push(format!("a.append[{i}] -> {n}"));
        }
        let info = bridge.open(ctx, a).expect("reopen a");
        let mut line = format!("a.final size={}:", info.size);
        while let Some(block) = bridge.seq_read(ctx, a).expect("final read") {
            write!(line, " {:016x}", fnv(&block)).unwrap();
        }
        log.push(line);
        let verdict = pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                retry,
                // The machine-wide pass cross-checks the server's
                // directory (and, on a 2PC machine, its decision log)
                // against every instance — the all-or-nothing check.
                server: Some(server),
                ..FsckOptions::default()
            },
        )
        .expect("pfsck");
        log.push(format!(
            "pfsck clean={} repaired={} errors={:?}",
            verdict.clean(),
            verdict.repaired,
            verdict.errors(),
        ));
        let mut client = LfsClient::with_retry(retry);
        let mut writes = Vec::new();
        for &(proc, _) in &pairs {
            match client
                .call(ctx, proc, LfsOp::DiskStats)
                .expect("disk stats")
            {
                LfsData::DiskCounters(stats) => writes.push(stats.writes),
                other => panic!("unexpected DiskStats reply: {other:?}"),
            }
        }
        (log, writes, ctx.now().as_nanos())
    })
}

/// The fault-free reference run, computed once per process.
fn reference() -> &'static (Vec<String>, Vec<u64>, u64) {
    static REF: OnceLock<(Vec<String>, Vec<u64>, u64)> = OnceLock::new();
    REF.get_or_init(|| sweep_workload(&BridgeConfig::instant(BREADTH).with_wal()))
}

/// The fault-free reference run on the two-phase-commit machine.
fn reference_2pc() -> &'static (Vec<String>, Vec<u64>, u64) {
    static REF: OnceLock<(Vec<String>, Vec<u64>, u64)> = OnceLock::new();
    REF.get_or_init(|| sweep_workload(&BridgeConfig::instant(BREADTH).with_2pc()))
}

/// Machine-wide mutations in the sweep workload: two Creates and one
/// Delete. On the 2PC machine each costs the coordinator exactly two
/// elementary decision-log writes (BEGIN, COMMIT), which fixes the
/// server-kill ordinal space at `2 * SWEEP_MACHINE_OPS`.
const SWEEP_MACHINE_OPS: u64 = 3;

/// Runs the sweep workload under `crashes` on `base` and asserts the
/// transcript is identical to `baseline`.
fn check_crashes_on(label: &str, base: BridgeConfig, baseline: &[String], crashes: Vec<CrashAt>) {
    let plan = FaultPlan {
        seed: 0x0C4A_0007,
        crashes,
        ..FaultPlan::none()
    };
    let (crashed, _, _) = sweep_workload(&base.with_faults(plan.clone()));
    assert_eq!(
        crashed, baseline,
        "crash invariant violated ({label}): plan {plan:?}"
    );
}

/// Runs the sweep workload under `crashes` and asserts the transcript is
/// identical to the fault-free reference.
fn check_crashes(label: &str, crashes: Vec<CrashAt>) {
    let (baseline, _, _) = reference();
    check_crashes_on(
        label,
        BridgeConfig::instant(BREADTH).with_wal(),
        baseline,
        crashes,
    );
}

/// The 2PC variant of [`check_crashes`].
fn check_crashes_2pc(label: &str, crashes: Vec<CrashAt>) {
    let (baseline, _, _) = reference_2pc();
    check_crashes_on(
        label,
        BridgeConfig::instant(BREADTH).with_2pc(),
        baseline,
        crashes,
    );
}

/// The headline sweep: kill each node after every single elementary disk
/// write it performs (including the WAL appends, commit records,
/// checkpoints, and the recovery-era writes of earlier crash points in
/// multi-crash plans — the ordinal space is the reference run's), and
/// require the acknowledged state to survive every cut.
#[test]
fn crash_at_every_write_preserves_acknowledged_state() {
    let (_, writes, _) = reference();
    assert_eq!(writes.len(), BREADTH as usize);
    let mut swept = 0u64;
    for (disk, &n) in writes.iter().enumerate() {
        assert!(n > 0, "disk {disk} never wrote — workload too small");
        for k in 1..=n {
            check_crashes(
                &format!("disk {disk}, write {k}/{n}"),
                vec![CrashAt {
                    disk: disk as u32,
                    after_writes: k,
                    down: SimDuration::from_millis(300),
                }],
            );
            swept += 1;
        }
    }
    eprintln!("swept {swept} crash points across {} disks", writes.len());
}

/// Routing the workload through two-phase commit is client-invisible: the
/// fault-free 2PC transcript — every reply, every read-back, the pfsck
/// verdict with its machine-wide pass — matches the plain WAL machine's.
#[test]
fn fault_free_two_pc_transcript_matches_wal_machine() {
    assert_eq!(reference_2pc().0, reference().0);
}

/// The headline 2PC sweep: fail-stop the *coordinator* on every
/// elementary write of its decision log — each BEGIN (participants hold
/// durable PREPAREs, no decision on record: the in-doubt window presumed
/// abort must resolve) and each COMMIT (decision durable: phase 2 must be
/// redone) of every Create/Delete fan-out — plus one past-the-end ordinal
/// that must never fire. Every cut recovers to the byte-identical
/// transcript: files exist on all their placement nodes or on none, the
/// freed-block accounting matches, and pfsck's machine-wide pass finds
/// nothing to repair.
#[test]
fn server_kill_at_every_decision_point_preserves_atomicity() {
    let n = 2 * SWEEP_MACHINE_OPS;
    for k in 1..=n + 1 {
        check_crashes_2pc(
            &format!("server write {k}/{n}"),
            vec![CrashAt {
                disk: SERVER_DISK,
                after_writes: k,
                down: SimDuration::from_millis(300),
            }],
        );
    }
    eprintln!("swept {n} coordinator crash points (+1 past the end)");
}

/// Guard against an inert sweep: a kill on the very first decision-log
/// write must actually fire — transcript identical, but the run pays at
/// least the 300 ms down window in virtual time.
#[test]
fn server_kill_sweep_is_not_inert() {
    let &(_, _, fault_free) = reference_2pc();
    let plan = FaultPlan {
        seed: 0x0C4A_0007,
        crashes: vec![CrashAt {
            disk: SERVER_DISK,
            after_writes: 1,
            down: SimDuration::from_millis(300),
        }],
        ..FaultPlan::none()
    };
    let (_, _, crashed) =
        sweep_workload(&BridgeConfig::instant(BREADTH).with_2pc().with_faults(plan));
    assert!(
        crashed >= fault_free + SimDuration::from_millis(300).as_nanos(),
        "the coordinator kill never fired: {crashed} vs fault-free {fault_free}"
    );
}

/// The participant side: on the 2PC machine, kill each LFS node after
/// every elementary write of its disk — now including the PREPARE records
/// (a node dies holding a tentative intent whose vote never leaves) and
/// the DECIDE records (a node dies mid-finalization and must replay it).
#[test]
fn crash_at_every_lfs_write_under_2pc_preserves_atomicity() {
    let (_, writes, _) = reference_2pc();
    assert_eq!(writes.len(), BREADTH as usize);
    let mut swept = 0u64;
    for (disk, &n) in writes.iter().enumerate() {
        assert!(n > 0, "disk {disk} never wrote — workload too small");
        for k in 1..=n {
            check_crashes_2pc(
                &format!("2pc disk {disk}, write {k}/{n}"),
                vec![CrashAt {
                    disk: disk as u32,
                    after_writes: k,
                    down: SimDuration::from_millis(300),
                }],
            );
            swept += 1;
        }
    }
    eprintln!(
        "swept {swept} participant crash points across {} disks",
        writes.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Seeded multi-crash schedules (1–3 kills, random disks, ordinals
    /// and down windows) on the sweep workload: same invariant.
    #[test]
    fn random_crash_schedules_preserve_acknowledged_state(seed in any::<u64>()) {
        let (_, writes, _) = reference();
        let max_writes = writes.iter().copied().max().unwrap_or(1);
        let mut s = mix64(seed, 0x5EED_0C4A);
        let mut draw = move || splitmix64(&mut s);
        let mut crashes = Vec::new();
        for _ in 0..1 + draw() % 3 {
            crashes.push(CrashAt {
                disk: (draw() % u64::from(BREADTH)) as u32,
                // Past-the-end ordinals (never firing) are legal and must
                // behave like no fault; bias toward in-range cuts.
                after_writes: 1 + draw() % (max_writes + max_writes / 4 + 1),
                down: SimDuration::from_millis(100 + draw() % 1_200),
            });
        }
        check_crashes("random schedule", crashes);
    }

    /// Seeded schedules on the 2PC machine mixing coordinator kills with
    /// node kills — in-doubt windows stacked on participant recoveries.
    #[test]
    fn random_schedules_mixing_server_and_node_kills_under_2pc(seed in any::<u64>()) {
        let (_, writes, _) = reference_2pc();
        let max_writes = writes.iter().copied().max().unwrap_or(1);
        let mut s = mix64(seed, 0x5EED_2BC0);
        let mut draw = move || splitmix64(&mut s);
        let mut crashes = Vec::new();
        for _ in 0..1 + draw() % 3 {
            // One in three kills targets the coordinator's decision log.
            let (disk, span) = if draw() % 3 == 0 {
                (SERVER_DISK, 2 * SWEEP_MACHINE_OPS)
            } else {
                ((draw() % u64::from(BREADTH)) as u32, max_writes)
            };
            crashes.push(CrashAt {
                disk,
                after_writes: 1 + draw() % (span + span / 4 + 1),
                down: SimDuration::from_millis(100 + draw() % 1_200),
            });
        }
        check_crashes_2pc("random 2pc schedule", crashes);
    }
}

/// A node that misses phase 2 keeps its column: fail-stop one node, let a
/// Delete commit around it (its vote and its decision ack are both
/// tolerated as lost), revive it — the machine is now exactly the state
/// the ISSUE's headline names, a file deleted everywhere except one
/// orphaned column. `pfsck`'s machine-wide pass must find the orphan,
/// resolve it by the logged COMMIT decision under `--repair`, and report
/// clean on a second pass.
#[test]
fn orphan_column_is_resolved_by_the_logged_decision() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(3).with_2pc());
    let server = machine.server;
    let victim = machine.lfs[1];
    let pairs: Vec<(ProcId, NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    sim.block_on(machine.frontend, "orphan-ctl", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge
            .create(
                ctx,
                CreateSpec {
                    redundancy: Redundancy::Mirror,
                    ..CreateSpec::default()
                },
            )
            .expect("create");
        for i in 0..6 {
            bridge
                .seq_write(ctx, file, content(0xAB, i))
                .expect("append");
        }
        set_failed(ctx, victim, true);
        bridge
            .delete(ctx, file)
            .expect("delete commits around the dead node");
        set_failed(ctx, victim, false);
        // The revived node still holds its columns (primary + mirror).
        let check = pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                server: Some(server),
                ..FsckOptions::default()
            },
        )
        .expect("pfsck --check");
        let machine_report = check.machine.as_ref().expect("machine pass ran");
        let orphans: Vec<_> = machine_report
            .findings
            .iter()
            .filter(|f| {
                matches!(
                    f,
                    MachineFinding::OrphanColumn {
                        node: 1,
                        resolvable: true,
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(
            orphans.len(),
            2,
            "primary and mirror columns orphaned: {machine_report:?}"
        );
        assert!(!check.clean());
        let repair = pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                repair: true,
                server: Some(server),
                ..FsckOptions::default()
            },
        )
        .expect("pfsck --repair");
        assert_eq!(repair.machine.as_ref().expect("machine pass").repaired, 2);
        let second = pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                server: Some(server),
                ..FsckOptions::default()
            },
        )
        .expect("second pass");
        assert!(
            second.clean(),
            "not clean after repair: {:?}",
            second.errors()
        );
    });
}

/// A directory entry naming a node beyond the machine's breadth (a stale
/// placement spec) is *reported* by the machine-wide pass — not chased
/// into an out-of-bounds instance index.
#[test]
fn machine_check_reports_out_of_range_placement() {
    let manifest = MachineManifest {
        breadth: 2,
        files: vec![ManifestEntry {
            file: BridgeFileId(7),
            lfs_file: LfsFileId(7),
            companion: None,
            nodes: vec![0, 5],
            redundancy: Redundancy::None,
            size: 0,
            start: 0,
        }],
        decisions: Vec::new(),
    };
    // Node 0 holds the column; "node 5" exists only in the stale entry.
    let listings = vec![
        vec![bridge_repro::efs::FileInfo {
            file: LfsFileId(7),
            size: 0,
            first: None,
            last: None,
        }],
        Vec::new(),
    ];
    let findings = machine_check(&manifest, &listings);
    assert_eq!(
        findings,
        vec![MachineFinding::NodeOutOfRange {
            file: BridgeFileId(7),
            node: 5,
            breadth: 2,
        }]
    );
}

/// Builds one LFS instance per requested corruption: populate a fresh
/// Efs with a few files, plant the corruption, then hand the damaged
/// instance to a live LFS server. Returns the simulation, the pfsck
/// targets, a controller node, and what was corrupted.
fn corrupted_machine(
    kinds: &[CorruptionKind],
) -> (Simulation, Vec<(ProcId, NodeId)>, NodeId, Vec<String>) {
    let mut sim = Simulation::new(SimConfig::default());
    let frontend = sim.add_node("frontend");
    let geometry = DiskGeometry {
        block_size: 1024,
        blocks_per_track: 8,
        tracks: 64,
    };
    let mut pairs = Vec::new();
    let mut planted = Vec::new();
    for (i, &kind) in kinds.iter().enumerate() {
        let node = sim.add_node(format!("p{i}"));
        let mut efs = sim.block_on(node, format!("loader{i}"), move |ctx| {
            let mut efs = Efs::format(
                SimDisk::new(geometry, DiskProfile::instant()),
                EfsConfig {
                    cpu_per_request: SimDuration::ZERO,
                    ..EfsConfig::default()
                },
            );
            for f in 0..3u32 {
                let file = LfsFileId(f);
                efs.create(ctx, file).expect("create");
                for block_no in 0..4u32 {
                    efs.write(
                        ctx,
                        file,
                        block_no,
                        &content(f as u8, u64::from(block_no)),
                        None,
                    )
                    .expect("write");
                }
            }
            efs.sync(ctx).expect("sync");
            efs
        });
        let desc = efs
            .seed_corruption(kind)
            .expect("instance has a corruption target");
        planted.push(format!("lfs{i}: {desc}"));
        pairs.push((spawn_lfs(&mut sim, node, format!("lfs{i}"), efs), node));
    }
    (sim, pairs, frontend, planted)
}

/// Runs `pfsck --repair` then `pfsck --check` against `pairs` and
/// returns both verdicts.
fn repair_then_check(
    sim: &mut Simulation,
    frontend: NodeId,
    pairs: Vec<(ProcId, NodeId)>,
) -> (
    bridge_repro::tools::FsckVerdict,
    bridge_repro::tools::FsckVerdict,
) {
    sim.block_on(frontend, "pfsck-ctl", move |ctx| {
        let first = pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                repair: true,
                ..FsckOptions::default()
            },
        )
        .expect("pfsck --repair");
        let second = pfsck(ctx, &pairs, &FsckOptions::default()).expect("pfsck --check");
        (first, second)
    })
}

/// Every corruption kind, one per instance: all are detected, all are
/// repaired, and the second machine-wide pass is clean.
#[test]
fn pfsck_detects_and_repairs_seeded_corruptions() {
    let kinds = [
        CorruptionKind::TornTail,
        CorruptionKind::OrphanBlock,
        CorruptionKind::DanglingEntry,
    ];
    let (mut sim, pairs, frontend, planted) = corrupted_machine(&kinds);
    let (first, second) = repair_then_check(&mut sim, frontend, pairs);
    assert_eq!(first.reports.len(), kinds.len());
    for (i, report) in first.reports.iter().enumerate() {
        assert!(
            !report.errors.is_empty(),
            "instance {i} corruption went undetected ({})",
            planted[i]
        );
        assert!(
            report.repaired > 0,
            "instance {i} corruption not repaired ({})",
            planted[i]
        );
    }
    assert!(
        second.clean(),
        "second pass must be clean, got {:?}",
        second.errors()
    );
    assert_eq!(second.repaired, 0, "nothing left to repair");
}

/// The CI pfsck-smoke step: one instance, one corruption, detect →
/// repair → clean, in well under a second.
#[test]
fn pfsck_smoke() {
    let (mut sim, pairs, frontend, planted) = corrupted_machine(&[CorruptionKind::TornTail]);
    let (first, second) = repair_then_check(&mut sim, frontend, pairs);
    assert!(!first.clean(), "corruption undetected ({planted:?})");
    assert!(first.repaired > 0);
    assert!(
        second.clean(),
        "not repaired to clean: {:?}",
        second.errors()
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// Random mixes of seeded corruptions across 1–4 instances: pfsck
    /// with repair always converges to a clean second pass.
    #[test]
    fn seeded_corruption_mixes_repair_to_clean(seed in any::<u64>()) {
        let mut s = mix64(seed, 0xF5C6_u64);
        let mut draw = move || splitmix64(&mut s);
        let all = [
            CorruptionKind::TornTail,
            CorruptionKind::OrphanBlock,
            CorruptionKind::DanglingEntry,
        ];
        let kinds: Vec<CorruptionKind> = (0..1 + draw() % 4)
            .map(|_| all[(draw() % 3) as usize])
            .collect();
        let (mut sim, pairs, frontend, planted) = corrupted_machine(&kinds);
        let (first, second) = repair_then_check(&mut sim, frontend, pairs);
        for (i, report) in first.reports.iter().enumerate() {
            prop_assert!(
                !report.errors.is_empty(),
                "instance {} corruption went undetected ({})", i, planted[i]
            );
        }
        prop_assert!(
            second.clean(),
            "second pass not clean: {:?}", second.errors()
        );
    }
}
