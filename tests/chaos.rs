//! Chaos tests: the headline fault-tolerance invariant.
//!
//! For any *bounded* fault plan — drop/duplicate/delay rates with a
//! consecutive-drop cap, finite outage windows, transient disk errors
//! under the driver retry limit — a workload run against a Bridge machine
//! with retries enabled produces **exactly** the client-visible replies
//! and final file contents of the fault-free run. Faults may only change
//! timing, never observable behaviour.
//!
//! Three entry points exercise it:
//!
//! * `bounded_faults_preserve_observable_behavior` — proptest over random
//!   plan seeds, a quick subset on every `cargo test`.
//! * `chaos_soak` — the CI soak hook. `CHAOS_SEED` picks the seed block
//!   (nightly CI derives it from the date), `CHAOS_CASES` the case count,
//!   and `CHAOS_REPLAY` replays one failing plan seed exactly. A failing
//!   seed is written to `target/chaos_failures/` so CI can attach it, and
//!   the panic message carries the replay command.
//! * `fault_seed_corpus_replays_clean` — regression corpus: every seed in
//!   `tests/fault_seeds/` replays on plain `cargo test`, forever.
//!
//! The WAL era adds **crash-at-any-point** kills to the bounded envelope:
//! on a machine with the per-LFS write-ahead log enabled, a plan may also
//! kill nodes between any two elementary disk writes
//! ([`CrashAt`]). The invariant is the same — every acknowledged
//! operation survives, replies and final contents equal the fault-free
//! run's — and each crash run additionally ends with a machine-wide
//! `pfsck --check` whose clean verdict joins the transcript. The crash
//! entry points mirror the originals: the
//! `crash_schedules_preserve_acknowledged_writes` proptest, the
//! `crash_soak` CI hook (`CRASH_SEED` / `CRASH_CASES` / `CRASH_REPLAY`),
//! and `crash_seed_corpus_replays_clean` over `tests/fault_seeds/
//! *.crashseed`.

use bridge_repro::core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, PlacementSpec};
use bridge_repro::parsim::{
    mix64, splitmix64, BlockFaultRule, CrashAt, DiskFaults, FaultPlan, MsgFaults, NodeId, Outage,
    OutageKind, ProcId, RunStats, SimDuration, SimTime, SERVER_DISK,
};
use bridge_repro::tools::{pfsck, FsckOptions};
use bridge_repro::trace::{Metrics, TraceCollector};
use proptest::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Node indexes in a [`BridgeMachine`] build: the server node is added
/// first, then the frontend, then one node per LFS.
const SERVER_NODE: usize = 0;
const FIRST_LFS_NODE: usize = 2;

/// Machine breadth used by every chaos run.
const BREADTH: u32 = 3;

/// Draws a bounded fault plan from a seed. Every knob stays inside the
/// convergence envelope: drop runs are capped, outage windows are short
/// (their sum plus `delay_max` is far below the servers' dedup
/// retention), and disk error bursts stay under the driver retry limit.
fn plan_from_seed(seed: u64) -> FaultPlan {
    let mut s = mix64(seed, 0x00C4_A05B);
    let mut draw = move || splitmix64(&mut s);
    let msg = MsgFaults {
        drop_per_mille: (draw() % 250) as u16,
        dup_per_mille: (draw() % 250) as u16,
        delay_per_mille: (draw() % 300) as u16,
        delay_max: SimDuration::from_micros(1 + draw() % 100_000),
        max_consecutive_drops: 2 + (draw() % 6) as u32,
    };
    let mut outages = Vec::new();
    for _ in 0..draw() % 3 {
        // Hit the Bridge server node or one of the LFS nodes, never the
        // frontend the driving client runs on.
        let node = match draw() % 4 {
            0 => SERVER_NODE,
            pick => FIRST_LFS_NODE + (pick as usize - 1),
        };
        let from = SimTime::ZERO + SimDuration::from_millis(draw() % 1_500);
        let len = SimDuration::from_millis(10 + draw() % 800);
        outages.push(Outage {
            node: NodeId::from_index(node),
            from,
            until: from + len,
            kind: if draw() % 2 == 0 {
                OutageKind::Down
            } else {
                OutageKind::Paused
            },
        });
    }
    let mut targets = Vec::new();
    for _ in 0..draw() % 3 {
        targets.push(BlockFaultRule {
            disk: (draw() % u64::from(BREADTH)) as u32,
            block: (draw() % 256) as u32,
            fails: 1 + (draw() % 4) as u32,
        });
    }
    let disk = DiskFaults {
        error_per_mille: (draw() % 150) as u16,
        max_consecutive: 1 + (draw() % 6) as u32,
        targets,
    };
    FaultPlan {
        seed,
        msg,
        outages,
        disk,
        crashes: Vec::new(),
        losses: Vec::new(),
    }
}

/// Draws a crash-era plan: the bounded envelope of [`plan_from_seed`]
/// plus one or two crash-at-any-point node kills. Write ordinals stay
/// small enough to land inside (or just past) the workload's write
/// stream, and down windows stay far below the retry budget.
fn crash_plan_from_seed(seed: u64) -> FaultPlan {
    let mut plan = plan_from_seed(seed);
    let mut s = mix64(seed, 0x0C4A_511E);
    let mut draw = move || splitmix64(&mut s);
    for _ in 0..1 + draw() % 2 {
        plan.crashes.push(CrashAt {
            disk: (draw() % u64::from(BREADTH)) as u32,
            after_writes: 1 + draw() % 256,
            down: SimDuration::from_millis(200 + draw() % 1_800),
        });
    }
    plan
}

/// Draws a machine-atomicity plan: the crash-era envelope of
/// [`crash_plan_from_seed`] plus one fail-stop of the *coordinator*,
/// addressed by [`SERVER_DISK`]. The workload issues three machine-wide
/// mutations (two creates, one delete), each costing exactly two
/// decision-log writes (BEGIN, COMMIT), so an ordinal in `1..=8` lands
/// the kill on any BEGIN (an in-doubt transaction: durable prepares, no
/// decision), any COMMIT, or just past the stream.
fn two_pc_crash_plan_from_seed(seed: u64) -> FaultPlan {
    let mut plan = crash_plan_from_seed(seed);
    let mut s = mix64(seed, 0x7C10_2BC0);
    let mut draw = move || splitmix64(&mut s);
    plan.crashes.push(CrashAt {
        disk: SERVER_DISK,
        after_writes: 1 + draw() % 8,
        down: SimDuration::from_millis(200 + draw() % 800),
    });
    plan
}

/// Deterministic payload for append/overwrite `i` of stream `tag`.
fn content(tag: u8, i: u64) -> Vec<u8> {
    vec![tag ^ (i as u8), (i >> 8) as u8, tag, 0x42]
        .into_iter()
        .cycle()
        .take(64 + (i as usize % 7) * 16)
        .collect()
}

/// FNV-1a, to log block contents compactly.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the fixed chaos workload and returns the transcript of every
/// client-visible reply (results and read-back contents, no timing),
/// plus the run's scheduler counters.
fn run_workload(config: &BridgeConfig) -> (Vec<String>, RunStats) {
    run_workload_with(config, false, false)
}

/// [`run_workload`] on a WAL-era machine: the transcript additionally
/// ends with a machine-wide `pfsck --check` verdict, so a crash plan must
/// not only preserve replies and contents but also leave every instance
/// consistent.
fn run_wal_workload(config: &BridgeConfig) -> (Vec<String>, RunStats) {
    run_workload_with(config, true, false)
}

/// [`run_wal_workload`] on a 2PC machine: the closing pfsck additionally
/// runs the machine-wide pass (directory vs every instance, orphans
/// resolved by the coordinator's logged decisions).
fn run_two_pc_workload(config: &BridgeConfig) -> (Vec<String>, RunStats) {
    run_workload_with(config, true, true)
}

fn run_workload_with(
    config: &BridgeConfig,
    pfsck_tail: bool,
    machine_pass: bool,
) -> (Vec<String>, RunStats) {
    let (mut sim, machine) = BridgeMachine::build(config);
    let server = machine.server;
    let pairs: Vec<(ProcId, NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    let retry = config.server.lfs_retry;
    let log = sim.block_on(machine.frontend, "chaos-client", move |ctx| {
        let mut bridge = BridgeClient::with_retry(server, retry);
        let mut log: Vec<String> = Vec::new();
        let a = bridge
            .create(
                ctx,
                CreateSpec {
                    placement: PlacementSpec::RoundRobin,
                    size_hint: Some(64),
                    ..CreateSpec::default()
                },
            )
            .expect("create a");
        let b = bridge
            .create(
                ctx,
                CreateSpec {
                    placement: PlacementSpec::Chunked,
                    size_hint: Some(32),
                    ..CreateSpec::default()
                },
            )
            .expect("create b");
        log.push(format!("create a={a:?} b={b:?}"));
        for i in 0..40 {
            let n = bridge
                .seq_write(ctx, a, content(0xA0, i))
                .expect("append a");
            log.push(format!("a.append[{i}] -> {n}"));
        }
        for i in 0..24 {
            let n = bridge
                .seq_write(ctx, b, content(0xB0, i))
                .expect("append b");
            log.push(format!("b.append[{i}] -> {n}"));
        }
        for at in [3u64, 17, 29] {
            bridge
                .rand_write(ctx, a, at, content(0xEE, at))
                .expect("overwrite a");
            log.push(format!("a.overwrite[{at}]"));
        }
        for (name, file) in [("a", a), ("b", b)] {
            let info = bridge.open(ctx, file).expect("open");
            let mut line = format!("{name}.read size={}:", info.size);
            while let Some(block) = bridge.seq_read(ctx, file).expect("seq read") {
                write!(line, " {:016x}", fnv(&block)).unwrap();
            }
            log.push(line);
        }
        let freed = bridge.delete(ctx, b).expect("delete b");
        log.push(format!("b.delete -> {freed}"));
        for i in 40..48 {
            let n = bridge
                .seq_write(ctx, a, content(0xA0, i))
                .expect("append a");
            log.push(format!("a.append[{i}] -> {n}"));
        }
        for at in [0u64, 17, 44, 47] {
            let block = bridge.rand_read(ctx, a, at).expect("rand read a");
            log.push(format!("a.rand_read[{at}] -> {:016x}", fnv(&block)));
        }
        let info = bridge.open(ctx, a).expect("reopen a");
        let mut line = format!("a.final size={}:", info.size);
        while let Some(block) = bridge.seq_read(ctx, a).expect("final read") {
            write!(line, " {:016x}", fnv(&block)).unwrap();
        }
        log.push(line);
        if pfsck_tail {
            let verdict = pfsck(
                ctx,
                &pairs,
                &FsckOptions {
                    retry,
                    server: machine_pass.then_some(server),
                    ..FsckOptions::default()
                },
            )
            .expect("pfsck");
            log.push(format!(
                "pfsck clean={} repaired={} errors={:?}",
                verdict.clean(),
                verdict.repaired,
                verdict.errors(),
            ));
        }
        log
    });
    (log, sim.stats())
}

/// The headline invariant for one plan: transcript under faults+retries
/// equals the fault-free transcript. Panics with a replayable report on
/// mismatch. Returns both runs' scheduler counters so directed tests can
/// assert that the faults actually fired.
fn check_plan(label: &str, plan: FaultPlan) -> (RunStats, RunStats) {
    let (baseline, base_stats) = run_workload(&BridgeConfig::instant(BREADTH));
    let (faulted, fault_stats) =
        run_workload(&BridgeConfig::instant(BREADTH).with_faults(plan.clone()));
    if baseline == faulted {
        return (base_stats, fault_stats);
    }
    let divergence = baseline
        .iter()
        .zip(faulted.iter())
        .position(|(b, f)| b != f)
        .unwrap_or_else(|| baseline.len().min(faulted.len()));
    record_failure(plan.seed, "seed");
    panic!(
        "chaos invariant violated ({label}, plan seed {seed}):\n\
         first divergence at reply {divergence}:\n\
           fault-free: {base:?}\n\
           faulted:    {fault:?}\n\
         replay with: CHAOS_REPLAY={seed} cargo test --test chaos chaos_soak\n\
         plan: {plan:?}",
        seed = plan.seed,
        base = baseline.get(divergence),
        fault = faulted.get(divergence),
    );
}

fn check_seed(label: &str, seed: u64) {
    check_plan(label, plan_from_seed(seed));
}

/// The crash-era headline invariant for one plan, on a WAL machine:
/// transcript (replies, contents, **and** the closing pfsck verdict)
/// under crashes+faults+retries equals the fault-free transcript.
fn check_crash_plan(label: &str, plan: FaultPlan) -> (RunStats, RunStats) {
    let (baseline, base_stats) = run_wal_workload(&BridgeConfig::instant(BREADTH).with_wal());
    let (faulted, fault_stats) = run_wal_workload(
        &BridgeConfig::instant(BREADTH)
            .with_wal()
            .with_faults(plan.clone()),
    );
    if baseline == faulted {
        return (base_stats, fault_stats);
    }
    let divergence = baseline
        .iter()
        .zip(faulted.iter())
        .position(|(b, f)| b != f)
        .unwrap_or_else(|| baseline.len().min(faulted.len()));
    record_failure(plan.seed, "crashseed");
    panic!(
        "crash invariant violated ({label}, plan seed {seed}):\n\
         first divergence at reply {divergence}:\n\
           fault-free: {base:?}\n\
           faulted:    {fault:?}\n\
         replay with: CRASH_REPLAY={seed} cargo test --test chaos crash_soak\n\
         plan: {plan:?}",
        seed = plan.seed,
        base = baseline.get(divergence),
        fault = faulted.get(divergence),
    );
}

fn check_crash_seed(label: &str, seed: u64) {
    check_crash_plan(label, crash_plan_from_seed(seed));
}

/// The machine-atomicity invariant for one plan, on a 2PC machine:
/// transcript — replies, contents, and the closing machine-wide pfsck
/// verdict — under node kills *and* a coordinator fail-stop equals the
/// fault-free transcript. A crash on a BEGIN write leaves an in-doubt
/// transaction that presumed-abort recovery must roll back; a crash on a
/// COMMIT write must still complete the decided transaction everywhere.
fn check_two_pc_crash_plan(label: &str, plan: FaultPlan) {
    let (baseline, _) = run_two_pc_workload(&BridgeConfig::instant(BREADTH).with_2pc());
    let (faulted, _) = run_two_pc_workload(
        &BridgeConfig::instant(BREADTH)
            .with_2pc()
            .with_faults(plan.clone()),
    );
    if baseline == faulted {
        return;
    }
    let divergence = baseline
        .iter()
        .zip(faulted.iter())
        .position(|(b, f)| b != f)
        .unwrap_or_else(|| baseline.len().min(faulted.len()));
    record_failure(plan.seed, "crashseed");
    panic!(
        "machine atomicity violated ({label}, plan seed {seed}):\n\
         first divergence at reply {divergence}:\n\
           fault-free: {base:?}\n\
           faulted:    {fault:?}\n\
         plan: {plan:?}",
        seed = plan.seed,
        base = baseline.get(divergence),
        fault = faulted.get(divergence),
    );
}

/// A mid-rate everything-on plan for tests that need fault activity
/// rather than coverage breadth.
fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        msg: MsgFaults {
            drop_per_mille: 200,
            dup_per_mille: 150,
            delay_per_mille: 200,
            delay_max: SimDuration::from_millis(20),
            max_consecutive_drops: 4,
        },
        disk: DiskFaults {
            error_per_mille: 150,
            max_consecutive: 4,
            targets: Vec::new(),
        },
        ..FaultPlan::none()
    }
}

/// Saves a failing plan seed under `target/chaos_failures/` so CI can
/// upload it as an artifact (and a developer can move it into
/// `tests/fault_seeds/` to pin the regression). The extension picks the
/// replay command: `.seed` for `CHAOS_REPLAY`, `.crashseed` for
/// `CRASH_REPLAY`.
fn record_failure(seed: u64, ext: &str) {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target")
        .join("chaos_failures");
    if std::fs::create_dir_all(&dir).is_ok() {
        let _ = std::fs::write(dir.join(format!("{seed}.{ext}")), format!("{seed}\n"));
    }
}

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("{name} must be a u64, got {v:?}")),
        Err(_) => default,
    }
}

/// The CI soak hook (also a normal quick test when the env is unset).
#[test]
fn chaos_soak() {
    if let Ok(replay) = std::env::var("CHAOS_REPLAY") {
        let seed = replay
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CHAOS_REPLAY must be a u64, got {replay:?}"));
        check_seed("replay", seed);
        return;
    }
    let base = env_u64("CHAOS_SEED", 0x00B2_1D6E);
    let cases = env_u64("CHAOS_CASES", 6);
    for case in 0..cases {
        check_seed("soak", mix64(base, case));
    }
}

/// The crash-soak CI hook: date-seeded crash schedules on a WAL machine
/// (also a normal quick test when the env is unset). `CRASH_REPLAY`
/// replays one failing plan seed exactly; failing seeds land in
/// `target/chaos_failures/` for CI to attach.
#[test]
fn crash_soak() {
    if let Ok(replay) = std::env::var("CRASH_REPLAY") {
        let seed = replay
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CRASH_REPLAY must be a u64, got {replay:?}"));
        check_crash_seed("replay", seed);
        return;
    }
    let base = env_u64("CRASH_SEED", 0x00C4_A5F0);
    let cases = env_u64("CRASH_CASES", 4);
    for case in 0..cases {
        check_crash_seed("crash soak", mix64(base, case));
    }
}

/// Reads every seed (decimal u64, one per line, `#` comments) from the
/// `tests/fault_seeds/*.{ext}` corpus files.
fn corpus_seeds(ext: &str) -> Vec<u64> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fault_seeds");
    let mut seeds = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("tests/fault_seeds exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_none_or(|e| e != ext) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable seed file");
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let seed: u64 = line
                .parse()
                .unwrap_or_else(|_| panic!("bad seed line {line:?} in {path:?}"));
            seeds.push(seed);
        }
    }
    assert!(!seeds.is_empty(), "corpus holds at least one .{ext} seed");
    seeds
}

/// Every crash-plan seed ever caught in the wild replays clean, forever
/// (`tests/fault_seeds/*.crashseed`).
#[test]
fn crash_seed_corpus_replays_clean() {
    for seed in corpus_seeds("crashseed") {
        check_crash_seed("crash corpus", seed);
    }
}

/// Every crash-plan seed also replays clean on the 2PC machine with a
/// coordinator fail-stop layered on top (`two_pc_crash_plan_from_seed`).
/// `tests/fault_seeds/two_pc.crashseed` pins seeds whose server-kill
/// ordinal lands on each BEGIN write — the in-doubt-participant states
/// presumed-abort recovery exists for.
#[test]
fn two_pc_crash_seed_corpus_replays_clean() {
    for seed in corpus_seeds("crashseed") {
        check_two_pc_crash_plan("2pc crash corpus", two_pc_crash_plan_from_seed(seed));
    }
}

/// Every seed ever caught in the wild replays clean, forever.
#[test]
fn fault_seed_corpus_replays_clean() {
    for seed in corpus_seeds("seed") {
        check_seed("corpus", seed);
    }
}

/// Directed plan: heavy drops on every message stream, nothing else.
/// Drops force timeouts, so the faulted run must take strictly longer in
/// virtual time — proof the plan was not inert.
#[test]
fn drop_storm_converges() {
    let (base, faulted) = check_plan(
        "drop storm",
        FaultPlan {
            seed: 11,
            msg: MsgFaults {
                drop_per_mille: 400,
                max_consecutive_drops: 4,
                ..MsgFaults::default()
            },
            ..FaultPlan::none()
        },
    );
    assert!(
        faulted.end_time > base.end_time,
        "drops must cost retry waits: {:?} vs {:?}",
        faulted.end_time,
        base.end_time
    );
}

/// Directed plan: duplicate and delay without ever dropping — exercises
/// the dedup window and reply-duplicate discard rather than timeouts.
/// Duplicates mean strictly more deliveries than the fault-free run.
#[test]
fn dup_delay_storm_converges() {
    let (base, faulted) = check_plan(
        "dup+delay storm",
        FaultPlan {
            seed: 12,
            msg: MsgFaults {
                dup_per_mille: 350,
                delay_per_mille: 350,
                delay_max: SimDuration::from_millis(50),
                ..MsgFaults::default()
            },
            ..FaultPlan::none()
        },
    );
    assert!(
        faulted.messages > base.messages,
        "duplicates must inflate deliveries: {} vs {}",
        faulted.messages,
        base.messages
    );
}

/// Directed plan: the Bridge server node crashes right out of the gate
/// and an LFS node pauses shortly after.
#[test]
fn outage_windows_converge() {
    let (base, faulted) = check_plan(
        "outages",
        FaultPlan {
            seed: 13,
            outages: vec![
                Outage {
                    node: NodeId::from_index(SERVER_NODE),
                    from: SimTime::ZERO,
                    until: SimTime::ZERO + SimDuration::from_millis(400),
                    kind: OutageKind::Down,
                },
                Outage {
                    node: NodeId::from_index(FIRST_LFS_NODE + 1),
                    from: SimTime::ZERO + SimDuration::from_millis(300),
                    until: SimTime::ZERO + SimDuration::from_millis(900),
                    kind: OutageKind::Paused,
                },
            ],
            ..FaultPlan::none()
        },
    );
    assert!(
        faulted.end_time > base.end_time,
        "riding out the outages must take longer: {:?} vs {:?}",
        faulted.end_time,
        base.end_time
    );
}

/// Directed plan: disk-only faults — random transients plus targeted
/// block failures; the driver absorbs all of it below the protocol.
#[test]
fn disk_transients_converge() {
    check_plan(
        "disk transients",
        FaultPlan {
            seed: 14,
            disk: DiskFaults {
                error_per_mille: 200,
                max_consecutive: 6,
                targets: vec![
                    BlockFaultRule {
                        disk: 0,
                        block: 0,
                        fails: 3,
                    },
                    BlockFaultRule {
                        disk: 2,
                        block: 17,
                        fails: 2,
                    },
                ],
            },
            ..FaultPlan::none()
        },
    );
}

/// Arming a crash schedule that never fires must not change anything:
/// the write counting is host-side only, so the run is RunStats-bit-
/// identical to — and transcript-identical with — the same machine with
/// no plan at all.
#[test]
fn inert_crash_plan_is_bit_identical() {
    let fault_free = BridgeConfig::instant(BREADTH).with_wal();
    let (base_log, base_stats) = run_wal_workload(&fault_free);
    let mut armed = fault_free;
    armed.faults = FaultPlan {
        seed: 16,
        crashes: vec![CrashAt {
            disk: 0,
            after_writes: u64::MAX,
            down: SimDuration::from_secs(1),
        }],
        ..FaultPlan::none()
    };
    let (armed_log, armed_stats) = run_wal_workload(&armed);
    assert_eq!(base_log, armed_log, "inert crash plan changed a reply");
    assert_eq!(
        base_stats, armed_stats,
        "inert crash plan changed the event stream"
    );
}

/// Directed plan: a single node kill in the middle of the write stream,
/// nothing else. The downtime must cost virtual time (retries riding out
/// the window), and every acknowledged op must survive recovery.
#[test]
fn crash_mid_run_converges() {
    let (base, faulted) = check_crash_plan(
        "mid-run crash",
        FaultPlan {
            seed: 17,
            crashes: vec![CrashAt {
                disk: 1,
                after_writes: 40,
                down: SimDuration::from_millis(500),
            }],
            ..FaultPlan::none()
        },
    );
    assert!(
        faulted.end_time > base.end_time,
        "riding out the crash must take longer: {:?} vs {:?}",
        faulted.end_time,
        base.end_time
    );
}

/// Directed plan for the replay path: heavy duplicates and delays *plus*
/// node kills. A delayed duplicate of an operation that committed to the
/// WAL but had not yet been applied when the node died must be answered
/// from the recovered dedup window (seeded from the log), never
/// re-executed against the recovered state.
#[test]
fn crash_with_duplicate_storm_replays_committed_ops() {
    let (base, faulted) = check_crash_plan(
        "crash + dup storm",
        FaultPlan {
            seed: 18,
            msg: MsgFaults {
                dup_per_mille: 350,
                delay_per_mille: 350,
                delay_max: SimDuration::from_millis(50),
                ..MsgFaults::default()
            },
            crashes: vec![
                CrashAt {
                    disk: 0,
                    after_writes: 25,
                    down: SimDuration::from_millis(400),
                },
                CrashAt {
                    disk: 2,
                    after_writes: 60,
                    down: SimDuration::from_millis(300),
                },
            ],
            ..FaultPlan::none()
        },
    );
    assert!(
        faulted.messages > base.messages,
        "duplicates must inflate deliveries: {} vs {}",
        faulted.messages,
        base.messages
    );
}

/// A traced storm run surfaces its fault and recovery activity through
/// the metrics pipeline: resends happened, every one of them recovered
/// (none exhausted), and both message and disk faults were recorded.
#[test]
fn storm_activity_surfaces_in_retry_metrics() {
    let collector = TraceCollector::install();
    let mut config = BridgeConfig::instant(BREADTH).with_faults(storm_plan(15));
    config.tracer = Some(collector.as_tracer());
    run_workload(&config);
    let metrics = Metrics::from_trace(&collector.snapshot());
    let retry = &metrics.retry;
    assert!(!retry.is_empty(), "storm must leave a trace");
    assert!(retry.resends > 0, "drops must force resends");
    assert!(retry.recovered > 0, "resends must recover");
    assert_eq!(retry.exhausted, 0, "bounded faults never spend the budget");
    assert!(retry.msg_drops > 0, "drop instants recorded");
    assert!(retry.msg_dups > 0, "dup instants recorded");
    assert!(
        retry.disk_transients > 0,
        "disk transient instants recorded"
    );
    assert!(
        retry.recovery.count() > 0,
        "recovery latency histogram populated"
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// The headline invariant over random bounded plans.
    #[test]
    fn bounded_faults_preserve_observable_behavior(seed in any::<u64>()) {
        check_seed("proptest", seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        .. ProptestConfig::default()
    })]

    /// The crash-era invariant over random crash schedules layered on
    /// random bounded plans: acknowledged writes survive, nothing is
    /// half-applied, and pfsck stays clean.
    #[test]
    fn crash_schedules_preserve_acknowledged_writes(seed in any::<u64>()) {
        check_crash_seed("crash proptest", seed);
    }
}
