//! Offline stand-in for the `crossbeam` crate.
//!
//! The simulation kernel only needs `crossbeam::channel`'s basics —
//! `unbounded`, `bounded`, cloneable senders, blocking `send`/`recv` with
//! disconnect errors — so this vendored crate provides exactly that over
//! `Mutex` + `Condvar`. Performance is adequate: the DES scheduler strictly
//! alternates one running process with the scheduler, so channels are never
//! contended.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// Receiving half; cloneable (any one receiver gets each message).
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// The message could not be delivered: all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// The channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A channel holding at most `cap` undelivered messages; `send` blocks
    /// while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "zero-capacity channels are not supported");
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(chan.clone()), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Delivers `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.0.not_full.wait(inner).expect("channel poisoned");
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message, blocking until one arrives; errs once
        /// the channel is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    drop(inner);
                    self.0.not_full.notify_one();
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.0.not_empty.wait(inner).expect("channel poisoned");
            }
        }

        /// Takes the next message if one is already queued.
        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            match inner.queue.pop_front() {
                Some(value) => {
                    drop(inner);
                    self.0.not_full.notify_one();
                    Ok(value)
                }
                None => Err(RecvError),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel poisoned").senders += 1;
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.inner.lock().expect("channel poisoned").receivers += 1;
            Receiver(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            inner.senders -= 1;
            if inner.senders == 0 {
                drop(inner);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.0.inner.lock().expect("channel poisoned");
            inner.receivers -= 1;
            if inner.receivers == 0 {
                drop(inner);
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_channel() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_last_sender_drops() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            drop(tx);
            tx2.send(2).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(5).is_err());
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded(1);
            tx.send(1u32).unwrap();
            let handle = std::thread::spawn(move || {
                tx.send(2).unwrap(); // blocks until the 1 is taken
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            handle.join().unwrap();
        }

        #[test]
        fn cross_thread_rendezvous() {
            let (tx, rx) = unbounded();
            let handle = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
            handle.join().unwrap();
        }
    }
}
