//! Strategies: deterministic random generators for test inputs.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing random values of [`Strategy::Value`].
pub trait Strategy {
    /// The produced type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`crate::prop_oneof!`].
pub struct Union<T: Clone + Debug> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: Clone + Debug> Union<T> {
    /// A strategy choosing uniformly among `arms`.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Clone + Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Clone + Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

/// The strategy producing any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length bounds for [`crate::collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub(crate) min: usize,
    pub(crate) max_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

/// See [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// See [`crate::array::uniform32`].
pub struct ArrayStrategy<S, const N: usize> {
    pub(crate) element: S,
}

impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// A minimal regex-flavoured string strategy: `.{a,b}` means "between `a`
/// and `b` printable ASCII characters"; any other pattern falls back to
/// 0–16 printable characters.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repetition(self).unwrap_or((0, 16));
        let len = min + rng.below((max - min) as u64 + 1) as usize;
        (0..len)
            .map(|_| (b' ' + rng.below(95) as u8) as char)
            .collect()
    }
}

fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    (lo <= hi).then_some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = TestRng::for_test("ranges_and_maps_compose");
        let strat = (0u8..4).prop_map(|v| v * 10);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!([0, 10, 20, 30].contains(&v));
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let mut rng = TestRng::for_test("union_hits_every_arm");
        let arms: Vec<Box<dyn Strategy<Value = u8>>> =
            vec![Box::new(0u8..1), Box::new(5u8..6), Box::new(9u8..10)];
        let union = Union::new(arms);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(union.generate(&mut rng));
        }
        assert_eq!(seen, [0u8, 5, 9].into_iter().collect());
    }

    #[test]
    fn vec_respects_size_bounds() {
        let mut rng = TestRng::for_test("vec_respects_size_bounds");
        let strat = crate::collection::vec(0u32..100, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
        let exact = crate::collection::vec(any::<u8>(), 0..=3);
        for _ in 0..100 {
            assert!(exact.generate(&mut rng).len() <= 3);
        }
    }

    #[test]
    fn string_pattern_controls_length() {
        let mut rng = TestRng::for_test("string_pattern_controls_length");
        for _ in 0..100 {
            let s = ".{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        let fixed = ".{3,3}".generate(&mut rng);
        assert_eq!(fixed.chars().count(), 3);
    }

    #[test]
    fn arrays_and_tuples_generate() {
        let mut rng = TestRng::for_test("arrays_and_tuples_generate");
        let arr = crate::array::uniform32(any::<u8>()).generate(&mut rng);
        assert_eq!(arr.len(), 32);
        let (a, b, c) = (0u8..2, 0u16..3, any::<bool>()).generate(&mut rng);
        assert!(a < 2 && b < 3);
        let _: bool = c;
    }
}
