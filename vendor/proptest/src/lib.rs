//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, range/tuple/`any`/`prop_oneof!`/
//! `prop_map` strategies, `collection::vec`, `array::uniform32`, and a
//! simple `.{a,b}`-style string strategy. Failing cases are **not
//! shrunk**; instead every generated input is printed verbatim on failure
//! together with the case number, and generation is deterministic (seeded
//! from the test name), so failures reproduce exactly on re-run.

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};
pub use test_runner::ProptestConfig;

/// `proptest::collection` — strategies for containers.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// `proptest::array` — strategies for fixed-size arrays.
pub mod array {
    use crate::strategy::{ArrayStrategy, Strategy};

    /// A `[T; 32]` with every element drawn from `element`.
    pub fn uniform32<S: Strategy>(element: S) -> ArrayStrategy<S, 32> {
        ArrayStrategy { element }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Picks uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>> =
            vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(arms)
    }};
}

/// Declares property-test functions: each named argument is drawn from its
/// strategy and the body re-runs for `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = $crate::test_runner::effective_cases(config.cases);
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cases {
                $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng); )+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $( let $arg = ::std::clone::Clone::clone(&$arg); )+
                    $body
                }));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs:",
                        stringify!($name),
                        case + 1,
                        cases,
                    );
                    $( eprintln!("  {} = {:?}", stringify!($arg), $arg); )+
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
