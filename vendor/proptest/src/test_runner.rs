//! The runner's configuration and deterministic RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stand-in never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// The case count, honouring a `PROPTEST_CASES` environment override.
pub fn effective_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(configured),
        Err(_) => configured,
    }
}

/// Deterministic generator seeded from the test's name: every run of a
/// given test sees the same case sequence, so failures reproduce exactly.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// The generator for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name, mixed with a fixed tweak.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ 0x9e37_79b9_7f4a_7c15))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform value in `0..n` (`n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::for_test("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
