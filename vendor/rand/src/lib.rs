//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides exactly the subset of the rand 0.9 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `random` and `random_range`. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic across runs and
//! platforms, which is all the simulation kernel requires.

use std::ops::{Range, RangeInclusive};

/// A source of random `u32`/`u64` values.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that [`Rng::random`] can produce.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience extension methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..1000 {
            let v = rng.random_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0usize..=5);
            assert!(w <= 5);
            let x = rng.random_range(3u64..4);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn shuffle_visits_all_indices() {
        // The Fisher–Yates pattern the bench workloads use.
        let mut rng = SmallRng::seed_from_u64(42);
        let mut keys: Vec<u64> = (0..100).collect();
        for i in (1..keys.len()).rev() {
            let j = rng.random_range(0..=i);
            keys.swap(i, j);
        }
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(keys, sorted, "shuffle actually permutes");
    }
}
