//! Offline stand-in for the `criterion` crate.
//!
//! Provides the macro/builder surface the workspace's micro-benchmarks
//! use. Measurement is intentionally simple — warm up, time a fixed batch
//! of iterations, report the mean — which is enough to compare hot-path
//! costs between commits without any external dependencies.

use std::time::{Duration, Instant};

/// Benchmark driver; collects settings and prints one line per benchmark.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Target time spent measuring.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("## {name}");
        BenchmarkGroup {
            criterion: self,
            _name: name,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    _name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up_time: self.criterion.warm_up_time,
            measurement_time: self.criterion.measurement_time,
            sample_size: self.criterion.sample_size,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "{:<28} {:>12}/iter ({} iterations)",
            name.into(),
            format_ns(bencher.mean_ns),
            bencher.iters,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        println!();
    }
}

/// Passed to each benchmark closure; runs and times the measured routine.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    mean_ns: f64,
    iters: u64,
}

/// How `iter_batched` amortizes setup cost (ignored by this stand-in —
/// every batch is one setup plus one routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl Bencher {
    /// Measures `routine` called back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut warm_iters: u64 = 0;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        // Calibrate iterations to roughly fill the measurement budget.
        let per_sample = (warm_iters.max(1))
            .saturating_mul(self.measurement_time.as_nanos().max(1) as u64)
            / self.warm_up_time.as_nanos().max(1) as u64;
        let per_sample = per_sample.clamp(1, 10_000_000) / self.sample_size.max(1) as u64;
        let per_sample = per_sample.max(1);
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            total_ns += start.elapsed().as_nanos();
            total_iters += per_sample;
        }
        self.mean_ns = total_ns as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }

    /// Measures `routine` on fresh input from `setup` each batch; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            std::hint::black_box(routine(setup()));
        }
        let mut total_ns = 0u128;
        let mut total_iters = 0u64;
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total_ns += start.elapsed().as_nanos();
            total_iters += 1;
        }
        self.mean_ns = total_ns as f64 / total_iters.max(1) as f64;
        self.iters = total_iters;
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a group of benchmark functions sharing one configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("test");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![3u8, 1, 2],
                |mut v| {
                    v.sort();
                    v
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
