//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset this workspace uses: the [`Buf`]/[`BufMut`]
//! little-endian codec helpers over `&[u8]`/`Vec<u8>`, and a [`Bytes`]
//! type — an immutable, reference-counted byte buffer whose clones and
//! slices share one allocation, so a batched reply fanned out into many
//! per-block payloads costs one buffer, not N copies.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Sequential big-buffer reads; advancing consumes the front of `self`.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next `n` bytes.
    fn take_front(&mut self, n: usize) -> &[u8];

    /// Consumes 4 bytes as a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_front(4).try_into().expect("4 bytes"))
    }

    /// Consumes 8 bytes as a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_front(8).try_into().expect("8 bytes"))
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow: {} < {n}", self.len());
        let (front, rest) = self.split_at(n);
        *self = rest;
        front
    }
}

/// Sequential buffer writes, appending to the back of `self`.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// An immutable, reference-counted byte buffer.
///
/// Clones and [`slice`](Bytes::slice)s are O(1): they bump a refcount and
/// adjust a window, sharing the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice. (Copies under the hood — acceptable for the
    /// small constants this is used for.)
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `data` into a fresh shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether this view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// An O(1) sub-view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&s) => s,
            Bound::Excluded(&s) => s + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&e) => e + 1,
            Bound::Excluded(&e) => e,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of 0..{}",
            self.len
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len: end - start,
        }
    }

    /// Copies this view out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            len,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_ref()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips() {
        let mut buf = Vec::new();
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(0x0123_4567_89ab_cdef);
        buf.put_slice(b"tail");
        buf.put_u8(7);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.take_front(4), b"tail");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_slices_share_storage() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let s = b.slice(2..6);
        assert_eq!(&s[..], &[2, 3, 4, 5]);
        let ss = s.slice(1..=2);
        assert_eq!(&ss[..], &[3, 4]);
        assert_eq!(
            Arc::as_ptr(&b.data),
            Arc::as_ptr(&ss.data),
            "one allocation"
        );
        assert_eq!(b.len(), 8);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn equality_against_vecs_and_slices() {
        let b = Bytes::from(vec![9, 9, 9]);
        assert_eq!(b, vec![9u8, 9, 9]);
        assert_eq!(vec![9u8, 9, 9], b);
        assert_eq!(b, *[9u8, 9, 9].as_slice());
        assert_eq!(b.clone(), b);
        assert_eq!(b.to_vec(), vec![9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_slice_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..5);
    }
}
