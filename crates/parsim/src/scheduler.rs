//! The deterministic event scheduler.
//!
//! Exactly one simulated process executes at any instant. The scheduler
//! pops events in (virtual-time, sequence) order and *dispatches* each to
//! its process, servicing the syscalls the process issues until it blocks
//! (message receive, delay) or exits. Runs are therefore bit-for-bit
//! reproducible regardless of host scheduling.
//!
//! Two engines execute process bodies (see [`Engine`]):
//!
//! * **Run-to-completion** (default): each process runs on a stackful
//!   fiber on the scheduler's own thread; a dispatch is two register-window
//!   swaps ([`crate::fiber`]).
//! * **Threaded** (compatibility tier): each process is an OS thread that
//!   parks on a scheduler-owned [`ResumeSlot`] mailbox; a dispatch is two
//!   OS context switches.
//!
//! Both engines run identical process code and observe the identical
//! syscall sequence at identical virtual times, so [`RunStats`], traces,
//! and fault behavior are bit-for-bit equal across them.

use crate::envelope::Envelope;
use crate::fault::{FaultPlan, FaultState, MsgFate, OutageKind};
use crate::fiber;
use crate::process::{Ctx, ProcFn, ProcId, Resume, ResumeSlot, ShutdownSignal, Syscall};
use crate::time::{SimDuration, SimTime};
use crate::topology::{LatencyModel, NodeId, UniformLatency};
use crate::trace::{nop_tracer, TracerHandle};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;

/// How simulated process bodies execute. Either engine produces
/// bit-identical virtual times, [`RunStats`], traces, and fault behavior;
/// they differ only in host-side cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Stackful fibers on the scheduler's thread: one event dispatch is a
    /// pair of register-window swaps. The default wherever supported.
    RunToCompletion,
    /// One OS thread per process, parked on a scheduler-owned resume
    /// slot. Kept as the compatibility tier (targets without fiber
    /// support) and as the reference engine for equivalence tests.
    Threaded,
}

impl Engine {
    /// The best engine for this target: [`Engine::RunToCompletion`] where
    /// a fiber context switch is implemented (x86-64, aarch64), else
    /// [`Engine::Threaded`].
    pub fn auto() -> Engine {
        if fiber::SUPPORTED {
            Engine::RunToCompletion
        } else {
            Engine::Threaded
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::auto()
    }
}

/// Configuration for a [`Simulation`].
pub struct SimConfig {
    /// Interconnect latency model.
    pub latency: Box<dyn LatencyModel>,
    /// Seed for per-process deterministic RNGs.
    pub seed: u64,
    /// Virtual-time tracer (`None` = the no-op tracer). Tracers observe
    /// only: installing one never changes scheduling, [`RunStats`], or the
    /// virtual end time.
    pub tracer: Option<TracerHandle>,
    /// Deterministic fault plan. [`FaultPlan::none`] (the default)
    /// installs no fault state at all: the run takes the exact
    /// pre-fault-layer code path, bit-identical stats and timestamps.
    pub faults: FaultPlan,
    /// Execution engine. [`Engine::auto`] (the default) picks the fiber
    /// engine wherever supported; results are bit-identical either way.
    pub engine: Engine,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency: Box::new(UniformLatency::default()),
            seed: 0x0b71dce5,
            tracer: None,
            faults: FaultPlan::none(),
            engine: Engine::auto(),
        }
    }
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("latency", &"<dyn LatencyModel>")
            .field("seed", &self.seed)
            .field("tracer", &self.tracer)
            .field("faults", &self.faults)
            .field("engine", &self.engine)
            .finish()
    }
}

/// Counters describing a completed [`Simulation::run`].
///
/// Every field is a function of the simulation alone, not of the
/// [`Engine`] executing it: equivalence tests assert bit-identical
/// `RunStats` across engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunStats {
    /// Events popped from the queue.
    pub events: u64,
    /// Messages delivered to mailboxes or waiting receivers.
    pub messages: u64,
    /// Processes spawned over the simulation's lifetime.
    pub spawned: u64,
    /// Payload bytes posted through the interconnect (the sum of every
    /// `send_sized` size argument).
    pub bytes_sent: u64,
    /// High-water mark of the pending event queue — the scheduler's peak
    /// working-set, which batching should shrink.
    pub queue_high_water: usize,
    /// Control transfers into a process carrying a start, message, or
    /// timer wake-up — the unit the engine pays for (a fiber switch pair,
    /// or an OS park/unpark pair under [`Engine::Threaded`]).
    pub dispatches: u64,
    /// Syscalls serviced across all dispatches: posts, spawns, blocks,
    /// exits. The scheduler's instruction count, one level below
    /// `dispatches`.
    pub syscalls: u64,
    /// Timer wake-ups batched out: recv-timeout wakes superseded by a
    /// message and discarded clock-free, without a dispatch.
    pub wakes_elided: u64,
    /// Peak number of consecutive events dispatched at one virtual
    /// instant — the instantaneous ready-set depth the scheduler
    /// serializes, which grows with machine breadth.
    pub ready_peak: u64,
    /// Virtual time when the run stopped.
    pub end_time: SimTime,
}

#[derive(PartialEq, Eq, Clone, Copy, Debug)]
enum ProcState {
    /// Spawned; start event pending.
    Starting,
    /// Currently executing (at most one process at a time).
    Running,
    BlockedRecv,
    BlockedRecvTimeout,
    BlockedDelay,
    Dead,
}

/// The execution resource behind one process, per its engine.
enum Body {
    /// Run-to-completion, not yet started: the body closure waits for the
    /// start event, when it is wrapped into a fiber (so a built fiber is
    /// always entered immediately, and abandoned processes never leak an
    /// un-entered stack).
    Pending { f: Option<ProcFn> },
    /// Run-to-completion, started: the process's fiber.
    Fiber(fiber::Fiber),
    /// Threaded engine: the process's OS thread and its resume slot.
    Thread {
        resume: Arc<ResumeSlot>,
        join: Option<JoinHandle<()>>,
    },
    /// Exited fiber; its stack has been freed.
    Done,
}

struct ProcSlot {
    name: String,
    node: NodeId,
    body: Body,
    state: ProcState,
    mailbox: VecDeque<Envelope>,
    /// Generation counter invalidating stale wake events.
    wake_gen: u64,
    /// Virtual time the current run interval began (tracing only): set
    /// when the process leaves a receive wait, cleared when it next blocks
    /// in one. Delays do not end an interval — they model the process
    /// actively computing or waiting on a device, not sitting idle.
    run_started: Option<SimTime>,
    /// Tracing only: the parent process and flow id of the spawn edge, so
    /// the child's start is stitched to its spawner in the trace's
    /// causality graph. `None` for processes spawned from the host.
    start_flow: Option<(ProcId, u64)>,
}

enum EventKind {
    Start { pid: ProcId },
    Deliver { dst: ProcId, env: Envelope },
    Wake { pid: ProcId, gen: u64 },
}

struct Event {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event simulation of a message-passing
/// multiprocessor.
///
/// # Examples
///
/// Two processes on different nodes exchanging a message:
///
/// ```
/// use parsim::{SimConfig, SimDuration, Simulation};
///
/// let mut sim = Simulation::new(SimConfig::default());
/// let a = sim.add_node("a");
/// let b = sim.add_node("b");
///
/// let pong = sim.spawn(b, "pong", |ctx| {
///     let (from, n) = ctx.recv_as::<u32>();
///     ctx.send(from, n + 1);
/// });
///
/// let got = sim.block_on(a, "ping", move |ctx| {
///     ctx.send(pong, 41u32);
///     let (_, n) = ctx.recv_as::<u32>();
///     n
/// });
/// assert_eq!(got, 42);
/// ```
pub struct Simulation {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Reverse<Event>>,
    procs: Vec<ProcSlot>,
    nodes: Vec<String>,
    engine: Engine,
    syscall_tx: Sender<(ProcId, Syscall)>,
    syscall_rx: Receiver<(ProcId, Syscall)>,
    latency: Box<dyn LatencyModel>,
    seed: u64,
    stats: RunStats,
    tracer: TracerHandle,
    /// Next message id handed to the tracer's flow events.
    flow_seq: u64,
    /// Message-fault state; `None` when the plan is inert, which keeps
    /// the fault-free paths untouched.
    faults: Option<FaultState>,
    /// Pending [`EventKind::Wake`] events already superseded by a message
    /// resume. They are queue residue, not simulation activity, so the
    /// dispatcher discards them clock-free and the high-water mark
    /// excludes them — arming recv timeouts that never fire must leave
    /// [`RunStats`] bit-identical to the timeout-free run.
    stale_wakes: usize,
    /// Length of the current run of events sharing one timestamp (feeds
    /// [`RunStats::ready_peak`]).
    ready_run: u64,
    /// Timestamp of the most recently dispatched event.
    last_event_time: Option<SimTime>,
    /// Virtual-time sampler (see [`Simulation::set_sampler`]). `None`
    /// keeps the hot loop's fast path untouched.
    sampler: Option<SamplerSlot>,
}

/// The observer callback behind [`Simulation::set_sampler`].
type SamplerHook = Box<dyn FnMut(SimTime, &RunStats)>;

/// State behind [`Simulation::set_sampler`]: the interval, the next
/// boundary to fire at, and the observer callback.
struct SamplerSlot {
    interval: SimDuration,
    next: SimTime,
    hook: SamplerHook,
}

/// Suppress the panic-hook output for the internal shutdown unwind while
/// leaving genuine panics fully reported.
fn install_panic_filter() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownSignal>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Mixes the simulation seed with a process id into an RNG seed
/// (splitmix64 finalizer).
fn mix_seed(seed: u64, pid: u32) -> u64 {
    let mut z = seed ^ (u64::from(pid).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

static THREAD_SERIAL: AtomicU64 = AtomicU64::new(0);

impl Simulation {
    /// Creates an empty simulation with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        install_panic_filter();
        let (syscall_tx, syscall_rx) = unbounded();
        Simulation {
            now: SimTime::ZERO,
            seq: 0,
            events: BinaryHeap::new(),
            procs: Vec::new(),
            nodes: Vec::new(),
            engine: if fiber::SUPPORTED {
                config.engine
            } else {
                Engine::Threaded
            },
            syscall_tx,
            syscall_rx,
            latency: config.latency,
            seed: config.seed,
            stats: RunStats::default(),
            tracer: config.tracer.unwrap_or_else(nop_tracer),
            flow_seq: 0,
            faults: if config.faults.is_inert_for_scheduler() {
                None
            } else {
                Some(FaultState::new(&config.faults))
            },
            stale_wakes: 0,
            ready_run: 0,
            last_event_time: None,
            sampler: None,
        }
    }

    /// Installs a virtual-time sampler: `hook` fires once per `interval`
    /// boundary the clock crosses while running (carrying the boundary
    /// time and the counters accumulated so far, `end_time` set to the
    /// boundary), plus once more at quiescence with the final counters —
    /// that last sample is bit-identical to the [`RunStats`] the run
    /// returns.
    ///
    /// Sampling is observation-only, like tracing: the hook runs on the
    /// host between event dispatches, consumes no virtual time, sends no
    /// messages, and schedules nothing, so a run with a sampler installed
    /// produces bit-identical `RunStats` to the same run without one.
    /// Boundaries with no intervening events fire in order before the
    /// event that crosses them; an event landing exactly on a boundary is
    /// sampled before it dispatches.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn set_sampler(
        &mut self,
        interval: SimDuration,
        hook: impl FnMut(SimTime, &RunStats) + 'static,
    ) {
        assert!(!interval.is_zero(), "sampler interval must be positive");
        self.sampler = Some(SamplerSlot {
            interval,
            next: self.now + interval,
            hook: Box::new(hook),
        });
    }

    /// Removes the sampler installed by [`set_sampler`](Self::set_sampler).
    pub fn clear_sampler(&mut self) {
        self.sampler = None;
    }

    /// The engine actually executing this simulation (the configured one,
    /// downgraded to [`Engine::Threaded`] on targets without fibers).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Adds a processing node and returns its id.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        let name = name.into();
        if self.tracer.enabled() {
            self.tracer.node_named(id, &name);
        }
        self.nodes.push(name);
        id
    }

    /// Adds `n` nodes named `prefix0..prefix{n-1}` and returns their ids.
    pub fn add_nodes(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|i| self.add_node(format!("{prefix}{i}")))
            .collect()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of processes that are not dead.
    pub fn live_processes(&self) -> usize {
        self.procs
            .iter()
            .filter(|p| p.state != ProcState::Dead)
            .count()
    }

    /// The registered name of a process.
    ///
    /// # Panics
    ///
    /// Panics if `pid` was not spawned by this simulation.
    pub fn process_name(&self, pid: ProcId) -> &str {
        &self.procs[pid.index()].name
    }

    fn push_event(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(Event { time, seq, kind }));
        let live = self.events.len() - self.stale_wakes;
        if live > self.stats.queue_high_water {
            self.stats.queue_high_water = live;
        }
    }

    /// Spawns a process on `node`; it starts at the current virtual time
    /// once [`Simulation::run`] is (next) called.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not created by [`Simulation::add_node`].
    pub fn spawn(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        f: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> ProcId {
        self.spawn_boxed(node, name.into(), Box::new(f))
    }

    fn spawn_boxed(&mut self, node: NodeId, name: String, f: ProcFn) -> ProcId {
        assert!(
            node.index() < self.nodes.len(),
            "node {node} does not exist"
        );
        let pid = ProcId(u32::try_from(self.procs.len()).expect("too many processes"));
        if self.tracer.enabled() {
            self.tracer.proc_named(pid, node, &name);
        }
        let body = match self.engine {
            Engine::RunToCompletion => Body::Pending { f: Some(f) },
            Engine::Threaded => {
                let resume = ResumeSlot::new();
                let resume_proc = Arc::clone(&resume);
                let syscall_tx = self.syscall_tx.clone();
                let rng_seed = mix_seed(self.seed, pid.0);
                let tracer = self.tracer.clone();
                let serial = THREAD_SERIAL.fetch_add(1, Ordering::Relaxed);
                let thread_name = format!("parsim-{serial}-{name}");
                let join = std::thread::Builder::new()
                    .name(thread_name)
                    .spawn(move || {
                        let mut ctx =
                            Ctx::new_thread(pid, node, syscall_tx, resume_proc, rng_seed, tracer);
                        // The shutdown unwind raises ShutdownSignal from
                        // inside wait_start/recv/delay; catch it here so the
                        // thread exits quietly. Genuine panics are reported
                        // back to the scheduler.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            ctx.wait_start();
                            f(&mut ctx);
                        }));
                        match result {
                            Ok(()) => ctx.exit(None),
                            Err(payload) => {
                                if payload.downcast_ref::<ShutdownSignal>().is_none() {
                                    let msg = panic_message(&*payload);
                                    ctx.exit(Some(msg));
                                }
                            }
                        }
                    })
                    .expect("failed to spawn simulation thread");
                Body::Thread {
                    resume,
                    join: Some(join),
                }
            }
        };
        self.procs.push(ProcSlot {
            name,
            node,
            body,
            state: ProcState::Starting,
            mailbox: VecDeque::new(),
            wake_gen: 0,
            run_started: None,
            start_flow: None,
        });
        self.stats.spawned += 1;
        self.push_event(self.now, EventKind::Start { pid });
        pid
    }

    /// Wraps a pending run-to-completion body into its fiber. Called at
    /// the process's start event, immediately before its first dispatch.
    fn ensure_fiber(&mut self, pid: ProcId) {
        if !matches!(self.procs[pid.index()].body, Body::Pending { .. }) {
            return;
        }
        let rng_seed = mix_seed(self.seed, pid.0);
        let tracer = self.tracer.clone();
        let slot = &mut self.procs[pid.index()];
        let node = slot.node;
        let f = match &mut slot.body {
            Body::Pending { f } => f.take().expect("pending body taken twice"),
            _ => unreachable!("checked above"),
        };
        let body: fiber::FiberBody = Box::new(move |cell| {
            let mut ctx = Ctx::new_fiber(pid, node, cell, rng_seed, tracer);
            // Same unwind contract as the threaded engine: the shutdown
            // unwind exits quietly, genuine panics carry their message
            // back to the scheduler in the Exit syscall.
            let result = catch_unwind(AssertUnwindSafe(|| {
                ctx.wait_start();
                f(&mut ctx);
            }));
            drop(ctx);
            match result {
                Ok(()) => Syscall::Exit { panic: None },
                Err(payload) => {
                    if payload.downcast_ref::<ShutdownSignal>().is_some() {
                        Syscall::Exit { panic: None }
                    } else {
                        Syscall::Exit {
                            panic: Some(panic_message(&*payload)),
                        }
                    }
                }
            }
        });
        slot.body = Body::Fiber(fiber::Fiber::new(fiber::DEFAULT_STACK_BYTES, body));
    }

    /// Runs until no events remain (all processes exited or are blocked
    /// waiting for messages that will never arrive).
    ///
    /// # Panics
    ///
    /// Panics if a simulated process panics, propagating its message.
    pub fn run(&mut self) -> RunStats {
        self.run_inner(None)
    }

    /// The counters accumulated so far, with `end_time` at the current
    /// clock — the same value the most recent [`run`](Simulation::run)
    /// returned. Lets callers of [`block_on`](Simulation::block_on)
    /// (which keeps the process result, not the run's stats) read them.
    pub fn stats(&self) -> RunStats {
        RunStats {
            end_time: self.now,
            ..self.stats
        }
    }

    /// Runs until the event queue is exhausted or the next event would
    /// occur after `limit`; the clock is left at `min(limit, end)`.
    pub fn run_until(&mut self, limit: SimTime) -> RunStats {
        let stats = self.run_inner(Some(limit));
        if self.now < limit {
            self.now = limit;
        }
        stats
    }

    fn run_inner(&mut self, limit: Option<SimTime>) -> RunStats {
        loop {
            match self.events.peek() {
                None => break,
                Some(Reverse(ev)) => {
                    if let Some(limit) = limit {
                        if ev.time > limit {
                            break;
                        }
                    }
                }
            }
            let Reverse(ev) = self.events.pop().expect("peeked event exists");
            debug_assert!(ev.time >= self.now, "event time regression");
            if let EventKind::Wake { pid, gen } = ev.kind {
                // Superseded by a message or a later block: discard
                // without advancing the clock or counting an event.
                if self.procs[pid.index()].wake_gen != gen {
                    self.stale_wakes -= 1;
                    self.stats.wakes_elided += 1;
                    continue;
                }
            }
            if let Some(s) = self.sampler.as_mut() {
                // Fire every boundary the clock is about to cross, before
                // the crossing event dispatches, so each sample sees
                // exactly the state as of its boundary instant.
                while s.next <= ev.time {
                    let at = s.next;
                    s.next = at + s.interval;
                    let stats = RunStats {
                        end_time: at,
                        ..self.stats
                    };
                    (s.hook)(at, &stats);
                }
            }
            self.now = ev.time;
            self.stats.events += 1;
            if self.last_event_time == Some(ev.time) {
                self.ready_run += 1;
            } else {
                self.last_event_time = Some(ev.time);
                self.ready_run = 1;
            }
            if self.ready_run > self.stats.ready_peak {
                self.stats.ready_peak = self.ready_run;
            }
            match ev.kind {
                EventKind::Start { pid } => {
                    debug_assert_eq!(self.procs[pid.index()].state, ProcState::Starting);
                    if let Some((parent, flow)) = self.procs[pid.index()].start_flow.take() {
                        if self.tracer.enabled() {
                            self.tracer.flow_recv(flow, parent, pid, self.now);
                        }
                    }
                    self.ensure_fiber(pid);
                    self.dispatch(pid, Resume::Go { now: self.now });
                }
                EventKind::Deliver { dst, env } => {
                    // Outage windows act at delivery time, so one window
                    // covers every message in flight toward the node.
                    if let Some(f) = self.faults.as_ref() {
                        let node = self.procs[dst.index()].node;
                        if let Some(o) = f.outage_at(node, self.now) {
                            match o.kind {
                                OutageKind::Down => {
                                    if self.tracer.enabled() {
                                        self.tracer.instant(
                                            dst,
                                            "fault",
                                            "fault.outage_drop",
                                            self.now,
                                            &[],
                                        );
                                    }
                                    continue;
                                }
                                OutageKind::Paused => {
                                    // Re-queue at the window's end; the
                                    // fresh seq keeps deferred messages in
                                    // their original relative order.
                                    let until = o.until;
                                    self.push_event(until, EventKind::Deliver { dst, env });
                                    continue;
                                }
                            }
                        }
                    }
                    self.stats.messages += 1;
                    if self.tracer.enabled() {
                        self.tracer.flow_recv(env.flow, env.from, dst, self.now);
                    }
                    let slot = &mut self.procs[dst.index()];
                    match slot.state {
                        ProcState::BlockedRecv | ProcState::BlockedRecvTimeout => {
                            // Invalidate any pending recv-timeout wake.
                            if slot.state == ProcState::BlockedRecvTimeout {
                                self.stale_wakes += 1;
                            }
                            slot.wake_gen += 1;
                            self.dispatch(dst, Resume::Msg { env, now: self.now });
                        }
                        ProcState::Dead => { /* dropped on the floor */ }
                        ProcState::Starting | ProcState::BlockedDelay => {
                            slot.mailbox.push_back(env);
                        }
                        ProcState::Running => {
                            unreachable!("no process runs while the scheduler dispatches")
                        }
                    }
                }
                EventKind::Wake { pid, gen } => {
                    let slot = &self.procs[pid.index()];
                    debug_assert_eq!(slot.wake_gen, gen, "stale wakes are pre-filtered");
                    match slot.state {
                        ProcState::BlockedDelay => {
                            self.dispatch(pid, Resume::Go { now: self.now });
                        }
                        ProcState::BlockedRecvTimeout => {
                            self.dispatch(pid, Resume::Timeout { now: self.now });
                        }
                        _ => { /* stale */ }
                    }
                }
            }
        }
        let finished = RunStats {
            end_time: self.now,
            ..self.stats
        };
        if let Some(s) = self.sampler.as_mut() {
            // One final sample at quiescence carrying the run's own
            // counters verbatim — the end-of-run snapshot reconciles
            // against the returned `RunStats` with zero slack.
            (s.hook)(finished.end_time, &finished);
            if s.next <= finished.end_time {
                s.next = finished.end_time + s.interval;
            }
        }
        finished
    }

    /// Closes `pid`'s run interval (if open) and reports it to the tracer.
    fn trace_run_end(&mut self, pid: ProcId) {
        if let Some(start) = self.procs[pid.index()].run_started.take() {
            if self.tracer.enabled() {
                self.tracer.span(pid, "sched", "run", start, self.now, &[]);
            }
        }
    }

    /// Hands `r` to the process (if any is due) and returns the next
    /// syscall it issues: a fiber switch pair under run-to-completion, a
    /// resume-slot put plus a channel receive under the threaded engine
    /// (where fire-and-forget posts need no resume at all — the process
    /// runs ahead).
    fn deliver(&mut self, pid: ProcId, r: Option<Resume>) -> Syscall {
        let resume = match &mut self.procs[pid.index()].body {
            Body::Fiber(fib) => {
                let (sc, finished) = fib.resume(r.unwrap_or(Resume::Continue));
                debug_assert_eq!(
                    finished,
                    matches!(sc, Syscall::Exit { .. }),
                    "a fiber's final switch carries exactly its Exit"
                );
                return sc;
            }
            Body::Thread { resume, .. } => Arc::clone(resume),
            Body::Pending { .. } | Body::Done => {
                unreachable!("dispatch to a process with no runnable body")
            }
        };
        if let Some(r) = r {
            resume.put(r);
        }
        let (from, sc) = self
            .syscall_rx
            .recv()
            .expect("syscall channel closed while a process was running");
        debug_assert_eq!(from, pid, "syscall from a process that is not running");
        sc
    }

    /// Transfers control to `pid` carrying `first` (a start, message, or
    /// timer wake-up) and services its syscalls until it blocks or exits.
    fn dispatch(&mut self, pid: ProcId, first: Resume) {
        {
            let slot = &mut self.procs[pid.index()];
            slot.state = ProcState::Running;
            // A run interval opens when the process leaves a receive wait
            // (or starts); a delay wake-up resumes the interval already
            // open.
            if slot.run_started.is_none() {
                slot.run_started = Some(self.now);
            }
        }
        self.stats.dispatches += 1;
        let mut carry = Some(first);
        loop {
            let sc = self.deliver(pid, carry.take());
            self.stats.syscalls += 1;
            match sc {
                Syscall::Post {
                    dst,
                    payload,
                    bytes,
                    cloner,
                } => {
                    assert!(
                        dst.index() < self.procs.len(),
                        "message to unknown process {dst}"
                    );
                    self.stats.bytes_sent += bytes as u64;
                    let lat = self.latency.latency(
                        self.procs[pid.index()].node,
                        self.procs[dst.index()].node,
                        bytes,
                    );
                    let flow = self.flow_seq;
                    self.flow_seq += 1;
                    if self.tracer.enabled() {
                        self.tracer.flow_send(flow, pid, dst, self.now, bytes);
                    }
                    let mut env = Envelope {
                        from: pid,
                        sent_at: self.now,
                        delivered_at: self.now + lat,
                        payload,
                        flow,
                        cloner,
                    };
                    // One fate draw per post, even when it resolves to a
                    // plain delivery, so the fault stream is a function of
                    // the post sequence alone.
                    let fate = match self.faults.as_mut() {
                        Some(f) => f.next_fate(),
                        None => MsgFate::Deliver,
                    };
                    match fate {
                        MsgFate::Deliver => {
                            self.push_event(self.now + lat, EventKind::Deliver { dst, env });
                        }
                        MsgFate::Drop => {
                            if self.tracer.enabled() {
                                self.tracer.instant(
                                    pid,
                                    "fault",
                                    "fault.msg_drop",
                                    self.now,
                                    &[("dst", u64::from(dst.0))],
                                );
                            }
                            // The envelope falls on the floor: the flow's
                            // send was traced, its delivery never happens.
                        }
                        MsgFate::Duplicate => {
                            let copy = env.duplicate();
                            self.push_event(self.now + lat, EventKind::Deliver { dst, env });
                            if let Some(mut copy) = copy {
                                copy.flow = self.flow_seq;
                                self.flow_seq += 1;
                                if self.tracer.enabled() {
                                    self.tracer.flow_send(copy.flow, pid, dst, self.now, 0);
                                    self.tracer.instant(
                                        pid,
                                        "fault",
                                        "fault.msg_dup",
                                        self.now,
                                        &[("dst", u64::from(dst.0))],
                                    );
                                }
                                self.push_event(
                                    self.now + lat,
                                    EventKind::Deliver { dst, env: copy },
                                );
                            }
                        }
                        MsgFate::Delay(extra) => {
                            env.delivered_at = self.now + lat + extra;
                            if self.tracer.enabled() {
                                self.tracer.instant(
                                    pid,
                                    "fault",
                                    "fault.msg_delay",
                                    self.now,
                                    &[("extra_nanos", extra.as_nanos())],
                                );
                            }
                            self.push_event(
                                self.now + lat + extra,
                                EventKind::Deliver { dst, env },
                            );
                        }
                    }
                }
                Syscall::Spawn { node, name, f } => {
                    let child = self.spawn_boxed(node, name, f);
                    // Spawn edges carry a flow so the trace's causality
                    // graph reaches the child from its parent. The id is
                    // allocated unconditionally (like Post) so traced and
                    // untraced runs stay bit-identical.
                    let flow = self.flow_seq;
                    self.flow_seq += 1;
                    if self.tracer.enabled() {
                        self.tracer.flow_send(flow, pid, child, self.now, 0);
                        self.procs[child.index()].start_flow = Some((pid, flow));
                    }
                    carry = Some(Resume::Spawned(child));
                }
                Syscall::BlockRecv => {
                    let slot = &mut self.procs[pid.index()];
                    if let Some(env) = slot.mailbox.pop_front() {
                        self.stats.dispatches += 1;
                        carry = Some(Resume::Msg { env, now: self.now });
                    } else {
                        slot.state = ProcState::BlockedRecv;
                        self.trace_run_end(pid);
                        return;
                    }
                }
                Syscall::BlockRecvTimeout(d) => {
                    let slot = &mut self.procs[pid.index()];
                    if let Some(env) = slot.mailbox.pop_front() {
                        self.stats.dispatches += 1;
                        carry = Some(Resume::Msg { env, now: self.now });
                    } else {
                        slot.wake_gen += 1;
                        slot.state = ProcState::BlockedRecvTimeout;
                        let gen = slot.wake_gen;
                        self.push_event(self.now + d, EventKind::Wake { pid, gen });
                        self.trace_run_end(pid);
                        return;
                    }
                }
                Syscall::BlockDelay(d) => {
                    let slot = &mut self.procs[pid.index()];
                    slot.wake_gen += 1;
                    slot.state = ProcState::BlockedDelay;
                    let gen = slot.wake_gen;
                    self.push_event(self.now + d, EventKind::Wake { pid, gen });
                    return;
                }
                Syscall::Exit { panic } => {
                    self.trace_run_end(pid);
                    let slot = &mut self.procs[pid.index()];
                    slot.state = ProcState::Dead;
                    // Free an exited fiber's stack eagerly — at p=1024 the
                    // stacks are the dominant allocation. Thread bodies
                    // keep their join handle for teardown.
                    if matches!(slot.body, Body::Fiber(_)) {
                        slot.body = Body::Done;
                    }
                    if let Some(msg) = panic {
                        let name = slot.name.clone();
                        panic!("simulated process '{name}' ({pid}) panicked: {msg}");
                    }
                    return;
                }
            }
        }
    }

    /// Spawns `f`, runs the simulation to quiescence, and returns `f`'s
    /// result. The go-to way to drive a simulation from a test or bench.
    ///
    /// # Panics
    ///
    /// Panics if the simulation quiesces before `f` completes (deadlock).
    pub fn block_on<R: Send + 'static>(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        f: impl FnOnce(&mut Ctx) -> R + Send + 'static,
    ) -> R {
        let (result_tx, result_rx) = crossbeam::channel::bounded(1);
        let name = name.into();
        self.spawn(node, name.clone(), move |ctx| {
            let r = f(ctx);
            let _ = result_tx.send(r);
        });
        self.run();
        result_rx
            .try_recv()
            .unwrap_or_else(|_| panic!("process '{name}' did not complete: simulation deadlocked"))
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        for slot in &mut self.procs {
            if slot.state == ProcState::Dead {
                continue;
            }
            match &mut slot.body {
                Body::Thread { resume, .. } => resume.put(Resume::Shutdown),
                Body::Fiber(fib) => {
                    // Unwind the parked process on its own stack; its
                    // final switch hands back the Exit syscall.
                    let mut r = Resume::Shutdown;
                    loop {
                        let (sc, finished) = fib.resume(r);
                        if finished {
                            break;
                        }
                        // Only reachable if a destructor issued a syscall
                        // mid-unwind: acknowledge posts (the message goes
                        // nowhere), re-shutdown anything blocking.
                        r = match sc {
                            Syscall::Post { .. } => Resume::Continue,
                            _ => Resume::Shutdown,
                        };
                    }
                }
                Body::Pending { .. } | Body::Done => {}
            }
        }
        for slot in &mut self.procs {
            if let Body::Thread { join, .. } = &mut slot.body {
                if let Some(join) = join.take() {
                    let _ = join.join();
                }
            }
        }
    }
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("engine", &self.engine)
            .field("nodes", &self.nodes.len())
            .field("processes", &self.procs.len())
            .field("pending_events", &self.events.len())
            .finish()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}
