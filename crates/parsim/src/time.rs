//! Virtual time: instants and durations measured on the simulation clock.
//!
//! All Bridge performance figures are reported in *virtual* time. The
//! simulation clock has nanosecond resolution and starts at zero when a
//! [`Simulation`](crate::Simulation) is created.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time: nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use parsim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(15);
/// assert_eq!(t.as_nanos(), 15_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time with nanosecond resolution.
///
/// # Examples
///
/// ```
/// use parsim::SimDuration;
///
/// let seek = SimDuration::from_millis(15);
/// assert_eq!(seek * 2, SimDuration::from_millis(30));
/// assert_eq!(format!("{seek}"), "15ms");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("`earlier` is later than `self`"),
        )
    }

    /// Like [`SimTime::duration_since`] but clamps to zero instead of
    /// panicking.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a float number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in seconds, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in milliseconds, as a float (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction, clamping at zero.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies by a float factor, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "duration factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("duration subtraction underflow"),
        )
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<SimDuration> for u64 {
    type Output = SimDuration;
    fn mul(self, rhs: SimDuration) -> SimDuration {
        rhs * self
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&SimDuration(self.0), f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Magnitude picks the unit; an exact multiple drops the fraction.
        // (Magnitude first, so an 11.2 s duration never prints as
        // 11227560us just because it happens to be a whole microsecond.)
        let ns = self.0;
        if ns >= 1_000_000_000 {
            if ns.is_multiple_of(1_000_000_000) {
                write!(f, "{}s", ns / 1_000_000_000)
            } else {
                write!(f, "{:.3}s", self.as_secs_f64())
            }
        } else if ns >= 1_000_000 {
            if ns.is_multiple_of(1_000_000) {
                write!(f, "{}ms", ns / 1_000_000)
            } else {
                write!(f, "{:.3}ms", self.as_millis_f64())
            }
        } else if ns >= 1_000 && ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        let u = t + SimDuration::from_millis(5);
        assert_eq!(u - t, SimDuration::from_millis(5));
        assert_eq!(
            u.duration_since(SimTime::ZERO),
            SimDuration::from_millis(15)
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(u),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "later")]
    fn duration_since_panics_when_reversed() {
        let t = SimTime::from_nanos(5);
        let _ = SimTime::ZERO.duration_since(t);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(15);
        assert_eq!(d * 2, SimDuration::from_millis(30));
        assert_eq!(2 * d, SimDuration::from_millis(30));
        assert_eq!(d / 3, SimDuration::from_micros(5_000));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(7_500));
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_natural_units() {
        assert_eq!(SimDuration::ZERO.to_string(), "0ns");
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(17).to_string(), "17us");
        assert_eq!(SimDuration::from_millis(17).to_string(), "17ms");
        assert_eq!(SimDuration::from_secs(17).to_string(), "17s");
        assert_eq!(SimDuration::from_nanos(1_500_000).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_nanos(1_500).to_string(), "1500ns");
        assert_eq!(SimDuration::from_micros(11_227_560).to_string(), "11.228s");
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimDuration::from_millis(1);
        let b = SimDuration::from_millis(2);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_millis(1));
    }
}
