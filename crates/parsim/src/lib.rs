//! # parsim — a deterministic multiprocessor simulator
//!
//! `parsim` is the substrate on which the Bridge parallel file system
//! reproduction runs. The original Bridge prototype ran on a BBN Butterfly:
//! one process per node, message passing over shared-memory atomic queues,
//! and disks *simulated in memory* with a sleep standing in for seek and
//! rotational delay. `parsim` recreates that environment as a discrete-event
//! simulation:
//!
//! * Every simulated process runs ordinary Rust code, so file-system
//!   servers and tools are written exactly like the paper's pseudo-code
//!   (loops around `recv`/`send`), not as state machines. Under the default
//!   [`Engine::RunToCompletion`] each process executes on a stackful fiber
//!   on the scheduler's own thread — one event dispatch is a pair of
//!   register-window swaps, which is what lets machines of 1024 simulated
//!   processors run in seconds. [`Engine::Threaded`] (one OS thread per
//!   process) remains as the compatibility tier; both engines produce
//!   bit-identical results.
//! * Blocking operations advance a *virtual* clock instead of wall time, so
//!   experiments the paper ran for six hours replay in seconds.
//! * Exactly one process executes at any instant and events are ordered by
//!   (virtual time, sequence number), so runs are deterministic.
//!
//! ## Example
//!
//! ```
//! use parsim::{SimConfig, SimDuration, Simulation};
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let node = sim.add_node("cpu0");
//! let disk_like = sim.spawn(node, "server", |ctx| {
//!     // A toy server: every request costs 15ms of "device time".
//!     while ctx.stashed() > 0 || true {
//!         let (client, n) = ctx.recv_as::<u64>();
//!         ctx.delay(SimDuration::from_millis(15));
//!         ctx.send(client, n * 2);
//!         if n == 3 {
//!             break;
//!         }
//!     }
//! });
//! let answers = sim.block_on(node, "client", move |ctx| {
//!     (1..=3u64)
//!         .map(|n| {
//!             ctx.send(disk_like, n);
//!             ctx.recv_as::<u64>().1
//!         })
//!         .collect::<Vec<_>>()
//! });
//! assert_eq!(answers, vec![2, 4, 6]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod envelope;
mod fault;
mod fiber;
mod process;
mod scheduler;
mod time;
mod topology;
pub mod trace;

pub use envelope::Envelope;
pub use fault::{
    mix64, splitmix64, BlockFaultRule, CrashAt, DiskFaults, DiskLost, FaultPlan, MsgFaults, Outage,
    OutageKind, SERVER_DISK,
};
pub use process::{Ctx, ProcFn, ProcId};
pub use scheduler::{Engine, RunStats, SimConfig, Simulation};
pub use time::{SimDuration, SimTime};
pub use topology::{LatencyModel, NodeId, UniformLatency, ZeroLatency};
pub use trace::{nop_tracer, NopTracer, TraceArg, Tracer, TracerHandle};
