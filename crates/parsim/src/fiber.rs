//! Stackful run-to-completion fibers — the fast execution engine.
//!
//! Under [`Engine::RunToCompletion`](crate::Engine::RunToCompletion) every
//! simulated process runs on its own heap-allocated stack *on the
//! scheduler's own OS thread*. Blocking (`recv`, `delay`) saves the
//! callee-saved registers, swaps the stack pointer back to the scheduler,
//! and hands over a [`Syscall`] by value; resuming swaps back and hands
//! over a [`Resume`]. One event dispatch is therefore two register-window
//! swaps — tens of nanoseconds — instead of two OS context switches plus a
//! channel round-trip per event under the threaded engine.
//!
//! The process *code* is unchanged: the same imperative bodies
//! (`loop { recv; work; send }`) run on either engine, so determinism is
//! structural — the scheduler observes the identical syscall sequence at
//! the identical virtual times, and [`RunStats`](crate::RunStats), traces,
//! and fault behavior are bit-for-bit the same.
//!
//! Safety model: the fiber and the scheduler never run concurrently (a
//! switch is a synchronous transfer on one thread), and every crossing of
//! the boundary moves data through the per-fiber [`TransferCell`], reached
//! only via raw pointers so no Rust reference is ever live on both sides
//! of a switch.

use crate::process::{Resume, Syscall};
use std::alloc::{alloc, dealloc, Layout};

/// Whether this target has a fiber context-switch implementation.
pub(crate) const SUPPORTED: bool = cfg!(any(target_arch = "x86_64", target_arch = "aarch64"));

/// Default fiber stack size (virtual; pages are committed only as
/// touched). Simulated process bodies keep bulk data (`Bytes`, `Vec`) on
/// the heap, so the working set per fiber is a few KiB; 1 MiB leaves two
/// orders of magnitude of headroom for deep call chains.
pub(crate) const DEFAULT_STACK_BYTES: usize = 1 << 20;

/// Canary words written at the low end of every fiber stack and checked
/// on each return to the scheduler. A clobbered canary means a process
/// overflowed its stack (there is no guard page on a heap stack).
const CANARY: u64 = 0xD15C_0B71_DCE5_FEED;
const CANARY_WORDS: usize = 8;

/// The rendezvous cell a fiber shares with the scheduler. Exactly one
/// side runs at a time; the suspended side's stack pointer is parked
/// here, and `resume`/`syscall` carry the payload across each switch.
pub(crate) struct TransferCell {
    /// Scheduler → fiber payload, set just before switching in.
    pub(crate) resume: Option<Resume>,
    /// Fiber → scheduler payload, set just before switching out.
    pub(crate) syscall: Option<Syscall>,
    /// Saved scheduler stack pointer while the fiber runs.
    sched_sp: usize,
    /// Saved fiber stack pointer while the fiber is suspended (the
    /// crafted entry frame before the first switch-in).
    fiber_sp: usize,
}

/// The body a fiber executes: runs the process to completion (catching
/// unwinds) and returns the final `Exit` syscall to hand the scheduler.
pub(crate) type FiberBody = Box<dyn FnOnce(*mut TransferCell) -> Syscall>;

struct FiberPayload {
    cell: *mut TransferCell,
    body: FiberBody,
}

/// A suspended simulated process: its stack and transfer cell.
///
/// Owned by the scheduler's process table. Dropping a `Fiber` frees the
/// stack and cell; the scheduler only drops it once the fiber has made
/// its final switch out (or was never entered, which cannot happen here
/// because fibers are built at their start event and entered
/// immediately).
pub(crate) struct Fiber {
    stack_base: *mut u8,
    layout: Layout,
    cell: *mut TransferCell,
}

// SAFETY: a Fiber's stack and cell are only ever touched through &mut
// Fiber (scheduler side) or from the fiber's own code while the scheduler
// side is suspended — never from two threads at once. Sending the owning
// Simulation to another thread moves that whole single-threaded discipline
// with it.
unsafe impl Send for Fiber {}

impl std::fmt::Debug for Fiber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fiber")
            .field("stack_bytes", &self.layout.size())
            .finish()
    }
}

impl Fiber {
    /// Allocates a stack, crafts the entry frame, and returns the fiber
    /// ready for its first [`Fiber::resume`].
    ///
    /// # Panics
    ///
    /// Panics if the target has no fiber support or the stack allocation
    /// fails.
    pub(crate) fn new(stack_bytes: usize, body: FiberBody) -> Fiber {
        if !SUPPORTED {
            panic!("fiber engine unsupported on this target");
        }
        let stack_bytes = stack_bytes.max(16 * 1024);
        let layout = Layout::from_size_align(stack_bytes, 16).expect("stack layout");
        // SAFETY: layout is non-zero; canary writes stay inside the
        // allocation; the entry frame is crafted below the aligned top.
        unsafe {
            let stack_base = alloc(layout);
            assert!(!stack_base.is_null(), "fiber stack allocation failed");
            let canary = stack_base.cast::<u64>();
            for i in 0..CANARY_WORDS {
                canary.add(i).write(CANARY);
            }
            let cell = Box::into_raw(Box::new(TransferCell {
                resume: None,
                syscall: None,
                sched_sp: 0,
                fiber_sp: 0,
            }));
            let payload = Box::into_raw(Box::new(FiberPayload { cell, body }));
            let top = (stack_base as usize + stack_bytes) & !15usize;
            let sp = arch::init_stack(top, payload as usize);
            (*cell).fiber_sp = sp;
            Fiber {
                stack_base,
                layout,
                cell,
            }
        }
    }

    /// Switches into the fiber carrying `resume`; returns the syscall it
    /// switched back out with, plus `true` if that was its final switch
    /// (the fiber is finished and must not be resumed again).
    pub(crate) fn resume(&mut self, resume: Resume) -> (Syscall, bool) {
        // SAFETY: the cell is alive (freed only in Drop); the fiber is
        // suspended, so fiber_sp holds a valid resume point and nothing
        // else touches the cell until the fiber switches back.
        let (syscall, finished) = unsafe {
            (*self.cell).resume = Some(resume);
            let to = (*self.cell).fiber_sp;
            let fin = parsim_fiber_switch(&raw mut (*self.cell).sched_sp, to, 0);
            (
                (*self.cell)
                    .syscall
                    .take()
                    .expect("fiber switched out without a syscall"),
                fin == 1,
            )
        };
        self.check_canary();
        (syscall, finished)
    }

    /// Panics if the process overran its fiber stack.
    fn check_canary(&self) {
        // SAFETY: the canary words are inside our allocation.
        unsafe {
            let canary = self.stack_base.cast::<u64>();
            for i in 0..CANARY_WORDS {
                assert!(
                    canary.add(i).read() == CANARY,
                    "fiber stack overflow: a simulated process overran its \
                     {}-byte stack (raise parsim's DEFAULT_STACK_BYTES)",
                    self.layout.size()
                );
            }
        }
    }
}

impl Drop for Fiber {
    fn drop(&mut self) {
        // SAFETY: the scheduler only drops finished fibers (final switch
        // done, body and Ctx already dropped on the fiber's own stack
        // before that switch), so nothing on the stack is live.
        unsafe {
            drop(Box::from_raw(self.cell));
            dealloc(self.stack_base, self.layout);
        }
    }
}

/// Fiber side of a blocking syscall: parks the fiber, hands `sc` to the
/// scheduler, and returns the `Resume` the scheduler next switches in
/// with.
///
/// # Safety
///
/// Must be called from code running *on* the fiber that owns `cell`.
pub(crate) unsafe fn yield_syscall(cell: *mut TransferCell, sc: Syscall) -> Resume {
    // SAFETY: per the contract, we are the running fiber; the scheduler
    // is parked at sched_sp and resumes us with `resume` set.
    unsafe {
        (*cell).syscall = Some(sc);
        let to = (*cell).sched_sp;
        parsim_fiber_switch(&raw mut (*cell).fiber_sp, to, 0);
        (*cell)
            .resume
            .take()
            .expect("scheduler switched in without a resume")
    }
}

/// Takes the initial `Resume` (placed by the scheduler before the first
/// switch-in) without switching.
///
/// # Safety
///
/// Must be called from code running on the fiber that owns `cell`.
pub(crate) unsafe fn take_initial_resume(cell: *mut TransferCell) -> Resume {
    // SAFETY: per the contract; the scheduler set `resume` before
    // entering the fiber for the first time.
    unsafe {
        (*cell)
            .resume
            .take()
            .expect("fiber entered without an initial resume")
    }
}

/// The fiber trampoline target: unboxes the payload, runs the body to
/// completion, parks the final `Exit` syscall in the cell, and makes the
/// final switch back to the scheduler (passing 1 to mark completion).
/// Never returns; the fiber's stack is freed by [`Fiber::drop`].
#[no_mangle]
extern "C" fn parsim_fiber_main(payload: *mut FiberPayload, _arg: usize) -> ! {
    let cell;
    let final_syscall;
    {
        // SAFETY: the payload pointer was leaked by Fiber::new for
        // exactly this call; we re-own and consume it here.
        let payload = unsafe { Box::from_raw(payload) };
        cell = payload.cell;
        // The body catches all unwinds internally and drops the process
        // Ctx before returning, so nothing lives on this stack frame but
        // the returned syscall — which moves into the cell below.
        final_syscall = (payload.body)(cell);
    }
    // SAFETY: the scheduler is parked at sched_sp awaiting our final
    // switch; after it, this stack is never executed again.
    unsafe {
        (*cell).syscall = Some(final_syscall);
        let to = (*cell).sched_sp;
        parsim_fiber_switch(&raw mut (*cell).fiber_sp, to, 1);
    }
    unreachable!("finished fiber resumed");
}

extern "C" {
    /// Saves the callee-saved register window on the current stack,
    /// parks the stack pointer in `*save_sp`, switches to `to_sp`, and
    /// restores that side's window. `arg` is returned to the *resumed*
    /// side (1 marks a fiber's final switch).
    fn parsim_fiber_switch(save_sp: *mut usize, to_sp: usize, arg: usize) -> usize;
}

#[cfg(target_arch = "x86_64")]
mod arch {
    //! x86-64 System V: save rbp, rbx, r12–r15 plus the mxcsr/x87
    //! control words (the only callee-saved FP state); xmm registers are
    //! caller-saved. Frame layout (from the parked rsp upward):
    //! `[mxcsr:4|fcw:2|pad:2] r15 r14 r13 r12 rbx rbp retaddr`.

    std::arch::global_asm!(
        ".text",
        ".p2align 4",
        ".globl parsim_fiber_switch",
        ".hidden parsim_fiber_switch",
        ".type parsim_fiber_switch,@function",
        "parsim_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr dword ptr [rsp]",
        "fnstcw word ptr [rsp + 4]",
        "mov qword ptr [rdi], rsp",
        "mov rsp, rsi",
        "ldmxcsr dword ptr [rsp]",
        "fldcw word ptr [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "mov rax, rdx",
        "ret",
        ".size parsim_fiber_switch, . - parsim_fiber_switch",
        ".p2align 4",
        ".globl parsim_fiber_entry",
        ".hidden parsim_fiber_entry",
        ".type parsim_fiber_entry,@function",
        // First switch-in pops the crafted frame and `ret`s here with the
        // payload pointer in r12 and the passthrough arg in rax; rsp is
        // 16-byte aligned, so the call below gives parsim_fiber_main a
        // standard SysV frame.
        "parsim_fiber_entry:",
        "mov rdi, r12",
        "mov rsi, rax",
        "call parsim_fiber_main",
        "ud2",
        ".size parsim_fiber_entry, . - parsim_fiber_entry",
    );

    extern "C" {
        fn parsim_fiber_entry();
    }

    /// Crafts the entry frame below `top` (16-aligned) so the first
    /// switch-in lands in `parsim_fiber_entry` with `payload` in r12.
    /// Returns the initial parked stack pointer.
    pub(super) unsafe fn init_stack(top: usize, payload: usize) -> usize {
        debug_assert_eq!(top & 15, 0);
        // Default mxcsr (0x1F80: all exceptions masked) in the low dword,
        // default x87 control word (0x037F) in the next word.
        const FPU: u64 = 0x1F80 | ((0x037F_u64) << 32);
        let sp = top - 64;
        // SAFETY (caller): [top-64, top) lies inside the fiber stack.
        unsafe {
            let f = sp as *mut u64;
            f.write(FPU); // mxcsr / fcw
            f.add(1).write(0); // r15
            f.add(2).write(0); // r14
            f.add(3).write(0); // r13
            f.add(4).write(payload as u64); // r12
            f.add(5).write(0); // rbx
            f.add(6).write(0); // rbp
            f.add(7)
                .write(parsim_fiber_entry as *const () as usize as u64); // ret addr
        }
        sp
    }
}

#[cfg(target_arch = "aarch64")]
mod arch {
    //! AAPCS64: save x19–x28, fp (x29), lr (x30), and d8–d15 (the
    //! callee-saved low halves of v8–v15). `ret` transfers through the
    //! restored x30. Frame layout (from the parked sp upward):
    //! `x19 x20 … x28 fp lr d8 … d15` (160 bytes).

    std::arch::global_asm!(
        ".text",
        ".p2align 4",
        ".globl parsim_fiber_switch",
        ".hidden parsim_fiber_switch",
        ".type parsim_fiber_switch,@function",
        "parsim_fiber_switch:",
        "sub sp, sp, #160",
        "stp x19, x20, [sp, #0]",
        "stp x21, x22, [sp, #16]",
        "stp x23, x24, [sp, #32]",
        "stp x25, x26, [sp, #48]",
        "stp x27, x28, [sp, #64]",
        "stp x29, x30, [sp, #80]",
        "stp d8, d9, [sp, #96]",
        "stp d10, d11, [sp, #112]",
        "stp d12, d13, [sp, #128]",
        "stp d14, d15, [sp, #144]",
        "mov x9, sp",
        "str x9, [x0]",
        "mov sp, x1",
        "ldp x19, x20, [sp, #0]",
        "ldp x21, x22, [sp, #16]",
        "ldp x23, x24, [sp, #32]",
        "ldp x25, x26, [sp, #48]",
        "ldp x27, x28, [sp, #64]",
        "ldp x29, x30, [sp, #80]",
        "ldp d8, d9, [sp, #96]",
        "ldp d10, d11, [sp, #112]",
        "ldp d12, d13, [sp, #128]",
        "ldp d14, d15, [sp, #144]",
        "add sp, sp, #160",
        "mov x0, x2",
        "ret",
        ".size parsim_fiber_switch, . - parsim_fiber_switch",
        ".p2align 4",
        ".globl parsim_fiber_entry",
        ".hidden parsim_fiber_entry",
        ".type parsim_fiber_entry,@function",
        // First switch-in restores the crafted frame and `ret`s here with
        // the payload pointer in x19 and the passthrough arg in x0.
        "parsim_fiber_entry:",
        "mov x1, x0",
        "mov x0, x19",
        "bl parsim_fiber_main",
        "brk #0",
        ".size parsim_fiber_entry, . - parsim_fiber_entry",
    );

    extern "C" {
        fn parsim_fiber_entry();
    }

    /// Crafts the entry frame below `top` (16-aligned) so the first
    /// switch-in lands in `parsim_fiber_entry` with `payload` in x19.
    /// Returns the initial parked stack pointer.
    pub(super) unsafe fn init_stack(top: usize, payload: usize) -> usize {
        debug_assert_eq!(top & 15, 0);
        let sp = top - 160;
        // SAFETY (caller): [top-160, top) lies inside the fiber stack.
        unsafe {
            let f = sp as *mut u64;
            for i in 0..20 {
                f.add(i).write(0);
            }
            f.write(payload as u64); // x19
            f.add(11)
                .write(parsim_fiber_entry as *const () as usize as u64); // x30 (lr)
        }
        sp
    }
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
mod arch {
    //! Unsupported target: `Engine::auto()` selects the threaded engine,
    //! so this is never reached at runtime.

    #[no_mangle]
    extern "C" fn parsim_fiber_switch(_save_sp: *mut usize, _to_sp: usize, _arg: usize) -> usize {
        unreachable!("fiber engine unsupported on this target")
    }

    pub(super) unsafe fn init_stack(_top: usize, _payload: usize) -> usize {
        unreachable!("fiber engine unsupported on this target")
    }
}
