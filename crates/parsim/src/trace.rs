//! Virtual-time tracing hooks.
//!
//! A [`Tracer`] installed on a [`Simulation`](crate::Simulation) observes
//! the run as it unfolds: scheduler run intervals, message send/receive
//! pairs, and any spans or instants the simulated code itself emits
//! through [`Ctx`](crate::Ctx). All timestamps are *virtual* times, so a
//! trace is a faithful picture of the model, not of host scheduling.
//!
//! The contract that keeps traces trustworthy:
//!
//! * **Observation only.** A tracer receives shared references and returns
//!   nothing; it cannot steer the simulation. A run with tracing enabled
//!   must produce bit-identical [`RunStats`](crate::RunStats) and virtual
//!   end time to the same run with tracing off.
//! * **Cheap when off.** The default tracer is [`NopTracer`]; every
//!   emission site is gated on [`Tracer::enabled`], so a disabled tracer
//!   costs one virtual call (or less) per potential event and allocates
//!   nothing.
//! * **Single-threaded delivery.** Exactly one simulated process executes
//!   at any instant, so tracer callbacks are never concurrent; the
//!   `Send + Sync` bound exists only because process bodies run on their
//!   own OS threads.
//!
//! Exporters (Chrome trace-event JSON, metrics registries) live in the
//! `bridge-trace` crate; `parsim` defines only the hook.

use crate::process::ProcId;
use crate::time::SimTime;
use crate::topology::NodeId;
use std::fmt;
use std::sync::Arc;

/// A numeric annotation attached to a span or instant (e.g. blocks
/// transferred, track loads, bytes). Kept to integers so emission never
/// allocates and exporters can aggregate without parsing.
pub type TraceArg = (&'static str, u64);

/// A shared, thread-safe tracer installed on a simulation.
pub type TracerHandle = Arc<dyn Tracer>;

/// Observer of virtual-time events. All methods default to no-ops so
/// implementations override only what they record.
///
/// Categories used by the Bridge reproduction (exporters key off them):
/// `"sched"` (scheduler run intervals), `"msg"` (interconnect flows),
/// `"disk"` (device service intervals), `"lfs"` (EFS request service),
/// `"bridge"` (Bridge Server requests), `"tool"` (tool phases).
pub trait Tracer: Send + Sync + fmt::Debug {
    /// Global gate: when `false`, emission sites skip event construction
    /// entirely. Implementations should make this a constant or a relaxed
    /// atomic load.
    fn enabled(&self) -> bool;

    /// A node was added to the simulation.
    fn node_named(&self, node: NodeId, name: &str) {
        let _ = (node, name);
    }

    /// A process was spawned on `node`.
    fn proc_named(&self, pid: ProcId, node: NodeId, name: &str) {
        let _ = (pid, node, name);
    }

    /// A completed span of virtual time attributed to `pid`.
    ///
    /// Spans emitted by one process are properly nested (they mirror its
    /// call stack); spans of different processes may overlap freely.
    fn span(
        &self,
        pid: ProcId,
        cat: &'static str,
        name: &str,
        start: SimTime,
        end: SimTime,
        args: &[TraceArg],
    ) {
        let _ = (pid, cat, name, start, end, args);
    }

    /// A zero-duration marker attributed to `pid`.
    fn instant(&self, pid: ProcId, cat: &'static str, name: &str, at: SimTime, args: &[TraceArg]) {
        let _ = (pid, cat, name, at, args);
    }

    /// A message left `from` for `to` at virtual time `at`. `id` is unique
    /// per message and pairs this event with its [`Tracer::flow_recv`].
    ///
    /// Besides every posted message (request, reply, and retry-resend legs
    /// alike), the scheduler emits a zero-byte flow for each process spawn,
    /// from the parent at spawn time to the child at its `Start` event, so
    /// causal analyses can reach spawned processes from their spawner.
    fn flow_send(&self, id: u64, from: ProcId, to: ProcId, at: SimTime, bytes: usize) {
        let _ = (id, from, to, at, bytes);
    }

    /// The message `id` reached `to`'s mailbox at virtual time `at`. For
    /// spawn flows this is the child's start time.
    fn flow_recv(&self, id: u64, from: ProcId, to: ProcId, at: SimTime) {
        let _ = (id, from, to, at);
    }
}

/// The default tracer: permanently disabled, records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopTracer;

impl Tracer for NopTracer {
    fn enabled(&self) -> bool {
        false
    }
}

/// A fresh handle to the no-op tracer.
pub fn nop_tracer() -> TracerHandle {
    Arc::new(NopTracer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_tracer_is_disabled_and_inert() {
        let t = nop_tracer();
        assert!(!t.enabled());
        // Default methods accept events without effect.
        t.node_named(NodeId(0), "n");
        t.proc_named(ProcId(0), NodeId(0), "p");
        t.span(ProcId(0), "disk", "x", SimTime::ZERO, SimTime::ZERO, &[]);
        t.instant(ProcId(0), "disk", "x", SimTime::ZERO, &[("a", 1)]);
        t.flow_send(1, ProcId(0), ProcId(1), SimTime::ZERO, 10);
        t.flow_recv(1, ProcId(0), ProcId(1), SimTime::ZERO);
    }
}
