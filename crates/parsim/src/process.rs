//! Simulated processes and the context handle they run with.

use crate::envelope::{Envelope, PayloadCloner};
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use crate::trace::{TraceArg, Tracer, TracerHandle};
use crossbeam::channel::{Receiver, Sender};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;

/// Identifies a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// The process's index in spawn order (0-based).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The id of the process spawned at `index` (spawn-order ids, the
    /// mirror of [`ProcId::index`]); for fixtures that need process ids
    /// without a live simulation.
    pub const fn from_index(index: usize) -> ProcId {
        ProcId(index as u32)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// The body of a simulated process.
pub type ProcFn = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// Payload used to unwind a process thread when the simulation shuts down.
/// Never observed by user code.
pub(crate) struct ShutdownSignal;

/// Scheduler → process wake-ups. Each carries the authoritative clock.
pub(crate) enum Resume {
    /// Start running, or resume after a delay.
    Go { now: SimTime },
    /// A message satisfying a pending receive.
    Msg { env: Envelope, now: SimTime },
    /// A `recv_timeout` expired with no message.
    Timeout { now: SimTime },
    /// The simulation is being torn down; unwind.
    Shutdown,
}

/// Process → scheduler requests.
pub(crate) enum Syscall {
    /// Fire-and-forget message post; the process keeps running.
    Post {
        dst: ProcId,
        payload: Box<dyn Any + Send>,
        bytes: usize,
        /// Present for cloneable sends; lets the fault layer duplicate.
        cloner: Option<PayloadCloner>,
    },
    /// Create a new process; replies with its id on `reply`.
    Spawn {
        node: NodeId,
        name: String,
        f: ProcFn,
        reply: Sender<ProcId>,
    },
    /// Block until a message arrives.
    BlockRecv,
    /// Block until a message arrives or the duration elapses.
    BlockRecvTimeout(SimDuration),
    /// Block for a fixed span of virtual time.
    BlockDelay(SimDuration),
    /// The process body returned (or panicked, carrying the message).
    Exit { panic: Option<String> },
}

/// Handle through which a simulated process interacts with virtual time,
/// the interconnect, and other processes.
///
/// A `&mut Ctx` is passed to every process body. All methods that block do
/// so in *virtual* time: the calling OS thread parks and the scheduler
/// advances the clock.
pub struct Ctx {
    pid: ProcId,
    node: NodeId,
    now: SimTime,
    syscall_tx: Sender<(ProcId, Syscall)>,
    resume_rx: Receiver<Resume>,
    stash: VecDeque<Envelope>,
    rng: SmallRng,
    tracer: TracerHandle,
    /// Next value handed out by [`Ctx::unique_id`].
    next_unique: u64,
}

impl Ctx {
    pub(crate) fn new(
        pid: ProcId,
        node: NodeId,
        syscall_tx: Sender<(ProcId, Syscall)>,
        resume_rx: Receiver<Resume>,
        rng_seed: u64,
        tracer: TracerHandle,
    ) -> Self {
        Ctx {
            pid,
            node,
            now: SimTime::ZERO,
            syscall_tx,
            resume_rx,
            stash: VecDeque::new(),
            rng: SmallRng::seed_from_u64(rng_seed),
            tracer,
            next_unique: 0,
        }
    }

    /// Parks until the scheduler starts this process; returns the start time.
    pub(crate) fn wait_start(&mut self) {
        match self.wait_resume() {
            Resume::Go { now } => self.now = now,
            _ => unreachable!("first resume must be Go or Shutdown"),
        }
    }

    fn wait_resume(&mut self) -> Resume {
        match self.resume_rx.recv() {
            Ok(Resume::Shutdown) | Err(_) => std::panic::panic_any(ShutdownSignal),
            Ok(r) => r,
        }
    }

    fn syscall(&mut self, sc: Syscall) {
        // A send can only fail if the scheduler is gone, in which case the
        // simulation is being torn down.
        if self.syscall_tx.send((self.pid, sc)).is_err() {
            std::panic::panic_any(ShutdownSignal);
        }
    }

    pub(crate) fn exit(&mut self, panic: Option<String>) {
        let _ = self.syscall_tx.send((self.pid, Syscall::Exit { panic }));
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's id.
    pub fn me(&self) -> ProcId {
        self.pid
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A deterministic per-process random number generator.
    ///
    /// Seeded from the simulation seed and the process id, so runs are
    /// reproducible.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The simulation's tracer (the no-op tracer unless one was installed
    /// via [`SimConfig`](crate::SimConfig)).
    pub fn tracer(&self) -> &dyn Tracer {
        &*self.tracer
    }

    /// True when a recording tracer is installed. Gate span/instant
    /// emission on this so disabled runs construct nothing.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Emits a span attributed to this process, closing at the current
    /// virtual time. Call with the `start` captured before the traced work.
    pub fn trace_span(&self, cat: &'static str, name: &str, start: SimTime, args: &[TraceArg]) {
        self.tracer.span(self.pid, cat, name, start, self.now, args);
    }

    /// Emits a zero-duration marker attributed to this process at the
    /// current virtual time.
    pub fn trace_instant(&self, cat: &'static str, name: &str, args: &[TraceArg]) {
        self.tracer.instant(self.pid, cat, name, self.now, args);
    }

    /// Advances virtual time by `d`, modelling computation or device service
    /// time. Messages arriving in the meantime are queued, not lost.
    pub fn delay(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.syscall(Syscall::BlockDelay(d));
        match self.wait_resume() {
            Resume::Go { now } => self.now = now,
            _ => unreachable!("delay resumed with non-Go"),
        }
    }

    /// Sends `msg` to `dst`, charged as a zero-byte message (header-only
    /// cost under the latency model). Never blocks.
    pub fn send<M: Send + 'static>(&mut self, dst: ProcId, msg: M) {
        self.send_sized(dst, msg, 0);
    }

    /// Sends `msg` to `dst`, charging the latency model for a payload of
    /// `bytes` bytes. Never blocks.
    ///
    /// Delivery order between the same (sender, receiver) pair is FIFO when
    /// latencies are equal; the scheduler breaks virtual-time ties in post
    /// order.
    pub fn send_sized<M: Send + 'static>(&mut self, dst: ProcId, msg: M, bytes: usize) {
        self.syscall(Syscall::Post {
            dst,
            payload: Box::new(msg),
            bytes,
            cloner: None,
        });
    }

    /// Like [`Ctx::send_sized`], for `Clone` payloads: the message carries
    /// a duplicator so an active [`FaultPlan`](crate::FaultPlan) can
    /// deliver it twice. Use this for protocol requests and replies —
    /// whose receivers are expected to tolerate duplicates — so
    /// duplicate-delivery faults actually exercise that path; messages
    /// sent without it deliver once regardless of the plan.
    pub fn send_sized_cloneable<M: Clone + Send + 'static>(
        &mut self,
        dst: ProcId,
        msg: M,
        bytes: usize,
    ) {
        self.syscall(Syscall::Post {
            dst,
            payload: Box::new(msg),
            bytes,
            cloner: Some(|payload| {
                let m = payload
                    .downcast_ref::<M>()
                    .expect("cloner called with the payload type it was built for");
                Box::new(m.clone())
            }),
        });
    }

    /// A process-unique identifier: 1, 2, 3, ... in call order.
    ///
    /// Intended for request ids: every RPC client on this process draws
    /// from the same counter, so a server-side dedup window keyed by
    /// (sender, id) never sees two distinct requests under one key even
    /// when a process runs several client instances.
    pub fn unique_id(&mut self) -> u64 {
        self.next_unique += 1;
        self.next_unique
    }

    /// Receives the next message, blocking in virtual time until one is
    /// available. Messages set aside by [`Ctx::recv_where`] are returned
    /// first, oldest first.
    pub fn recv(&mut self) -> Envelope {
        if let Some(env) = self.stash.pop_front() {
            return env;
        }
        self.recv_fresh()
    }

    /// Receives directly from the mailbox, bypassing the stash.
    fn recv_fresh(&mut self) -> Envelope {
        self.syscall(Syscall::BlockRecv);
        match self.wait_resume() {
            Resume::Msg { env, now } => {
                self.now = now;
                env
            }
            _ => unreachable!("recv resumed with non-Msg"),
        }
    }

    /// Receives the next message, or returns `None` once `d` has elapsed.
    ///
    /// Checks the stash first (without consuming any virtual time).
    pub fn recv_timeout(&mut self, d: SimDuration) -> Option<Envelope> {
        if let Some(env) = self.stash.pop_front() {
            return Some(env);
        }
        self.syscall(Syscall::BlockRecvTimeout(d));
        match self.wait_resume() {
            Resume::Msg { env, now } => {
                self.now = now;
                Some(env)
            }
            Resume::Timeout { now } => {
                self.now = now;
                None
            }
            _ => unreachable!("recv_timeout resumed with unexpected variant"),
        }
    }

    /// Receives the first message matching `pred`, setting aside (stashing)
    /// any non-matching messages for later `recv` calls.
    ///
    /// This is the selective receive that lets a process serve interleaved
    /// protocols — e.g. a merge worker awaiting an LFS reply while merge
    /// tokens keep arriving.
    pub fn recv_where(&mut self, mut pred: impl FnMut(&Envelope) -> bool) -> Envelope {
        if let Some(pos) = self.stash.iter().position(&mut pred) {
            return self.stash.remove(pos).expect("position is in range");
        }
        loop {
            let env = self.recv_fresh();
            if pred(&env) {
                return env;
            }
            self.stash.push_back(env);
        }
    }

    /// Receives the first message matching `pred`, stashing non-matches,
    /// or returns `None` once `d` has elapsed with no match.
    ///
    /// The timeout is measured from the call; messages that arrive and
    /// fail the predicate do not extend it. This is the receive a
    /// retrying RPC client needs: wait for *this* reply, set everything
    /// else aside, give up at the deadline.
    pub fn recv_where_timeout(
        &mut self,
        mut pred: impl FnMut(&Envelope) -> bool,
        d: SimDuration,
    ) -> Option<Envelope> {
        if let Some(pos) = self.stash.iter().position(&mut pred) {
            return Some(self.stash.remove(pos).expect("position is in range"));
        }
        let deadline = self.now + d;
        loop {
            let remaining = deadline.saturating_duration_since(self.now);
            self.syscall(Syscall::BlockRecvTimeout(remaining));
            match self.wait_resume() {
                Resume::Msg { env, now } => {
                    self.now = now;
                    if pred(&env) {
                        return Some(env);
                    }
                    self.stash.push_back(env);
                }
                Resume::Timeout { now } => {
                    self.now = now;
                    return None;
                }
                _ => unreachable!("recv_where_timeout resumed with unexpected variant"),
            }
        }
    }

    /// Drops every stashed message matching `pred`.
    ///
    /// A retrying client uses this after a request completes to purge
    /// duplicate replies to it (matched by exact request id) that earlier
    /// receives set aside, so they never surface from a later `recv`.
    pub fn discard_stashed(&mut self, mut pred: impl FnMut(&Envelope) -> bool) {
        self.stash.retain(|env| !pred(env));
    }

    /// Receives the next message whose payload is of type `M`, stashing
    /// others, and returns the sender and payload.
    pub fn recv_as<M: Send + 'static>(&mut self) -> (ProcId, M) {
        let env = self.recv_where(|e| e.is::<M>());
        let from = env.from();
        let msg = env.downcast::<M>().expect("predicate guarantees type");
        (from, msg)
    }

    /// Receives the next `M` sent by `src`, stashing everything else.
    pub fn recv_from<M: Send + 'static>(&mut self, src: ProcId) -> M {
        let env = self.recv_where(|e| e.from() == src && e.is::<M>());
        env.downcast::<M>().expect("predicate guarantees type")
    }

    /// Number of messages currently set aside by selective receives.
    pub fn stashed(&self) -> usize {
        self.stash.len()
    }

    /// Spawns a new process on `node` and returns its id. The child starts
    /// at the current virtual time, after the caller next blocks.
    pub fn spawn(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        f: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> ProcId {
        let (reply_tx, reply_rx) = crossbeam::channel::bounded(1);
        self.syscall(Syscall::Spawn {
            node,
            name: name.into(),
            f: Box::new(f),
            reply: reply_tx,
        });
        match reply_rx.recv() {
            Ok(pid) => pid,
            Err(_) => std::panic::panic_any(ShutdownSignal),
        }
    }
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("node", &self.node)
            .field("now", &self.now)
            .field("stash", &self.stash.len())
            .finish()
    }
}
