//! Simulated processes and the context handle they run with.

use crate::envelope::{Envelope, PayloadCloner};
use crate::fiber::{self, TransferCell};
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;
use crate::trace::{TraceArg, Tracer, TracerHandle};
use crossbeam::channel::Sender;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Identifies a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub(crate) u32);

impl ProcId {
    /// The process's index in spawn order (0-based).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The id of the process spawned at `index` (spawn-order ids, the
    /// mirror of [`ProcId::index`]); for fixtures that need process ids
    /// without a live simulation.
    pub const fn from_index(index: usize) -> ProcId {
        ProcId(index as u32)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// The body of a simulated process.
pub type ProcFn = Box<dyn FnOnce(&mut Ctx) + Send + 'static>;

/// Payload used to unwind a process when the simulation shuts down.
/// Never observed by user code.
pub(crate) struct ShutdownSignal;

/// Scheduler → process wake-ups. Each control transfer carries the
/// authoritative clock.
pub(crate) enum Resume {
    /// Start running, or resume after a delay.
    Go { now: SimTime },
    /// A message satisfying a pending receive.
    Msg { env: Envelope, now: SimTime },
    /// A `recv_timeout` expired with no message.
    Timeout { now: SimTime },
    /// Reply to a `Spawn` syscall: the child's id.
    Spawned(ProcId),
    /// Fiber engine only: acknowledges a fire-and-forget syscall (the
    /// threaded engine lets the process run ahead instead).
    Continue,
    /// The simulation is being torn down; unwind.
    Shutdown,
}

/// Process → scheduler requests.
pub(crate) enum Syscall {
    /// Fire-and-forget message post; the process keeps running.
    Post {
        /// Destination process.
        dst: ProcId,
        /// Type-erased message payload.
        payload: Box<dyn Any + Send>,
        /// Payload size charged to the latency model.
        bytes: usize,
        /// Present for cloneable sends; lets the fault layer duplicate.
        cloner: Option<PayloadCloner>,
    },
    /// Create a new process; the scheduler replies with
    /// [`Resume::Spawned`].
    Spawn {
        /// Node to spawn on.
        node: NodeId,
        /// Process name.
        name: String,
        /// Process body.
        f: ProcFn,
    },
    /// Block until a message arrives.
    BlockRecv,
    /// Block until a message arrives or the duration elapses.
    BlockRecvTimeout(SimDuration),
    /// Block for a fixed span of virtual time.
    BlockDelay(SimDuration),
    /// The process body returned (or panicked, carrying the message).
    Exit {
        /// The panic message, if the body panicked.
        panic: Option<String>,
    },
}

/// The scheduler-owned wake-up mailbox of one threaded-engine process: a
/// single slot plus a condvar. Replaces the old per-process unbounded
/// crossbeam channel pair — a resume is one mutex hand-off with no
/// allocation, and the slot lives in the scheduler's process table (the
/// process thread holds only an `Arc`).
#[derive(Default)]
pub(crate) struct ResumeSlot {
    slot: Mutex<Option<Resume>>,
    ready: Condvar,
}

impl fmt::Debug for ResumeSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResumeSlot").finish_non_exhaustive()
    }
}

impl ResumeSlot {
    pub(crate) fn new() -> Arc<ResumeSlot> {
        Arc::new(ResumeSlot::default())
    }

    /// Parks a resume for the process. At most one resume is ever in
    /// flight (the process is either running or blocked on exactly one
    /// thing), so the slot can never be occupied here.
    pub(crate) fn put(&self, r: Resume) {
        let mut slot = self.slot.lock().expect("resume slot poisoned");
        debug_assert!(slot.is_none(), "second resume parked before take");
        *slot = Some(r);
        drop(slot);
        self.ready.notify_one();
    }

    /// Blocks the calling process thread until a resume is parked.
    pub(crate) fn take(&self) -> Resume {
        let mut slot = self.slot.lock().expect("resume slot poisoned");
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.ready.wait(slot).expect("resume slot poisoned");
        }
    }
}

/// How a process body talks to the scheduler: over channels from its own
/// OS thread (threaded engine), or through its fiber's transfer cell
/// (run-to-completion engine).
enum Port {
    Thread {
        syscall_tx: Sender<(ProcId, Syscall)>,
        resume: Arc<ResumeSlot>,
    },
    Fiber {
        cell: *mut TransferCell,
    },
}

/// Handle through which a simulated process interacts with virtual time,
/// the interconnect, and other processes.
///
/// A `&mut Ctx` is passed to every process body. All methods that block do
/// so in *virtual* time: the process yields to the scheduler (a stack
/// switch on the run-to-completion engine, an OS park on the threaded
/// engine) and the scheduler advances the clock.
pub struct Ctx {
    pid: ProcId,
    node: NodeId,
    now: SimTime,
    port: Port,
    stash: VecDeque<Envelope>,
    rng: SmallRng,
    tracer: TracerHandle,
    /// Next value handed out by [`Ctx::unique_id`].
    next_unique: u64,
}

impl Ctx {
    fn new(pid: ProcId, node: NodeId, port: Port, rng_seed: u64, tracer: TracerHandle) -> Self {
        Ctx {
            pid,
            node,
            now: SimTime::ZERO,
            port,
            stash: VecDeque::new(),
            rng: SmallRng::seed_from_u64(rng_seed),
            tracer,
            next_unique: 0,
        }
    }

    /// A context for a threaded-engine process (runs on its own OS
    /// thread).
    pub(crate) fn new_thread(
        pid: ProcId,
        node: NodeId,
        syscall_tx: Sender<(ProcId, Syscall)>,
        resume: Arc<ResumeSlot>,
        rng_seed: u64,
        tracer: TracerHandle,
    ) -> Self {
        Ctx::new(
            pid,
            node,
            Port::Thread { syscall_tx, resume },
            rng_seed,
            tracer,
        )
    }

    /// A context for a fiber-engine process (runs on the scheduler's
    /// thread, on its own stack).
    pub(crate) fn new_fiber(
        pid: ProcId,
        node: NodeId,
        cell: *mut TransferCell,
        rng_seed: u64,
        tracer: TracerHandle,
    ) -> Self {
        Ctx::new(pid, node, Port::Fiber { cell }, rng_seed, tracer)
    }

    /// Parks until the scheduler starts this process; records the start
    /// time.
    pub(crate) fn wait_start(&mut self) {
        let r = match &self.port {
            Port::Thread { resume, .. } => resume.take(),
            // SAFETY: we are running on the fiber that owns `cell`; the
            // scheduler parked the initial resume before entering it.
            Port::Fiber { cell } => unsafe { fiber::take_initial_resume(*cell) },
        };
        match r {
            Resume::Go { now } => self.now = now,
            Resume::Shutdown => std::panic::panic_any(ShutdownSignal),
            _ => unreachable!("first resume must be Go or Shutdown"),
        }
    }

    /// Issues a fire-and-forget syscall. On the threaded engine the
    /// process keeps running while the scheduler services it; on the
    /// fiber engine the scheduler services it synchronously and
    /// acknowledges with [`Resume::Continue`].
    fn post(&mut self, sc: Syscall) {
        match &self.port {
            Port::Thread { syscall_tx, .. } => {
                // A send can only fail if the scheduler is gone, in which
                // case the simulation is being torn down.
                if syscall_tx.send((self.pid, sc)).is_err() {
                    std::panic::panic_any(ShutdownSignal);
                }
            }
            Port::Fiber { cell } => {
                // SAFETY: we are running on the fiber that owns `cell`.
                match unsafe { fiber::yield_syscall(*cell, sc) } {
                    Resume::Continue => {}
                    Resume::Shutdown => std::panic::panic_any(ShutdownSignal),
                    _ => unreachable!("fire-and-forget syscall resumed with a payload"),
                }
            }
        }
    }

    /// Issues a syscall and waits for the scheduler's resume.
    fn call(&mut self, sc: Syscall) -> Resume {
        let r = match &self.port {
            Port::Thread { syscall_tx, resume } => {
                if syscall_tx.send((self.pid, sc)).is_err() {
                    std::panic::panic_any(ShutdownSignal);
                }
                resume.take()
            }
            // SAFETY: we are running on the fiber that owns `cell`.
            Port::Fiber { cell } => unsafe { fiber::yield_syscall(*cell, sc) },
        };
        match r {
            Resume::Shutdown => std::panic::panic_any(ShutdownSignal),
            r => r,
        }
    }

    /// Threaded engine only: reports the body's completion (or panic) to
    /// the scheduler. Fiber bodies return their exit syscall instead.
    pub(crate) fn exit(&mut self, panic: Option<String>) {
        if let Port::Thread { syscall_tx, .. } = &self.port {
            let _ = syscall_tx.send((self.pid, Syscall::Exit { panic }));
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This process's id.
    pub fn me(&self) -> ProcId {
        self.pid
    }

    /// The node this process runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// A deterministic per-process random number generator.
    ///
    /// Seeded from the simulation seed and the process id, so runs are
    /// reproducible.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The simulation's tracer (the no-op tracer unless one was installed
    /// via [`SimConfig`](crate::SimConfig)).
    pub fn tracer(&self) -> &dyn Tracer {
        &*self.tracer
    }

    /// True when a recording tracer is installed. Gate span/instant
    /// emission on this so disabled runs construct nothing.
    pub fn trace_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Emits a span attributed to this process, closing at the current
    /// virtual time. Call with the `start` captured before the traced work.
    pub fn trace_span(&self, cat: &'static str, name: &str, start: SimTime, args: &[TraceArg]) {
        self.tracer.span(self.pid, cat, name, start, self.now, args);
    }

    /// Emits a zero-duration marker attributed to this process at the
    /// current virtual time.
    pub fn trace_instant(&self, cat: &'static str, name: &str, args: &[TraceArg]) {
        self.tracer.instant(self.pid, cat, name, self.now, args);
    }

    /// Advances virtual time by `d`, modelling computation or device service
    /// time. Messages arriving in the meantime are queued, not lost.
    pub fn delay(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        match self.call(Syscall::BlockDelay(d)) {
            Resume::Go { now } => self.now = now,
            _ => unreachable!("delay resumed with non-Go"),
        }
    }

    /// Sends `msg` to `dst`, charged as a zero-byte message (header-only
    /// cost under the latency model). Never blocks in virtual time.
    pub fn send<M: Send + 'static>(&mut self, dst: ProcId, msg: M) {
        self.send_sized(dst, msg, 0);
    }

    /// Sends `msg` to `dst`, charging the latency model for a payload of
    /// `bytes` bytes. Never blocks in virtual time.
    ///
    /// Delivery order between the same (sender, receiver) pair is FIFO when
    /// latencies are equal; the scheduler breaks virtual-time ties in post
    /// order.
    pub fn send_sized<M: Send + 'static>(&mut self, dst: ProcId, msg: M, bytes: usize) {
        self.post(Syscall::Post {
            dst,
            payload: Box::new(msg),
            bytes,
            cloner: None,
        });
    }

    /// Like [`Ctx::send_sized`], for `Clone` payloads: the message carries
    /// a duplicator so an active [`FaultPlan`](crate::FaultPlan) can
    /// deliver it twice. Use this for protocol requests and replies —
    /// whose receivers are expected to tolerate duplicates — so
    /// duplicate-delivery faults actually exercise that path; messages
    /// sent without it deliver once regardless of the plan.
    pub fn send_sized_cloneable<M: Clone + Send + 'static>(
        &mut self,
        dst: ProcId,
        msg: M,
        bytes: usize,
    ) {
        self.post(Syscall::Post {
            dst,
            payload: Box::new(msg),
            bytes,
            cloner: Some(|payload| {
                let m = payload
                    .downcast_ref::<M>()
                    .expect("cloner called with the payload type it was built for");
                Box::new(m.clone())
            }),
        });
    }

    /// A process-unique identifier: 1, 2, 3, ... in call order.
    ///
    /// Intended for request ids: every RPC client on this process draws
    /// from the same counter, so a server-side dedup window keyed by
    /// (sender, id) never sees two distinct requests under one key even
    /// when a process runs several client instances.
    pub fn unique_id(&mut self) -> u64 {
        self.next_unique += 1;
        self.next_unique
    }

    /// Receives the next message, blocking in virtual time until one is
    /// available. Messages set aside by [`Ctx::recv_where`] are returned
    /// first, oldest first.
    pub fn recv(&mut self) -> Envelope {
        if let Some(env) = self.stash.pop_front() {
            return env;
        }
        self.recv_fresh()
    }

    /// Receives directly from the mailbox, bypassing the stash.
    fn recv_fresh(&mut self) -> Envelope {
        match self.call(Syscall::BlockRecv) {
            Resume::Msg { env, now } => {
                self.now = now;
                env
            }
            _ => unreachable!("recv resumed with non-Msg"),
        }
    }

    /// Receives the next message, or returns `None` once `d` has elapsed.
    ///
    /// Checks the stash first (without consuming any virtual time).
    pub fn recv_timeout(&mut self, d: SimDuration) -> Option<Envelope> {
        if let Some(env) = self.stash.pop_front() {
            return Some(env);
        }
        match self.call(Syscall::BlockRecvTimeout(d)) {
            Resume::Msg { env, now } => {
                self.now = now;
                Some(env)
            }
            Resume::Timeout { now } => {
                self.now = now;
                None
            }
            _ => unreachable!("recv_timeout resumed with unexpected variant"),
        }
    }

    /// Receives the first message matching `pred`, setting aside (stashing)
    /// any non-matching messages for later `recv` calls.
    ///
    /// This is the selective receive that lets a process serve interleaved
    /// protocols — e.g. a merge worker awaiting an LFS reply while merge
    /// tokens keep arriving.
    pub fn recv_where(&mut self, mut pred: impl FnMut(&Envelope) -> bool) -> Envelope {
        if let Some(pos) = self.stash.iter().position(&mut pred) {
            return self.stash.remove(pos).expect("position is in range");
        }
        loop {
            let env = self.recv_fresh();
            if pred(&env) {
                return env;
            }
            self.stash.push_back(env);
        }
    }

    /// Receives the first message matching `pred`, stashing non-matches,
    /// or returns `None` once `d` has elapsed with no match.
    ///
    /// The timeout is measured from the call; messages that arrive and
    /// fail the predicate do not extend it. This is the receive a
    /// retrying RPC client needs: wait for *this* reply, set everything
    /// else aside, give up at the deadline.
    pub fn recv_where_timeout(
        &mut self,
        mut pred: impl FnMut(&Envelope) -> bool,
        d: SimDuration,
    ) -> Option<Envelope> {
        if let Some(pos) = self.stash.iter().position(&mut pred) {
            return Some(self.stash.remove(pos).expect("position is in range"));
        }
        let deadline = self.now + d;
        loop {
            let remaining = deadline.saturating_duration_since(self.now);
            match self.call(Syscall::BlockRecvTimeout(remaining)) {
                Resume::Msg { env, now } => {
                    self.now = now;
                    if pred(&env) {
                        return Some(env);
                    }
                    self.stash.push_back(env);
                }
                Resume::Timeout { now } => {
                    self.now = now;
                    return None;
                }
                _ => unreachable!("recv_where_timeout resumed with unexpected variant"),
            }
        }
    }

    /// Drops every stashed message matching `pred`.
    ///
    /// A retrying client uses this after a request completes to purge
    /// duplicate replies to it (matched by exact request id) that earlier
    /// receives set aside, so they never surface from a later `recv`.
    pub fn discard_stashed(&mut self, mut pred: impl FnMut(&Envelope) -> bool) {
        self.stash.retain(|env| !pred(env));
    }

    /// Receives the next message whose payload is of type `M`, stashing
    /// others, and returns the sender and payload.
    pub fn recv_as<M: Send + 'static>(&mut self) -> (ProcId, M) {
        let env = self.recv_where(|e| e.is::<M>());
        let from = env.from();
        let msg = env.downcast::<M>().expect("predicate guarantees type");
        (from, msg)
    }

    /// Receives the next `M` sent by `src`, stashing everything else.
    pub fn recv_from<M: Send + 'static>(&mut self, src: ProcId) -> M {
        let env = self.recv_where(|e| e.from() == src && e.is::<M>());
        env.downcast::<M>().expect("predicate guarantees type")
    }

    /// Number of messages currently set aside by selective receives.
    pub fn stashed(&self) -> usize {
        self.stash.len()
    }

    /// Spawns a new process on `node` and returns its id. The child starts
    /// at the current virtual time, after the caller next blocks.
    pub fn spawn(
        &mut self,
        node: NodeId,
        name: impl Into<String>,
        f: impl FnOnce(&mut Ctx) + Send + 'static,
    ) -> ProcId {
        match self.call(Syscall::Spawn {
            node,
            name: name.into(),
            f: Box::new(f),
        }) {
            Resume::Spawned(pid) => pid,
            _ => unreachable!("spawn resumed without Spawned"),
        }
    }
}

impl fmt::Debug for Ctx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("pid", &self.pid)
            .field("node", &self.node)
            .field("now", &self.now)
            .field("stash", &self.stash.len())
            .finish()
    }
}
