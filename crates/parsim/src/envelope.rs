//! Message envelopes delivered between simulated processes.

use crate::process::ProcId;
use crate::time::SimTime;
use std::any::Any;
use std::fmt;

/// Clones a type-erased payload. Captured at send time for `Clone`
/// payloads so the fault layer can duplicate messages without knowing
/// their concrete type.
pub(crate) type PayloadCloner = fn(&(dyn Any + Send)) -> Box<dyn Any + Send>;

/// A message as received by a process: sender, timing, and a type-erased
/// payload.
///
/// Payloads are type-erased so that independently developed layers (the
/// Bridge server protocol, the EFS protocol, tool-private tokens) can share
/// one mailbox, exactly as processes on the Butterfly shared one atomic
/// queue. Use [`Envelope::is`] / [`Envelope::downcast`] to recover the
/// concrete type, or the typed helpers on
/// [`Ctx`](crate::Ctx) such as [`Ctx::recv_as`](crate::Ctx::recv_as).
pub struct Envelope {
    pub(crate) from: ProcId,
    pub(crate) sent_at: SimTime,
    pub(crate) delivered_at: SimTime,
    pub(crate) payload: Box<dyn Any + Send>,
    /// Message id pairing the tracer's flow_send/flow_recv events.
    pub(crate) flow: u64,
    /// Payload duplicator, present only for cloneable sends.
    pub(crate) cloner: Option<PayloadCloner>,
}

impl Envelope {
    /// A copy of this envelope (same sender and timing; the caller assigns
    /// a fresh flow id), or `None` if the payload was not sent cloneable.
    pub(crate) fn duplicate(&self) -> Option<Envelope> {
        let cloner = self.cloner?;
        Some(Envelope {
            from: self.from,
            sent_at: self.sent_at,
            delivered_at: self.delivered_at,
            payload: cloner(&*self.payload),
            flow: self.flow,
            cloner: self.cloner,
        })
    }
}

impl Envelope {
    /// The process that sent this message.
    pub fn from(&self) -> ProcId {
        self.from
    }

    /// Virtual time at which the sender posted the message.
    pub fn sent_at(&self) -> SimTime {
        self.sent_at
    }

    /// Virtual time at which the message reached this process's mailbox.
    pub fn delivered_at(&self) -> SimTime {
        self.delivered_at
    }

    /// True if the payload is of type `M`.
    pub fn is<M: 'static>(&self) -> bool {
        self.payload.is::<M>()
    }

    /// Recovers the payload as `M`, or returns the envelope unchanged.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` if the payload is not of type `M`.
    pub fn downcast<M: 'static>(self) -> Result<M, Envelope> {
        match self.payload.downcast::<M>() {
            Ok(b) => Ok(*b),
            Err(payload) => Err(Envelope { payload, ..self }),
        }
    }

    /// Borrows the payload as `M` if it has that type.
    pub fn downcast_ref<M: 'static>(&self) -> Option<&M> {
        self.payload.downcast_ref::<M>()
    }
}

impl fmt::Debug for Envelope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Envelope")
            .field("from", &self.from)
            .field("sent_at", &self.sent_at)
            .field("delivered_at", &self.delivered_at)
            .field("payload", &"<dyn Any>")
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope_with(payload: Box<dyn Any + Send>) -> Envelope {
        Envelope {
            from: ProcId(7),
            sent_at: SimTime::ZERO,
            delivered_at: SimTime::from_nanos(5),
            payload,
            flow: 0,
            cloner: None,
        }
    }

    #[test]
    fn duplicate_requires_a_cloner() {
        let env = envelope_with(Box::new(5u32));
        assert!(env.duplicate().is_none());
        let env = Envelope {
            cloner: Some(|p| Box::new(*p.downcast_ref::<u32>().expect("cloner payload type"))),
            ..env
        };
        let copy = env.duplicate().expect("cloneable payload duplicates");
        assert_eq!(copy.downcast_ref::<u32>(), Some(&5));
        assert_eq!(copy.from(), env.from());
    }

    #[test]
    fn downcast_success_and_failure() {
        let env = envelope_with(Box::new(42u32));
        assert!(env.is::<u32>());
        assert!(!env.is::<String>());
        assert_eq!(env.downcast_ref::<u32>(), Some(&42));

        let env = env.downcast::<String>().expect_err("wrong type must fail");
        assert_eq!(env.from(), ProcId(7));
        assert_eq!(env.downcast::<u32>().expect("right type"), 42);
    }

    #[test]
    fn metadata_preserved() {
        let env = envelope_with(Box::new(()));
        assert_eq!(env.sent_at(), SimTime::ZERO);
        assert_eq!(env.delivered_at(), SimTime::from_nanos(5));
        assert!(format!("{env:?}").contains("Envelope"));
    }
}
