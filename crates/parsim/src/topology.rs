//! Machine topology: nodes and the interconnect latency model.
//!
//! The Bridge paper runs on a BBN Butterfly, where "messages are implemented
//! with atomic queues and buffers in shared memory, but could be realized
//! equally well on any local area network". We abstract the interconnect as
//! a [`LatencyModel`]: a function from (source node, destination node,
//! message size) to a virtual-time delay.

use crate::time::SimDuration;
use std::fmt;

/// Identifies a processing node of the simulated machine.
///
/// Every simulated process is placed on a node; messages between processes
/// on the *same* node are cheaper than messages that cross the interconnect,
/// which is exactly the asymmetry Bridge tools exploit by exporting code to
/// the node that holds the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The node's index in creation order (0-based).
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The id of the node created at `index`. Ids are nothing but
    /// creation-order indices, so this lets fault plans and test fixtures
    /// name nodes without holding the simulation that created them; using
    /// an index no simulation reaches is simply inert.
    pub const fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Computes the virtual-time cost of moving a message between nodes.
///
/// Implementations must be deterministic: the simulator's reproducibility
/// guarantee depends on it.
pub trait LatencyModel: Send {
    /// Delay between posting a message on `from` and its arrival at `to`.
    fn latency(&self, from: NodeId, to: NodeId, bytes: usize) -> SimDuration;
}

/// A uniform interconnect: constant local cost, and a base-plus-per-byte
/// cost for remote messages, independent of which pair of nodes talks.
///
/// The defaults approximate the Butterfly switch as the paper describes it:
/// interprocessor communication is *slow compared to aggregate I/O
/// bandwidth* but fast compared to a single 15 ms disk access.
///
/// # Examples
///
/// ```
/// use parsim::{LatencyModel, SimDuration, UniformLatency};
///
/// let net = UniformLatency::default();
/// // 1 KiB remote block transfer costs base + per-byte.
/// let d = net.remote_base + net.per_byte * 1024;
/// assert_eq!(d, SimDuration::from_nanos(100_000 + 1024 * 50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformLatency {
    /// Cost of a message between two processes on the same node.
    pub local: SimDuration,
    /// Fixed cost of any message that crosses the interconnect.
    pub remote_base: SimDuration,
    /// Additional cost per payload byte for remote messages.
    pub per_byte: SimDuration,
}

impl Default for UniformLatency {
    fn default() -> Self {
        UniformLatency {
            local: SimDuration::from_micros(5),
            remote_base: SimDuration::from_micros(100),
            per_byte: SimDuration::from_nanos(50),
        }
    }
}

impl UniformLatency {
    /// A model where every message, local or remote, costs exactly `d`.
    pub fn constant(d: SimDuration) -> Self {
        UniformLatency {
            local: d,
            remote_base: d,
            per_byte: SimDuration::ZERO,
        }
    }
}

impl LatencyModel for UniformLatency {
    fn latency(&self, from: NodeId, to: NodeId, bytes: usize) -> SimDuration {
        if from == to {
            self.local
        } else {
            self.remote_base + self.per_byte * bytes as u64
        }
    }
}

/// A free interconnect; useful for isolating disk behaviour in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZeroLatency;

impl LatencyModel for ZeroLatency {
    fn latency(&self, _from: NodeId, _to: NodeId, _bytes: usize) -> SimDuration {
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_local_vs_remote() {
        let m = UniformLatency {
            local: SimDuration::from_micros(2),
            remote_base: SimDuration::from_micros(100),
            per_byte: SimDuration::from_nanos(10),
        };
        let a = NodeId(0);
        let b = NodeId(1);
        assert_eq!(m.latency(a, a, 4096), SimDuration::from_micros(2));
        assert_eq!(
            m.latency(a, b, 1000),
            SimDuration::from_micros(100) + SimDuration::from_micros(10)
        );
    }

    #[test]
    fn constant_ignores_size_and_placement() {
        let m = UniformLatency::constant(SimDuration::from_micros(7));
        assert_eq!(
            m.latency(NodeId(0), NodeId(0), 0),
            SimDuration::from_micros(7)
        );
        assert_eq!(
            m.latency(NodeId(0), NodeId(3), 10_000),
            SimDuration::from_micros(7)
        );
    }

    #[test]
    fn zero_latency_is_free() {
        assert_eq!(
            ZeroLatency.latency(NodeId(0), NodeId(9), 1 << 20),
            SimDuration::ZERO
        );
    }

    #[test]
    fn node_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(NodeId(3).index(), 3);
    }
}
