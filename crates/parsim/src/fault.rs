//! Deterministic fault injection.
//!
//! A [`FaultPlan`] describes every fault a simulation run will see: message
//! drops, duplicates, and extra delays; node outage windows; and transient
//! disk I/O errors (consumed by the disk layer, not the scheduler). The plan
//! is *pure data* — all randomness comes from a [splitmix64] stream seeded
//! by [`FaultPlan::seed`] and stepped at deterministic points (once per
//! posted message, once per disk operation), never from the wall clock or
//! the OS. Two runs with the same plan therefore inject byte-identical
//! faults at identical virtual times, which is what makes a failing chaos
//! seed replayable.
//!
//! With [`FaultPlan::none`] the scheduler installs no fault state at all:
//! the fault-free fast path is the exact pre-fault-layer code path, and
//! [`RunStats`](crate::RunStats) plus every virtual timestamp stay
//! bit-identical to a build without the hooks.

use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// Advances a splitmix64 state and returns the next value in the stream.
///
/// This is the only random-number generator the fault layer uses; it is
/// exposed so other layers (the simulated disk) can draw from the same
/// family of deterministic streams.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mixes two seeds into one (a single splitmix64 step of `a ^ b`), used to
/// derive per-component streams from a plan seed without correlation.
pub fn mix64(a: u64, b: u64) -> u64 {
    let mut s = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut s)
}

/// Message-level fault rates, in parts per thousand of posted messages.
///
/// Each posted message draws one value from the plan's PRNG and the draw's
/// sub-fields decide its fate, checked in order: drop, duplicate, delay.
/// Rates are independent per message; values above 1000 are rejected when
/// the simulation is built.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MsgFaults {
    /// Probability (‰) that a message is silently lost.
    pub drop_per_mille: u16,
    /// Probability (‰) that a message is delivered twice. Only payloads
    /// sent with [`Ctx::send_sized_cloneable`](crate::Ctx::send_sized_cloneable)
    /// can actually be duplicated; others deliver once regardless.
    pub dup_per_mille: u16,
    /// Probability (‰) that a message is delivered late.
    pub delay_per_mille: u16,
    /// Upper bound on the extra delivery delay; the actual extra delay is
    /// drawn uniformly from `[0, delay_max)`.
    pub delay_max: SimDuration,
    /// Hard cap on drops in a row across the whole run: after this many
    /// consecutive drops the next message is forced through. Keeps any
    /// bounded-retry protocol convergent. Zero disables dropping entirely
    /// (a cap of zero means no drop is ever allowed).
    pub max_consecutive_drops: u32,
}

impl MsgFaults {
    /// True when no message fault can ever fire.
    pub fn is_inert(&self) -> bool {
        (self.drop_per_mille == 0 || self.max_consecutive_drops == 0)
            && self.dup_per_mille == 0
            && self.delay_per_mille == 0
    }
}

/// How a node behaves during an [`Outage`] window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutageKind {
    /// Crash-and-restart: messages delivered to processes on the node
    /// while it is down are lost. Process memory survives the restart —
    /// a modelling shortcut that is faithful for the stateless EFS
    /// servers this layer exists to exercise.
    Down,
    /// The node stops consuming messages; deliveries are deferred to the
    /// end of the window (in their original order) instead of lost.
    Paused,
}

/// A scheduled node outage: `node` is down or paused for `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outage {
    /// The affected node.
    pub node: NodeId,
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive); delivery resumes at this instant.
    pub until: SimTime,
    /// Whether deliveries inside the window are lost or deferred.
    pub kind: OutageKind,
}

/// A targeted disk fault: the addressed block fails the next `fails`
/// operations that touch it, then recovers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockFaultRule {
    /// Which disk the rule applies to — an embedder-chosen index (the
    /// Bridge machine uses the LFS node ordinal).
    pub disk: u32,
    /// Linear block index on that disk.
    pub block: u32,
    /// Number of consecutive failures before the block heals.
    pub fails: u32,
}

/// A scheduled node kill expressed in *disk write ordinals*: the node
/// owning `disk` crashes immediately after that disk persists its
/// `after_writes`-th elementary block write, stays silent for `down`,
/// then restarts from its durable state.
///
/// Counting elementary writes (rather than wall-clock windows, which
/// [`Outage`] already covers) is what makes the kill schedulable *between
/// any two dependent block writes*: a multi-block operation can be torn
/// at every intermediate step, and a sweep over `after_writes = 1..=N`
/// visits every such crash point exactly once. The scheduler ignores
/// this section; the simulated disk consumes it (like [`DiskFaults`]) and
/// the embedding server turns the disk's dead state into a node restart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashAt {
    /// Which disk's write stream to count — an embedder-chosen index (the
    /// Bridge machine uses the LFS node ordinal, as for
    /// [`BlockFaultRule::disk`]).
    pub disk: u32,
    /// Crash fires right after this many elementary block writes have
    /// persisted over the disk's lifetime (cumulative across restarts).
    /// The `after_writes`-th write itself is durable; everything the
    /// operation would have written after it is lost.
    pub after_writes: u64,
    /// How long the node stays silent before recovering. Messages
    /// delivered during the window are lost.
    pub down: SimDuration,
}

/// A scheduled *permanent* media loss, expressed in the same disk write
/// ordinals as [`CrashAt`]: immediately after `disk` persists its
/// `after_writes`-th elementary block write, the medium dies for good.
/// Every later operation on it fails, restarts do not help, and the data
/// is unrecoverable from that disk — only a redundancy layer (mirroring
/// or parity across other disks) can serve or rebuild its contents.
///
/// This is the fault class that distinguishes *availability* from
/// *durability* testing: [`CrashAt`] exercises recovery from a disk that
/// comes back, `DiskLost` exercises service and reconstruction when it
/// never does. The scheduler ignores this section; the simulated disk
/// consumes it (like [`DiskFaults`]) and stays dead until the embedder
/// explicitly installs a spare medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskLost {
    /// Which disk's write stream to count — an embedder-chosen index (the
    /// Bridge machine uses the LFS node ordinal, as for
    /// [`BlockFaultRule::disk`]).
    pub disk: u32,
    /// Loss fires right after this many elementary block writes have
    /// persisted over the disk's lifetime. The `after_writes`-th write
    /// itself is durable (but unreadable — the medium is gone); zero
    /// means the disk is lost before it persists anything.
    pub after_writes: u64,
}

/// Reserved [`CrashAt::disk`] ordinal addressing the *server* node's own
/// disk rather than an LFS instance. The Bridge machine keys its
/// coordinator decision-log disk on this value, so a sweep over
/// `CrashAt { disk: SERVER_DISK, after_writes: 1..=N, .. }` fail-stops
/// the server after each of its elementary decision-record writes —
/// between any two steps of a machine-wide commit. Embedders without a
/// server-side disk never match it, keeping such plans inert for them.
pub const SERVER_DISK: u32 = u32::MAX;

/// Transient disk I/O faults. The scheduler ignores this section; the
/// simulated disk consumes it via its own fault state seeded from
/// [`FaultPlan::seed`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DiskFaults {
    /// Probability (‰) that a block operation fails with a transient
    /// error and must be retried by the driver.
    pub error_per_mille: u16,
    /// Hard cap on consecutive transient failures per disk, so a bounded
    /// driver retry loop always succeeds. Zero disables random errors.
    pub max_consecutive: u32,
    /// Targeted "block X fails N times then succeeds" rules.
    pub targets: Vec<BlockFaultRule>,
}

impl DiskFaults {
    /// True when no disk fault can ever fire.
    pub fn is_inert(&self) -> bool {
        (self.error_per_mille == 0 || self.max_consecutive == 0) && self.targets.is_empty()
    }
}

/// A complete, deterministic description of the faults a run will see.
///
/// # Examples
///
/// ```
/// use parsim::{FaultPlan, MsgFaults, SimConfig, SimDuration, Simulation};
///
/// let plan = FaultPlan {
///     seed: 7,
///     msg: MsgFaults {
///         drop_per_mille: 100,
///         max_consecutive_drops: 8,
///         ..MsgFaults::default()
///     },
///     ..FaultPlan::none()
/// };
/// let sim = Simulation::new(SimConfig {
///     faults: plan,
///     ..SimConfig::default()
/// });
/// drop(sim);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for the plan's PRNG streams. Two runs with equal plans see
    /// identical faults.
    pub seed: u64,
    /// Message drop/duplicate/delay rates.
    pub msg: MsgFaults,
    /// Scheduled node outage windows.
    pub outages: Vec<Outage>,
    /// Transient disk error configuration (consumed by the disk layer).
    pub disk: DiskFaults,
    /// Crash-at-any-point node kills, keyed by disk write ordinal
    /// (consumed by the disk layer; empty = no crash state installed).
    pub crashes: Vec<CrashAt>,
    /// Permanent media losses, keyed by disk write ordinal (consumed by
    /// the disk layer; empty = no loss state installed).
    pub losses: Vec<DiskLost>,
}

impl FaultPlan {
    /// The empty plan: no faults, and no fault state installed — the
    /// simulation takes the exact pre-fault-layer code path.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when the scheduler has nothing to do for this plan (disk
    /// faults and crash kills do not count: they are the disk layer's
    /// business).
    pub fn is_inert_for_scheduler(&self) -> bool {
        self.msg.is_inert() && self.outages.is_empty()
    }
}

/// The fate of one posted message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MsgFate {
    Deliver,
    Drop,
    Duplicate,
    Delay(SimDuration),
}

/// Live message-fault state owned by the scheduler. Only exists when the
/// plan is not inert, so `FaultPlan::none()` has zero runtime footprint.
#[derive(Debug)]
pub(crate) struct FaultState {
    rng: u64,
    msg: MsgFaults,
    outages: Vec<Outage>,
    consecutive_drops: u32,
}

impl FaultState {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        assert!(
            plan.msg.drop_per_mille <= 1000
                && plan.msg.dup_per_mille <= 1000
                && plan.msg.delay_per_mille <= 1000,
            "per-mille fault rates must be <= 1000"
        );
        for o in &plan.outages {
            assert!(o.from <= o.until, "outage window ends before it starts");
        }
        FaultState {
            rng: mix64(plan.seed, 0x6d73_675f_6661_7465), // "msg_fate"
            msg: plan.msg,
            outages: plan.outages.clone(),
            consecutive_drops: 0,
        }
    }

    /// Draws the fate of the next posted message. Exactly one PRNG step
    /// per message regardless of outcome, so editing rates perturbs the
    /// stream as little as possible.
    pub(crate) fn next_fate(&mut self) -> MsgFate {
        let x = splitmix64(&mut self.rng);
        let drop_roll = (x % 1000) as u16;
        let dup_roll = ((x >> 10) % 1000) as u16;
        let delay_roll = ((x >> 20) % 1000) as u16;
        if drop_roll < self.msg.drop_per_mille {
            if self.consecutive_drops < self.msg.max_consecutive_drops {
                self.consecutive_drops += 1;
                return MsgFate::Drop;
            }
            // Cap reached: force this one through and reset the streak.
            self.consecutive_drops = 0;
            return MsgFate::Deliver;
        }
        self.consecutive_drops = 0;
        if dup_roll < self.msg.dup_per_mille {
            return MsgFate::Duplicate;
        }
        if delay_roll < self.msg.delay_per_mille && !self.msg.delay_max.is_zero() {
            let frac = (x >> 32) % 1_000_000;
            let extra = self.msg.delay_max.as_nanos() / 1_000_000 * frac
                + self.msg.delay_max.as_nanos() % 1_000_000 * frac / 1_000_000;
            return MsgFate::Delay(SimDuration::from_nanos(extra));
        }
        MsgFate::Deliver
    }

    /// The outage window covering `node` at `now`, if any.
    pub(crate) fn outage_at(&self, node: NodeId, now: SimTime) -> Option<&Outage> {
        self.outages
            .iter()
            .find(|o| o.node == node && o.from <= now && now < o.until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_moves() {
        let mut a = 42;
        let mut b = 42;
        let xs: Vec<u64> = (0..4).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..4).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert_eq!(xs.len(), 4);
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn none_plan_is_inert() {
        assert!(FaultPlan::none().is_inert_for_scheduler());
        assert!(FaultPlan::none().disk.is_inert());
        assert!(FaultPlan::none().crashes.is_empty());
        assert!(FaultPlan::none().losses.is_empty());
        // A drop rate without a consecutive cap can never fire.
        let plan = MsgFaults {
            drop_per_mille: 500,
            max_consecutive_drops: 0,
            ..MsgFaults::default()
        };
        assert!(plan.is_inert());
    }

    #[test]
    fn drop_streaks_are_capped() {
        let plan = FaultPlan {
            seed: 1,
            msg: MsgFaults {
                drop_per_mille: 1000, // always drop...
                max_consecutive_drops: 3,
                ..MsgFaults::default()
            },
            ..FaultPlan::none()
        };
        let mut state = FaultState::new(&plan);
        let fates: Vec<MsgFate> = (0..8).map(|_| state.next_fate()).collect();
        assert_eq!(
            fates,
            vec![
                MsgFate::Drop,
                MsgFate::Drop,
                MsgFate::Drop,
                MsgFate::Deliver, // ...but every 4th is forced through
                MsgFate::Drop,
                MsgFate::Drop,
                MsgFate::Drop,
                MsgFate::Deliver,
            ]
        );
    }

    #[test]
    fn delay_fates_are_bounded() {
        let plan = FaultPlan {
            seed: 9,
            msg: MsgFaults {
                delay_per_mille: 1000,
                delay_max: SimDuration::from_millis(5),
                ..MsgFaults::default()
            },
            ..FaultPlan::none()
        };
        let mut state = FaultState::new(&plan);
        for _ in 0..256 {
            match state.next_fate() {
                MsgFate::Delay(d) => assert!(d < SimDuration::from_millis(5)),
                other => panic!("expected a delay fate, got {other:?}"),
            }
        }
    }

    #[test]
    fn outage_lookup_is_half_open() {
        let node = NodeId(2);
        let plan = FaultPlan {
            outages: vec![Outage {
                node,
                from: SimTime::from_nanos(10),
                until: SimTime::from_nanos(20),
                kind: OutageKind::Down,
            }],
            ..FaultPlan::none()
        };
        let state = FaultState::new(&plan);
        assert!(state.outage_at(node, SimTime::from_nanos(9)).is_none());
        assert!(state.outage_at(node, SimTime::from_nanos(10)).is_some());
        assert!(state.outage_at(node, SimTime::from_nanos(19)).is_some());
        assert!(state.outage_at(node, SimTime::from_nanos(20)).is_none());
        assert!(state
            .outage_at(NodeId(3), SimTime::from_nanos(15))
            .is_none());
    }

    #[test]
    #[should_panic(expected = "per-mille")]
    fn rates_above_1000_are_rejected() {
        let plan = FaultPlan {
            msg: MsgFaults {
                drop_per_mille: 1001,
                max_consecutive_drops: 1,
                ..MsgFaults::default()
            },
            ..FaultPlan::none()
        };
        let _ = FaultState::new(&plan);
    }
}
