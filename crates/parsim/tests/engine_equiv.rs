//! Engine equivalence: the run-to-completion fiber engine and the
//! threaded compatibility engine must produce bit-identical results — the
//! same delivery transcripts (timestamps included), the same
//! [`RunStats`], under plain runs, armed-and-fired timeouts, mid-run
//! spawns, and active fault plans. Determinism is structural (both
//! engines run the same process code against the same event order), and
//! these tests pin it.

use parsim::{
    Ctx, Engine, FaultPlan, MsgFaults, RunStats, SimConfig, SimDuration, Simulation, UniformLatency,
};
use proptest::prelude::*;
use rand::Rng;
use std::sync::{Arc, Mutex};

const ENGINES: [Engine; 2] = [Engine::RunToCompletion, Engine::Threaded];

/// A kernel workout touching every syscall: `senders` processes send
/// numbered messages (cloneable, so fault plans can duplicate them) to a
/// hub draining with `recv_timeout`, each sender spawns a child mid-run,
/// and think times come from per-process RNGs. Returns the hub's
/// transcript and the run's counters.
fn run_workload(
    engine: Engine,
    seed: u64,
    senders: usize,
    delays: &[u16],
    faults: FaultPlan,
) -> (Vec<(u64, u32, u32)>, RunStats) {
    let mut sim = Simulation::new(SimConfig {
        latency: Box::new(UniformLatency::default()),
        seed,
        tracer: None,
        faults,
        engine,
    });
    let nodes: Vec<_> = (0..senders.max(1))
        .map(|i| sim.add_node(format!("n{i}")))
        .collect();
    let hub_node = sim.add_node("hub");
    let trace = Arc::new(Mutex::new(Vec::new()));
    let sunk = trace.clone();
    let hub = sim.spawn(hub_node, "hub", move |ctx| {
        while let Some(env) = ctx.recv_timeout(SimDuration::from_millis(50)) {
            let (who, k) = *env.downcast_ref::<(u32, u32)>().expect("sender payload");
            sunk.lock().unwrap().push((ctx.now().as_nanos(), who, k));
        }
    });
    let delays = delays.to_vec();
    for (i, &node) in nodes.iter().enumerate().take(senders) {
        let delays = delays.clone();
        sim.spawn(node, format!("s{i}"), move |ctx: &mut Ctx| {
            for (k, &d) in delays.iter().enumerate() {
                ctx.delay(SimDuration::from_micros(u64::from(d)));
                // Cloneable, so duplicate-delivery faults exercise their
                // real path.
                ctx.send_sized_cloneable(hub, (i as u32, k as u32), 64);
            }
            // A mid-run spawn: the child posts one tail message after a
            // think time drawn from its own deterministic RNG.
            let tail = delays.len() as u32;
            let _child = ctx.spawn(node, format!("s{i}-child"), move |c: &mut Ctx| {
                let jitter = u64::from(c.rng().random_range(0u16..500));
                c.delay(SimDuration::from_micros(jitter));
                c.send_sized_cloneable(hub, (i as u32, tail), 16);
            });
        });
    }
    sim.run();
    let t = trace.lock().unwrap().clone();
    (t, sim.stats())
}

fn lossy_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        msg: MsgFaults {
            drop_per_mille: 80,
            max_consecutive_drops: 3,
            dup_per_mille: 60,
            delay_per_mille: 60,
            delay_max: SimDuration::from_millis(2),
        },
        ..FaultPlan::none()
    }
}

#[test]
fn engines_agree_on_fixed_seed_workload() {
    let delays = [0u16, 13, 200, 7, 4999, 0, 42];
    let fiber = run_workload(
        Engine::RunToCompletion,
        0xB71D6E,
        5,
        &delays,
        FaultPlan::none(),
    );
    let thread = run_workload(Engine::Threaded, 0xB71D6E, 5, &delays, FaultPlan::none());
    assert_eq!(fiber.0, thread.0, "delivery transcripts diverged");
    assert_eq!(fiber.1, thread.1, "RunStats diverged");
    assert!(fiber.1.dispatches > 0 && fiber.1.syscalls > fiber.1.dispatches);
}

#[test]
fn engines_agree_under_faults() {
    let delays = [3u16, 0, 77, 1200, 5];
    let fiber = run_workload(Engine::RunToCompletion, 99, 4, &delays, lossy_plan(7));
    let thread = run_workload(Engine::Threaded, 99, 4, &delays, lossy_plan(7));
    assert_eq!(fiber.0, thread.0, "chaos transcripts diverged");
    assert_eq!(fiber.1, thread.1, "RunStats diverged under faults");
}

#[test]
fn engines_agree_on_panic_propagation() {
    for engine in ENGINES {
        let result = std::panic::catch_unwind(move || {
            let mut sim = Simulation::new(SimConfig {
                engine,
                ..SimConfig::default()
            });
            let n = sim.add_node("n");
            sim.spawn(n, "doomed", |ctx| {
                ctx.delay(SimDuration::from_micros(5));
                panic!("intentional test panic");
            });
            sim.run();
        });
        let msg = *result
            .expect_err("simulated panic must propagate")
            .downcast::<String>()
            .expect("panic carries a message");
        assert!(
            msg.contains("doomed") && msg.contains("intentional test panic"),
            "engine {engine:?}: unexpected panic message {msg:?}"
        );
    }
}

#[test]
fn teardown_unwinds_blocked_processes_on_both_engines() {
    for engine in ENGINES {
        let mut sim = Simulation::new(SimConfig {
            engine,
            ..SimConfig::default()
        });
        let n = sim.add_node("n");
        // A server blocked forever in recv, and one parked in a delay:
        // dropping the simulation must unwind both without hanging or
        // leaking (fiber stacks are freed by the unwind; threads join).
        sim.spawn(n, "receiver", |ctx| {
            let _ = ctx.recv();
            unreachable!("no message ever arrives");
        });
        sim.spawn(n, "sleeper", |ctx| {
            ctx.delay(SimDuration::from_secs(3600));
        });
        sim.run_until(parsim::SimTime::ZERO + SimDuration::from_millis(1));
        assert_eq!(sim.live_processes(), 2);
        drop(sim);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Property form: arbitrary seeds/workloads, with and without faults,
    /// produce identical transcripts and counters on both engines.
    #[test]
    fn engines_bit_identical(
        seed in any::<u64>(),
        senders in 1usize..5,
        delays in proptest::collection::vec(0u16..5000, 1..12),
        faulty in any::<bool>(),
    ) {
        let plan = if faulty { lossy_plan(seed ^ 0x5eed) } else { FaultPlan::none() };
        let fiber = run_workload(Engine::RunToCompletion, seed, senders, &delays, plan.clone());
        let thread = run_workload(Engine::Threaded, seed, senders, &delays, plan);
        prop_assert_eq!(fiber.0, thread.0);
        prop_assert_eq!(fiber.1, thread.1);
    }
}
