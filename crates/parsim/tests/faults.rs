//! Behavioural tests for the deterministic fault-injection layer.

use parsim::{
    FaultPlan, MsgFaults, Outage, OutageKind, SimConfig, SimDuration, SimTime, Simulation,
    UniformLatency, ZeroLatency,
};
use std::sync::mpsc;

fn sim_with_plan(faults: FaultPlan) -> Simulation {
    Simulation::new(SimConfig {
        latency: Box::new(UniformLatency::constant(SimDuration::from_micros(10))),
        seed: 7,
        tracer: None,
        faults,
        engine: parsim::Engine::auto(),
    })
}

/// Sends `n` numbered messages at a receiver that drains with a generous
/// timeout, and returns the payloads it saw (reported over a host-side
/// channel so the fault layer cannot touch the report itself).
fn collect_received(mut sim: Simulation, n: u32, cloneable: bool) -> Vec<u32> {
    let node = sim.add_node("n");
    let peer = sim.add_node("peer");
    let (tx, rx_chan) = mpsc::channel();
    let rx = sim.spawn(peer, "rx", move |ctx| {
        let mut got = Vec::new();
        while let Some(env) = ctx.recv_timeout(SimDuration::from_secs(1)) {
            got.push(*env.downcast_ref::<u32>().expect("u32 payload"));
        }
        tx.send(got).expect("report received payloads");
    });
    sim.block_on(node, "tx", move |ctx| {
        for i in 0..n {
            if cloneable {
                ctx.send_sized_cloneable(rx, i, 64);
            } else {
                ctx.send_sized(rx, i, 64);
            }
        }
    });
    sim.run();
    rx_chan.recv().expect("receiver reported")
}

#[test]
fn always_drop_with_cap_forces_every_fourth_through() {
    let plan = FaultPlan {
        seed: 1,
        msg: MsgFaults {
            drop_per_mille: 1000,
            max_consecutive_drops: 3,
            ..MsgFaults::default()
        },
        ..FaultPlan::none()
    };
    let got = collect_received(sim_with_plan(plan), 12, false);
    // Drops: 0,1,2 dropped; 3 forced through; 4,5,6 dropped; 7 forced; ...
    assert_eq!(got, vec![3, 7, 11]);
}

#[test]
fn duplicates_only_apply_to_cloneable_sends() {
    let plan = FaultPlan {
        seed: 2,
        msg: MsgFaults {
            dup_per_mille: 1000,
            ..MsgFaults::default()
        },
        ..FaultPlan::none()
    };
    let got = collect_received(sim_with_plan(plan.clone()), 4, true);
    assert_eq!(
        got,
        vec![0, 0, 1, 1, 2, 2, 3, 3],
        "cloneable sends deliver twice"
    );

    let got = collect_received(sim_with_plan(plan), 4, false);
    assert_eq!(got, vec![0, 1, 2, 3], "opaque sends deliver once");
}

#[test]
fn delays_defer_within_the_bound_and_lose_nothing() {
    let plan = FaultPlan {
        seed: 3,
        msg: MsgFaults {
            delay_per_mille: 1000,
            delay_max: SimDuration::from_millis(2),
            ..MsgFaults::default()
        },
        ..FaultPlan::none()
    };
    let mut sim = sim_with_plan(plan);
    let node = sim.add_node("n");
    let peer = sim.add_node("peer");
    let (tx, rx_chan) = mpsc::channel();
    let rx = sim.spawn(peer, "rx", move |ctx| {
        let mut arrivals = Vec::new();
        while let Some(env) = ctx.recv_timeout(SimDuration::from_secs(1)) {
            arrivals.push((env.sent_at(), env.delivered_at(), ctx.now()));
        }
        tx.send(arrivals).expect("report arrivals");
    });
    sim.block_on(node, "tx", move |ctx| {
        for _ in 0..16u32 {
            ctx.send_sized(rx, 0u32, 64);
        }
    });
    sim.run();
    let arrivals = rx_chan.recv().expect("receiver reported");
    assert_eq!(arrivals.len(), 16, "delayed messages are not lost");
    let base = SimDuration::from_micros(10);
    for (sent, delivered, seen) in arrivals {
        let lat = delivered.duration_since(sent);
        assert!(lat >= base, "latency at least the interconnect cost");
        assert!(
            lat < base + SimDuration::from_millis(2),
            "extra delay bounded by delay_max"
        );
        assert_eq!(delivered, seen, "envelope timing matches the clock");
    }
}

#[test]
fn down_outage_loses_in_window_messages() {
    let mut sim = Simulation::new(SimConfig {
        latency: Box::new(ZeroLatency),
        seed: 7,
        tracer: None,
        faults: FaultPlan {
            outages: vec![Outage {
                // "peer" below is the second node created.
                node: node_by_creation(1),
                from: SimTime::ZERO,
                until: SimTime::ZERO + SimDuration::from_millis(10),
                kind: OutageKind::Down,
            }],
            ..FaultPlan::none()
        },
        engine: parsim::Engine::auto(),
    });
    let node = sim.add_node("n");
    let peer = sim.add_node("peer");
    let (tx, rx_chan) = mpsc::channel();
    let rx = sim.spawn(peer, "rx", move |ctx| {
        let mut got = Vec::new();
        while let Some(env) = ctx.recv_timeout(SimDuration::from_secs(1)) {
            got.push(*env.downcast_ref::<u32>().expect("u32 payload"));
        }
        tx.send(got).expect("report");
    });
    sim.block_on(node, "tx", move |ctx| {
        ctx.send(rx, 1u32); // in the outage window: lost
        ctx.delay(SimDuration::from_millis(20));
        ctx.send(rx, 2u32); // after the window: delivered
    });
    sim.run();
    assert_eq!(rx_chan.recv().expect("report"), vec![2]);
}

#[test]
fn paused_outage_defers_in_order_to_window_end() {
    let pause_end = SimTime::ZERO + SimDuration::from_millis(10);
    let mut sim = Simulation::new(SimConfig {
        latency: Box::new(ZeroLatency),
        seed: 7,
        tracer: None,
        faults: FaultPlan {
            outages: vec![Outage {
                node: node_by_creation(1),
                from: SimTime::ZERO,
                until: pause_end,
                kind: OutageKind::Paused,
            }],
            ..FaultPlan::none()
        },
        engine: parsim::Engine::auto(),
    });
    let node = sim.add_node("n");
    let peer = sim.add_node("peer");
    let (tx, rx_chan) = mpsc::channel();
    let rx = sim.spawn(peer, "rx", move |ctx| {
        let mut got = Vec::new();
        while let Some(env) = ctx.recv_timeout(SimDuration::from_secs(1)) {
            got.push((*env.downcast_ref::<u32>().expect("u32"), ctx.now()));
        }
        tx.send(got).expect("report");
    });
    sim.block_on(node, "tx", move |ctx| {
        ctx.send(rx, 1u32);
        ctx.send(rx, 2u32);
        ctx.send(rx, 3u32);
    });
    sim.run();
    let got = rx_chan.recv().expect("report");
    let values: Vec<u32> = got.iter().map(|&(v, _)| v).collect();
    assert_eq!(values, vec![1, 2, 3], "deferred messages keep their order");
    for &(_, at) in &got {
        assert!(at >= pause_end, "nothing delivered inside the pause");
    }
}

#[test]
fn same_plan_same_run() {
    let plan = FaultPlan {
        seed: 99,
        msg: MsgFaults {
            drop_per_mille: 200,
            dup_per_mille: 100,
            delay_per_mille: 300,
            delay_max: SimDuration::from_millis(1),
            max_consecutive_drops: 4,
        },
        ..FaultPlan::none()
    };
    let run = |plan: FaultPlan| collect_received(sim_with_plan(plan), 64, true);
    let first = run(plan.clone());
    assert_eq!(first, run(plan));
    assert!(!first.is_empty(), "the cap guarantees some deliveries");
}

#[test]
fn none_plan_matches_a_config_without_faults() {
    let run = |faults: FaultPlan| {
        let mut sim = Simulation::new(SimConfig {
            latency: Box::new(UniformLatency::default()),
            seed: 42,
            tracer: None,
            faults,
            engine: parsim::Engine::auto(),
        });
        let nodes = sim.add_nodes("n", 3);
        let hub = sim.spawn(nodes[0], "hub", |ctx| {
            let mut total = 0u64;
            for _ in 0..20 {
                let (_, v) = ctx.recv_as::<u64>();
                total += v;
            }
            assert_eq!(total, 190);
        });
        for (i, &node) in nodes.iter().enumerate() {
            sim.spawn(node, format!("w{i}"), move |ctx| {
                for k in 0..20u64 {
                    if k as usize % 3 == i {
                        ctx.delay(SimDuration::from_micros(k));
                        ctx.send_sized_cloneable(hub, k, 32);
                    }
                }
            });
        }
        sim.run()
    };
    assert_eq!(run(FaultPlan::none()), run(FaultPlan::none()));
}

#[test]
fn unique_ids_are_process_local_and_monotonic() {
    let mut sim = Simulation::new(SimConfig::default());
    let n = sim.add_node("n");
    let ids = sim.block_on(n, "main", |ctx| {
        (0..4).map(|_| ctx.unique_id()).collect::<Vec<u64>>()
    });
    assert_eq!(ids, vec![1, 2, 3, 4]);
}

#[test]
fn recv_where_timeout_stashes_and_expires() {
    let mut sim = Simulation::new(SimConfig {
        latency: Box::new(ZeroLatency),
        ..SimConfig::default()
    });
    let n = sim.add_node("n");
    let got = sim.block_on(n, "main", move |ctx| {
        let me = ctx.me();
        ctx.spawn(n, "peer", move |c| {
            c.send(me, 1u32);
            c.delay(SimDuration::from_millis(5));
            c.send(me, "late");
        });
        // Wait for a &str with a deadline before the peer sends one: the
        // u32 is stashed, the wait times out.
        let miss = ctx.recv_where_timeout(|e| e.is::<&str>(), SimDuration::from_millis(2));
        assert!(miss.is_none(), "deadline expires without a match");
        assert_eq!(ctx.stashed(), 1, "non-matching message was set aside");
        // A second wait with a later deadline gets it.
        let hit = ctx
            .recv_where_timeout(|e| e.is::<&str>(), SimDuration::from_millis(10))
            .expect("late message arrives inside the second window");
        assert_eq!(hit.downcast_ref::<&str>(), Some(&"late"));
        // The stash still yields the earlier u32; discard_stashed purges it.
        ctx.discard_stashed(|e| e.is::<u32>());
        assert_eq!(ctx.stashed(), 0);
        true
    });
    assert!(got);
}

/// Builds "the node created at index `i`" for outage plans: `NodeId`s are
/// just creation-order indices, so ids from a scratch simulation transfer.
fn node_by_creation(i: u32) -> parsim::NodeId {
    let mut sim = Simulation::new(SimConfig::default());
    let mut last = sim.add_node("scratch0");
    for k in 1..=i {
        last = sim.add_node(format!("scratch{k}"));
    }
    last
}
