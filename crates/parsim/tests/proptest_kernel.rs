//! Property tests for the simulation kernel: determinism under arbitrary
//! workloads, FIFO delivery, and monotonic time.

use parsim::{Ctx, SimConfig, SimDuration, Simulation, UniformLatency};
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

/// A little random workload: `senders` processes each send `msgs` numbered
/// messages to a hub, with arbitrary think times between them.
fn run_workload(seed: u64, senders: usize, delays: &[u16]) -> Vec<(u64, u32, u32)> {
    let mut sim = Simulation::new(SimConfig {
        latency: Box::new(UniformLatency::default()),
        seed,
        tracer: None,
        ..SimConfig::default()
    });
    let nodes: Vec<_> = (0..senders.max(1))
        .map(|i| sim.add_node(format!("n{i}")))
        .collect();
    let hub_node = sim.add_node("hub");
    let trace = Arc::new(Mutex::new(Vec::new()));
    let sunk = trace.clone();
    let per_sender = delays.len();
    let total = senders * per_sender;
    let hub = sim.spawn(hub_node, "hub", move |ctx| {
        for _ in 0..total {
            let (_, (who, k)) = ctx.recv_as::<(u32, u32)>();
            sunk.lock().unwrap().push((ctx.now().as_nanos(), who, k));
        }
    });
    let delays = delays.to_vec();
    for (i, &node) in nodes.iter().enumerate().take(senders) {
        let delays = delays.clone();
        sim.spawn(node, format!("s{i}"), move |ctx: &mut Ctx| {
            for (k, &d) in delays.iter().enumerate() {
                ctx.delay(SimDuration::from_micros(u64::from(d)));
                ctx.send(hub, (i as u32, k as u32));
            }
        });
    }
    sim.run();
    let t = trace.lock().unwrap().clone();
    assert_eq!(t.len(), total);
    t
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Bit-for-bit determinism: the same seed and workload produce the
    /// same trace, timestamps included.
    #[test]
    fn identical_runs_produce_identical_traces(
        seed in any::<u64>(),
        senders in 1usize..6,
        delays in proptest::collection::vec(0u16..5000, 1..20),
    ) {
        let a = run_workload(seed, senders, &delays);
        let b = run_workload(seed, senders, &delays);
        prop_assert_eq!(a, b);
    }

    /// Per-sender FIFO: each sender's messages arrive in send order, and
    /// hub timestamps never decrease.
    #[test]
    fn fifo_and_monotonic_time(
        seed in any::<u64>(),
        senders in 1usize..6,
        delays in proptest::collection::vec(0u16..5000, 1..20),
    ) {
        let t = run_workload(seed, senders, &delays);
        let mut last_time = 0u64;
        let mut next_k = vec![0u32; senders];
        for (time, who, k) in t {
            prop_assert!(time >= last_time, "time is monotonic");
            last_time = time;
            prop_assert_eq!(k, next_k[who as usize], "sender {} in order", who);
            next_k[who as usize] += 1;
        }
    }

    /// Selective receive never loses messages: a process that takes the
    /// evens first still sees every odd afterwards, in order.
    #[test]
    fn recv_where_conserves_messages(count in 1u32..40) {
        let mut sim = Simulation::new(SimConfig::default());
        let n = sim.add_node("n");
        let (evens, odds) = sim.block_on(n, "main", move |ctx| {
            let me = ctx.me();
            ctx.spawn(n, "gen", move |c: &mut Ctx| {
                for i in 0..count {
                    c.send(me, i);
                }
            });
            let mut evens = Vec::new();
            for _ in 0..count.div_ceil(2) {
                let env = ctx.recv_where(|e| e.downcast_ref::<u32>().is_some_and(|v| v % 2 == 0));
                evens.push(env.downcast::<u32>().unwrap());
            }
            let mut odds = Vec::new();
            for _ in 0..count / 2 {
                odds.push(ctx.recv_as::<u32>().1);
            }
            (evens, odds)
        });
        prop_assert_eq!(evens, (0..count).step_by(2).collect::<Vec<_>>());
        prop_assert_eq!(odds, (1..count).step_by(2).collect::<Vec<_>>());
    }
}
