//! Integration tests for the parsim kernel: timing semantics, determinism,
//! selective receive, process lifecycle, and failure propagation.

use parsim::{
    Ctx, ProcId, SimConfig, SimDuration, SimTime, Simulation, UniformLatency, ZeroLatency,
};
use std::sync::{Arc, Mutex};

fn sim_with(latency: impl parsim::LatencyModel + 'static) -> Simulation {
    Simulation::new(SimConfig {
        latency: Box::new(latency),
        seed: 7,
        tracer: None,
        ..SimConfig::default()
    })
}

#[test]
fn delay_advances_virtual_time_only() {
    let mut sim = Simulation::new(SimConfig::default());
    let n = sim.add_node("n");
    let wall = std::time::Instant::now();
    let end = sim.block_on(n, "sleeper", |ctx| {
        ctx.delay(SimDuration::from_secs(3600)); // one virtual hour
        ctx.now()
    });
    assert_eq!(end, SimTime::ZERO + SimDuration::from_secs(3600));
    assert!(wall.elapsed().as_secs() < 5, "must not sleep in wall time");
}

#[test]
fn message_latency_is_charged_per_model() {
    let mut sim = sim_with(UniformLatency {
        local: SimDuration::from_micros(5),
        remote_base: SimDuration::from_micros(100),
        per_byte: SimDuration::from_nanos(50),
    });
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let echo = sim.spawn(b, "echo", |ctx| {
        let env = ctx.recv();
        let from = env.from();
        ctx.send_sized(from, (), 1024);
    });
    let (sent, got) = sim.block_on(a, "main", move |ctx| {
        let sent = ctx.now();
        ctx.send_sized(echo, (), 1024);
        let env = ctx.recv();
        (sent, env.delivered_at())
    });
    // Round trip: 2 * (100us + 1024 * 50ns) = 2 * 151.2us
    assert_eq!(
        got.duration_since(sent),
        SimDuration::from_nanos(2 * 151_200)
    );
}

#[test]
fn local_messages_are_cheaper_than_remote() {
    let mut sim = sim_with(UniformLatency::default());
    let a = sim.add_node("a");
    let b = sim.add_node("b");
    let (local, remote) = sim.block_on(a, "main", move |ctx| {
        let me = ctx.me();
        let _local_peer = ctx.spawn(a, "lp", move |c: &mut Ctx| {
            let env = c.recv();
            let t = env.delivered_at().duration_since(env.sent_at());
            c.send(me, ("local", t));
        });
        let _remote_peer = ctx.spawn(b, "rp", move |c: &mut Ctx| {
            let env = c.recv();
            let t = env.delivered_at().duration_since(env.sent_at());
            c.send(me, ("remote", t));
        });
        // Children start once we block; send to each and gather.
        ctx.delay(SimDuration::from_nanos(1));
        ctx.send(_local_peer, 0u8);
        ctx.send(_remote_peer, 0u8);
        let (_, (tag1, t1)) = ctx.recv_as::<(&str, SimDuration)>();
        let (_, (tag2, t2)) = ctx.recv_as::<(&str, SimDuration)>();
        let mut m = std::collections::HashMap::new();
        m.insert(tag1, t1);
        m.insert(tag2, t2);
        (m["local"], m["remote"])
    });
    assert!(local < remote, "local {local} should beat remote {remote}");
}

#[test]
fn fifo_between_same_pair() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let sink = Arc::new(Mutex::new(Vec::new()));
    let sunk = sink.clone();
    let rx = sim.spawn(n, "rx", move |ctx| {
        for _ in 0..100 {
            let (_, v) = ctx.recv_as::<u32>();
            sunk.lock().unwrap().push(v);
        }
    });
    sim.block_on(n, "tx", move |ctx| {
        for i in 0..100u32 {
            ctx.send(rx, i);
        }
    });
    let got = sink.lock().unwrap().clone();
    assert_eq!(got, (0..100).collect::<Vec<_>>());
}

#[test]
fn recv_where_stashes_and_replays_in_order() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let out = sim.block_on(n, "main", move |ctx| {
        let me = ctx.me();
        ctx.spawn(n, "noise", move |c: &mut Ctx| {
            c.send(me, 1u32);
            c.send(me, "interesting");
            c.send(me, 2u32);
            c.send(me, 3u32);
        });
        // Selectively take the &str first; the u32s must be stashed.
        let env = ctx.recv_where(|e| e.is::<&str>());
        let s = *env.downcast_ref::<&str>().unwrap();
        assert_eq!(ctx.stashed(), 1, "u32 #1 was stashed");
        let mut nums = Vec::new();
        for _ in 0..3 {
            nums.push(ctx.recv_as::<u32>().1);
        }
        (s, nums)
    });
    assert_eq!(out, ("interesting", vec![1, 2, 3]));
}

#[test]
fn recv_from_filters_by_sender() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let got = sim.block_on(n, "main", move |ctx| {
        let me = ctx.me();
        let a = ctx.spawn(n, "a", move |c: &mut Ctx| c.send(me, 10u32));
        let b = ctx.spawn(n, "b", move |c: &mut Ctx| c.send(me, 20u32));
        // Ask for b's message even though a's may arrive first.
        let vb = ctx.recv_from::<u32>(b);
        let va = ctx.recv_from::<u32>(a);
        (va, vb)
    });
    assert_eq!(got, (10, 20));
}

#[test]
fn recv_timeout_fires_and_is_cancelled_by_message() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let (timed_out_at, got_late) = sim.block_on(n, "main", move |ctx| {
        let me = ctx.me();
        ctx.spawn(n, "late", move |c: &mut Ctx| {
            c.delay(SimDuration::from_millis(10));
            c.send(me, 99u32);
        });
        // First wait is too short: must time out at exactly +2ms.
        assert!(ctx.recv_timeout(SimDuration::from_millis(2)).is_none());
        let timed_out_at = ctx.now();
        // Second wait is long enough: message at +10ms wins over +50ms timer.
        let env = ctx
            .recv_timeout(SimDuration::from_millis(50))
            .expect("message arrives before timeout");
        (timed_out_at, (env.downcast::<u32>().unwrap(), ctx.now()))
    });
    assert_eq!(timed_out_at, SimTime::ZERO + SimDuration::from_millis(2));
    assert_eq!(got_late.0, 99);
    assert_eq!(got_late.1, SimTime::ZERO + SimDuration::from_millis(10));
}

#[test]
fn stale_timeout_does_not_fire_later() {
    // A message cancels a pending timeout; the stale wake event must not
    // disturb a subsequent blocking receive.
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let v = sim.block_on(n, "main", move |ctx| {
        let me = ctx.me();
        ctx.spawn(n, "fast", move |c: &mut Ctx| c.send(me, 1u32));
        ctx.spawn(n, "slow", move |c: &mut Ctx| {
            c.delay(SimDuration::from_secs(1));
            c.send(me, 2u32);
        });
        let first = ctx
            .recv_timeout(SimDuration::from_millis(500))
            .expect("fast message beats the timer");
        // The 500ms wake event is now stale. Block again; the stale event
        // must be ignored and the 1s message received.
        let second = ctx.recv();
        (
            first.downcast::<u32>().unwrap(),
            second.downcast::<u32>().unwrap(),
        )
    });
    assert_eq!(v, (1, 2));
}

#[test]
fn spawn_tree_runs_to_completion() {
    // A binary tree of processes, each reporting to its parent.
    fn worker(ctx: &mut Ctx, depth: u32, parent: Option<ProcId>) {
        let mut total = 1u64;
        if depth > 0 {
            let me = ctx.me();
            let node = ctx.node();
            for i in 0..2 {
                ctx.spawn(node, format!("w{depth}-{i}"), move |c: &mut Ctx| {
                    worker(c, depth - 1, Some(me));
                });
            }
            for _ in 0..2 {
                total += ctx.recv_as::<u64>().1;
            }
        }
        if let Some(p) = parent {
            ctx.send(p, total);
        }
    }
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let total = sim.block_on(n, "root", move |ctx| {
        let me = ctx.me();
        let node = ctx.node();
        ctx.spawn(node, "w", move |c: &mut Ctx| worker(c, 5, Some(me)));
        ctx.recv_as::<u64>().1
    });
    assert_eq!(
        total,
        (1 << 6) - 1,
        "2^6 - 1 nodes in a depth-5 binary tree"
    );
}

#[test]
fn determinism_identical_runs() {
    fn run_once() -> Vec<(u64, u32)> {
        let mut sim = Simulation::new(SimConfig {
            latency: Box::new(UniformLatency::default()),
            seed: 1234,
            tracer: None,
            ..SimConfig::default()
        });
        let nodes = sim.add_nodes("n", 4);
        let trace = Arc::new(Mutex::new(Vec::new()));
        let hub_trace = trace.clone();
        let hub = sim.spawn(nodes[0], "hub", move |ctx| {
            for _ in 0..30 {
                let (_, v) = ctx.recv_as::<u32>();
                hub_trace.lock().unwrap().push((ctx.now().as_nanos(), v));
            }
        });
        for (i, &nd) in nodes.iter().enumerate().take(3) {
            sim.spawn(nd, format!("gen{i}"), move |ctx| {
                use rand::Rng;
                for k in 0..10u32 {
                    let jitter = ctx.rng().random_range(1..1000u64);
                    ctx.delay(SimDuration::from_micros(jitter));
                    ctx.send(hub, (i as u32) * 100 + k);
                }
            });
        }
        sim.run();
        let t = trace.lock().unwrap().clone();
        assert_eq!(t.len(), 30);
        t
    }
    assert_eq!(run_once(), run_once(), "same seed, same trace");
}

#[test]
fn run_until_pauses_and_resumes() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let flag = Arc::new(Mutex::new(0u32));
    let f2 = flag.clone();
    sim.spawn(n, "ticker", move |ctx| {
        for i in 1..=10 {
            ctx.delay(SimDuration::from_millis(10));
            *f2.lock().unwrap() = i;
        }
    });
    sim.run_until(SimTime::ZERO + SimDuration::from_millis(35));
    assert_eq!(*flag.lock().unwrap(), 3);
    assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(35));
    sim.run();
    assert_eq!(*flag.lock().unwrap(), 10);
}

#[test]
fn run_stats_count_events_and_messages() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let rx = sim.spawn(n, "rx", |ctx| {
        for _ in 0..5 {
            ctx.recv();
        }
    });
    sim.spawn(n, "tx", move |ctx| {
        for _ in 0..5 {
            ctx.send(rx, ());
        }
    });
    let stats = sim.run();
    assert_eq!(stats.messages, 5);
    assert_eq!(stats.spawned, 2);
    assert!(stats.events >= 7, "2 starts + 5 delivers at minimum");
}

#[test]
fn run_stats_count_bytes_and_queue_high_water() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let rx = sim.spawn(n, "rx", |ctx| {
        for _ in 0..4 {
            ctx.recv();
        }
    });
    sim.spawn(n, "tx", move |ctx| {
        // Posted back to back: all four deliveries are queued at once, so
        // the high-water mark must reach at least 4.
        for _ in 0..4 {
            ctx.send_sized(rx, (), 1024);
        }
    });
    let stats = sim.run();
    assert_eq!(stats.bytes_sent, 4 * 1024);
    assert!(
        stats.queue_high_water >= 4,
        "4 in-flight deliveries must register, got {}",
        stats.queue_high_water
    );
}

#[test]
#[should_panic(expected = "deadlocked")]
fn block_on_detects_deadlock() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let _: () = sim.block_on(n, "waiter", |ctx| {
        ctx.recv(); // nobody will ever send
    });
}

#[test]
#[should_panic(expected = "simulated process 'kaboom'")]
fn block_on_panic_reports_process_name() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let _: () = sim.block_on(n, "kaboom", |_ctx| {
        panic!("intentional failure");
    });
}

#[test]
#[should_panic(expected = "boom")]
fn process_panic_propagates_with_name() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    sim.spawn(n, "bomb", |ctx| {
        ctx.delay(SimDuration::from_millis(1));
        panic!("boom");
    });
    sim.run();
}

#[test]
fn dropping_mid_run_does_not_hang() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    for i in 0..20 {
        sim.spawn(n, format!("idle{i}"), |ctx| {
            ctx.recv(); // parked forever
        });
    }
    sim.run_until(SimTime::ZERO + SimDuration::from_millis(1));
    drop(sim); // must join all 20 parked threads without deadlock
}

#[test]
fn messages_to_starting_or_delayed_process_are_queued() {
    let mut sim = sim_with(ZeroLatency);
    let n = sim.add_node("n");
    let got = sim.block_on(n, "main", move |ctx| {
        let me = ctx.me();
        let kid = ctx.spawn(n, "kid", move |c: &mut Ctx| {
            c.delay(SimDuration::from_millis(5)); // messages arrive while delayed
            let a = c.recv_as::<u32>().1;
            let b = c.recv_as::<u32>().1;
            c.send(me, a + b);
        });
        ctx.send(kid, 2u32); // delivered while kid is Starting/Delayed
        ctx.send(kid, 40u32);
        ctx.recv_as::<u32>().1
    });
    assert_eq!(got, 42);
}

#[test]
fn per_process_rng_is_deterministic_and_distinct() {
    use rand::Rng;
    let draw = |seed: u64| -> Vec<u64> {
        let mut sim = Simulation::new(SimConfig {
            latency: Box::new(ZeroLatency),
            seed,
            tracer: None,
            ..SimConfig::default()
        });
        let n = sim.add_node("n");
        sim.block_on(n, "main", move |ctx| {
            let me = ctx.me();
            ctx.spawn(n, "other", move |c: &mut Ctx| {
                let v: u64 = c.rng().random();
                c.send(me, v);
            });
            let mine: u64 = ctx.rng().random();
            let theirs = ctx.recv_as::<u64>().1;
            vec![mine, theirs]
        })
    };
    let a = draw(9);
    let b = draw(9);
    let c = draw(10);
    assert_eq!(a, b, "same seed reproduces");
    assert_ne!(a, c, "different seed differs");
    assert_ne!(a[0], a[1], "processes get distinct streams");
}
