//! Opt-in causal-profile emission for the bench binaries.
//!
//! Every ablation bench accepts `--profile` (or `BENCH_PROFILE=1`): when
//! set, the bench traces its headline run(s), builds a
//! [`ProfileReport`] — per-op critical-path attribution by category plus
//! the flight-recorder series — prints the ASCII rendering next to the
//! bench's own tables, and writes the report JSON under
//! [`profiles_dir`] (`target/bench_profiles/` by default, overridable
//! with `BENCH_PROFILES_DIR`). The profile files live *outside*
//! [`results_dir`](crate::results::results_dir) so the regression gate
//! never mistakes a profile artifact for bench results.
//!
//! Without the flag every hook is a no-op and the bench runs untraced —
//! and since tracing is observation-only, `--profile` never changes the
//! numbers a bench reports either.

use bridge_trace::{validate_profile_json, ProfileReport, TraceCollector, TraceData};
use parsim::TracerHandle;
use std::path::PathBuf;
use std::sync::Arc;

/// Flight-recorder columns in an emitted profile.
pub const PROFILE_BINS: usize = 48;

/// Whether this bench invocation asked for causal profiles
/// (`--profile` argument or `BENCH_PROFILE=1`).
pub fn profile_requested() -> bool {
    std::env::args().any(|a| a == "--profile")
        || std::env::var("BENCH_PROFILE").is_ok_and(|v| v == "1")
}

/// Where profile reports go: `BENCH_PROFILES_DIR`, or the workspace's
/// `target/bench_profiles/`.
pub fn profiles_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BENCH_PROFILES_DIR") {
        return PathBuf::from(dir);
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
        .join("bench_profiles")
}

/// Per-bench profile hook. Construct one in `main`, [`arm`](Self::arm) a
/// run you want attributed, and [`capture`](Self::capture) it afterwards;
/// benches that already collect a trace hand it to
/// [`report`](Self::report) directly.
#[derive(Debug)]
pub struct Profiler {
    bench: String,
    enabled: bool,
    pending: Option<(String, Arc<TraceCollector>)>,
}

impl Profiler {
    /// A profiler for `bench`, enabled iff [`profile_requested`].
    pub fn new(bench: &str) -> Self {
        Profiler {
            bench: bench.to_string(),
            enabled: profile_requested(),
            pending: None,
        }
    }

    /// Whether profiles will actually be emitted.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Arms the next run under `label`, returning the tracer to install
    /// in its `BridgeConfig`/`SimConfig`. `None` (and no bookkeeping)
    /// when profiling was not requested.
    pub fn arm(&mut self, label: &str) -> Option<TracerHandle> {
        if !self.enabled {
            return None;
        }
        let collector = TraceCollector::install();
        let tracer = collector.as_tracer();
        self.pending = Some((label.to_string(), collector));
        Some(tracer)
    }

    /// Captures the armed run's trace into a profile report. No-op when
    /// nothing is armed.
    pub fn capture(&mut self) {
        if let Some((label, collector)) = self.pending.take() {
            let data = collector.take();
            self.report(&label, &data);
        }
    }

    /// Builds, prints, and writes the profile for one labelled run from
    /// an already-collected trace. No-op when profiling is off.
    pub fn report(&self, label: &str, data: &TraceData) {
        if !self.enabled {
            return;
        }
        let report = ProfileReport::from_trace(data, PROFILE_BINS);
        println!("\n### causal profile — {} / {label}\n", self.bench);
        print!("{}", report.render());
        let json = report.to_json();
        if let Err(err) = validate_profile_json(&json) {
            eprintln!("warning: profile {label} failed self-validation: {err}");
        }
        let dir = profiles_dir();
        if let Err(err) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {err}", dir.display());
            return;
        }
        let path = dir.join(format!("{}.{label}.json", self.bench));
        match std::fs::write(&path, json) {
            Ok(()) => println!("[bench_profile: {}]", path.display()),
            Err(err) => eprintln!("warning: cannot write {}: {err}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim::{SimConfig, SimDuration, Simulation};

    #[test]
    fn disabled_profiler_is_inert() {
        // The test environment does not pass --profile, so the default
        // profiler must arm nothing and capture nothing.
        if profile_requested() {
            return; // explicitly requested in this environment; skip
        }
        let mut p = Profiler::new("unit");
        assert!(!p.enabled());
        assert!(p.arm("x").is_none());
        p.capture();
    }

    #[test]
    fn enabled_profiler_writes_a_valid_report() {
        let dir = std::env::temp_dir().join("bench_profiles_unit");
        let _ = std::fs::remove_dir_all(&dir);
        let mut p = Profiler {
            bench: "unit".to_string(),
            enabled: true,
            pending: None,
        };
        std::env::set_var("BENCH_PROFILES_DIR", &dir);
        let tracer = p.arm("echo").expect("enabled profiler arms");
        let mut sim = Simulation::new(SimConfig {
            tracer: Some(tracer),
            ..SimConfig::default()
        });
        let node = sim.add_node("n0");
        let echo = sim.spawn(node, "echo", |ctx| loop {
            let (from, n) = ctx.recv_as::<u64>();
            ctx.delay(SimDuration::from_micros(5));
            ctx.send(from, n);
        });
        sim.block_on(node, "main", move |ctx| {
            ctx.send(echo, 1u64);
            let _ = ctx.recv_as::<u64>();
        });
        p.capture();
        std::env::remove_var("BENCH_PROFILES_DIR");
        let written = std::fs::read_to_string(dir.join("unit.echo.json")).expect("report written");
        validate_profile_json(&written).expect("written report validates");
    }
}
