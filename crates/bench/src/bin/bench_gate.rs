//! The bench-regression gate.
//!
//! ```text
//! bench_gate check <BENCH_baseline.json> <results_dir> [tolerance]
//! bench_gate baseline <out.json> <results_dir>
//! ```
//!
//! `check` compares the per-bench JSON files emitted into `results_dir`
//! (by the ablation benches, see `bridge_bench::results`) against the
//! committed baseline and exits non-zero when a tracked metric is worse
//! by more than the tolerance (default 0.15 = 15%), disappeared, or was
//! measured at a different scale. `baseline` merges a results directory
//! into a fresh baseline file — run it after an intended performance
//! change and commit the output.

use bridge_bench::results::{compare, load_baseline, load_results, render_baseline};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_gate check <baseline.json> <results_dir> [tolerance]\n\
         \x20      bench_gate baseline <out.json> <results_dir>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [cmd, baseline, results] if cmd == "check" => check(baseline, results, 0.15),
        [cmd, baseline, results, tol] if cmd == "check" => match tol.parse() {
            Ok(tol) => check(baseline, results, tol),
            Err(_) => return usage(),
        },
        [cmd, out, results] if cmd == "baseline" => write_baseline(out, results),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(err) => {
            eprintln!("bench_gate: {err}");
            ExitCode::FAILURE
        }
    }
}

fn check(baseline: &str, results: &str, tolerance: f64) -> Result<ExitCode, String> {
    let base = load_baseline(Path::new(baseline))?;
    let current = load_results(Path::new(results))?;
    let (deltas, failures) = compare(&base, &current, tolerance);
    println!(
        "bench gate: {} metrics vs {} (tolerance {:.0}%)",
        deltas.len(),
        baseline,
        tolerance * 100.0
    );
    for d in &deltas {
        println!(
            "  {dir} {label}: {base:.4} -> {current:.4} ({pct:+.1}% {verdict})",
            dir = if d.worsening > tolerance {
                "✗"
            } else {
                "✓"
            },
            label = d.label,
            base = d.base,
            current = d.current,
            pct = -d.worsening * 100.0,
            verdict = if d.worsening > 0.0 {
                "worse"
            } else {
                "better-or-equal"
            },
        );
    }
    if failures.is_empty() {
        println!("bench gate: PASS");
        return Ok(ExitCode::SUCCESS);
    }
    println!("bench gate: FAIL");
    for f in &failures {
        println!("  regression: {f}");
    }
    println!(
        "If the change is intended, refresh the baseline:\n  \
         cargo run -p bridge-bench --bin bench_gate -- baseline {baseline} {results}"
    );
    Ok(ExitCode::FAILURE)
}

fn write_baseline(out: &str, results: &str) -> Result<ExitCode, String> {
    let current = load_results(Path::new(results))?;
    if current.is_empty() {
        return Err(format!("no result files in {results}"));
    }
    let text = render_baseline(&current);
    std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!(
        "wrote {out} from {} bench(es): {}",
        current.len(),
        current
            .iter()
            .map(|b| b.bench.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    Ok(ExitCode::SUCCESS)
}
