//! Machine-readable bench results and the regression-gate comparison.
//!
//! Each ablation bench emits its headline numbers as one JSON file under
//! [`results_dir`] (`target/bench_results/` by default, overridable with
//! `BENCH_RESULTS_DIR`). The `bench_gate` binary merges those files,
//! compares them against the committed `BENCH_baseline.json`, and fails
//! when a tracked metric moves the wrong way by more than the tolerance.
//!
//! The simulation is deterministic in virtual time, so metric values are
//! bit-stable across hosts and runs at a given scale; the gate's
//! tolerance only absorbs *intended* drift small enough not to need a
//! baseline refresh. Results record the `BRIDGE_SCALE` they were measured
//! at, and the gate refuses to compare across scales.

use bridge_trace::json::{self, Json};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// One tracked number from a bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name, unique within its bench (e.g. `"sstf.ops_per_s"`).
    pub name: String,
    /// The measured value.
    pub value: f64,
    /// Whether a larger value is an improvement (throughput) or a
    /// regression (latency, message counts).
    pub higher_is_better: bool,
}

impl Metric {
    /// A higher-is-better metric (throughput, speedup, reduction factor).
    pub fn higher(name: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            value,
            higher_is_better: true,
        }
    }

    /// A lower-is-better metric (latency, elapsed time, message count).
    pub fn lower(name: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            value,
            higher_is_better: false,
        }
    }
}

/// The results of one bench at one scale.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResults {
    /// Bench name (the `[[bench]]` target).
    pub bench: String,
    /// The scale the numbers were measured at (`full` or `quick`).
    pub scale: String,
    /// Tracked metrics.
    pub metrics: Vec<Metric>,
}

/// The scale label for the current run (mirrors [`crate::scale`]).
pub fn scale_label() -> &'static str {
    if crate::scale() == 1 {
        "full"
    } else {
        "quick"
    }
}

/// Where result files go: `BENCH_RESULTS_DIR`, or the workspace's
/// `target/bench_results/`.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BENCH_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // CARGO_MANIFEST_DIR is crates/bench; the workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("target")
        .join("bench_results")
}

fn render_bench(out: &mut String, bench: &str, scale: &str, metrics: &[Metric]) {
    out.push_str("{\"bench\": ");
    json::write_str(out, bench);
    out.push_str(", \"scale\": ");
    json::write_str(out, scale);
    out.push_str(", \"metrics\": [");
    for (i, m) in metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("\n  {\"name\": ");
        json::write_str(out, &m.name);
        write!(
            out,
            ", \"value\": {}, \"better\": \"{}\"}}",
            m.value,
            if m.higher_is_better {
                "higher"
            } else {
                "lower"
            }
        )
        .unwrap();
    }
    out.push_str("\n]}");
}

/// Writes `metrics` as `<results_dir>/<bench>.json` for the gate to pick
/// up. Emission failures print a warning instead of failing the bench —
/// the numbers already went to stdout.
pub fn emit(bench: &str, metrics: &[Metric]) {
    let dir = results_dir();
    if let Err(err) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {err}", dir.display());
        return;
    }
    let mut out = String::new();
    render_bench(&mut out, bench, scale_label(), metrics);
    out.push('\n');
    let path = dir.join(format!("{bench}.json"));
    match std::fs::write(&path, out) {
        Ok(()) => println!("\n[bench_results: {}]", path.display()),
        Err(err) => eprintln!("warning: cannot write {}: {err}", path.display()),
    }
}

fn parse_metrics(value: &Json, origin: &Path) -> Result<Vec<Metric>, String> {
    let arr = value
        .get("metrics")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: no metrics array", origin.display()))?;
    let mut metrics = Vec::new();
    for m in arr {
        let name = m
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{}: metric without name", origin.display()))?;
        let value = m
            .get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{}: metric {name} without value", origin.display()))?;
        let better = m.get("better").and_then(Json::as_str).unwrap_or("higher");
        metrics.push(Metric {
            name: name.to_string(),
            value,
            higher_is_better: better == "higher",
        });
    }
    Ok(metrics)
}

fn parse_bench(value: &Json, origin: &Path) -> Result<BenchResults, String> {
    let bench = value
        .get("bench")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{}: no bench name", origin.display()))?
        .to_string();
    let scale = value
        .get("scale")
        .and_then(Json::as_str)
        .unwrap_or("full")
        .to_string();
    Ok(BenchResults {
        bench,
        scale,
        metrics: parse_metrics(value, origin)?,
    })
}

/// Reads every `<bench>.json` in `dir` (the per-bench emission format).
///
/// # Errors
///
/// Fails on unreadable directory or malformed files.
pub fn load_results(dir: &Path) -> Result<Vec<BenchResults>, String> {
    let mut results = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let value = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        results.push(parse_bench(&value, &path)?);
    }
    Ok(results)
}

/// Reads a committed baseline file: `{"benches": [<bench results>...]}`.
///
/// # Errors
///
/// Fails on unreadable or malformed input.
pub fn load_baseline(path: &Path) -> Result<Vec<BenchResults>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let value = json::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let arr = value
        .get("benches")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: no benches array", path.display()))?;
    arr.iter().map(|b| parse_bench(b, path)).collect()
}

/// Renders a baseline file from a set of bench results.
pub fn render_baseline(benches: &[BenchResults]) -> String {
    let mut out = String::from("{\"benches\": [\n");
    for (i, b) in benches.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        render_bench(&mut out, &b.bench, &b.scale, &b.metrics);
    }
    out.push_str("\n]}\n");
    out
}

/// One metric's comparison against the baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// `bench/metric` label.
    pub label: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in the *bad* direction, as a fraction; positive
    /// means worse. (A throughput gain or latency drop is negative.)
    pub worsening: f64,
}

/// Compares current results against a baseline with a relative
/// `tolerance` (0.15 = 15%). Returns `(all deltas, failures)`; failures
/// are regressions beyond tolerance, metrics that disappeared, and scale
/// mismatches.
pub fn compare(
    baseline: &[BenchResults],
    current: &[BenchResults],
    tolerance: f64,
) -> (Vec<Delta>, Vec<String>) {
    let mut deltas = Vec::new();
    let mut failures = Vec::new();
    for base_bench in baseline {
        let Some(cur_bench) = current.iter().find(|c| c.bench == base_bench.bench) else {
            failures.push(format!(
                "bench {} produced no results (expected {} metrics)",
                base_bench.bench,
                base_bench.metrics.len()
            ));
            continue;
        };
        if cur_bench.scale != base_bench.scale {
            failures.push(format!(
                "bench {}: scale mismatch (baseline {}, current {}) — \
                 regenerate the baseline at the CI scale",
                base_bench.bench, base_bench.scale, cur_bench.scale
            ));
            continue;
        }
        for metric in &base_bench.metrics {
            let label = format!("{}/{}", base_bench.bench, metric.name);
            let Some(cur) = cur_bench.metrics.iter().find(|m| m.name == metric.name) else {
                failures.push(format!("{label}: metric disappeared"));
                continue;
            };
            let change = if metric.value.abs() < f64::EPSILON {
                0.0
            } else {
                (cur.value - metric.value) / metric.value.abs()
            };
            let worsening = if metric.higher_is_better {
                -change
            } else {
                change
            };
            if worsening > tolerance {
                failures.push(format!(
                    "{label}: {:.4} -> {:.4} is {:.1}% worse (tolerance {:.0}%)",
                    metric.value,
                    cur.value,
                    worsening * 100.0,
                    tolerance * 100.0
                ));
            }
            deltas.push(Delta {
                label,
                base: metric.value,
                current: cur.value,
                worsening,
            });
        }
    }
    (deltas, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(name: &str, metrics: Vec<Metric>) -> BenchResults {
        BenchResults {
            bench: name.to_string(),
            scale: "quick".to_string(),
            metrics,
        }
    }

    #[test]
    fn roundtrip_through_baseline_format() {
        let benches = vec![
            bench(
                "alpha",
                vec![
                    Metric::higher("ops_per_s", 42.5),
                    Metric::lower("p99_ns", 1.9e7),
                ],
            ),
            bench("beta", vec![Metric::higher("speedup", 3.0)]),
        ];
        let text = render_baseline(&benches);
        let dir = std::env::temp_dir().join("bench_results_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_baseline.json");
        std::fs::write(&path, &text).unwrap();
        assert_eq!(load_baseline(&path).unwrap(), benches);
    }

    #[test]
    fn compare_flags_only_bad_moves() {
        let base = vec![bench(
            "b",
            vec![
                Metric::higher("throughput", 100.0),
                Metric::lower("latency", 100.0),
            ],
        )];
        // Throughput up, latency down: both good, however large.
        let good = vec![bench(
            "b",
            vec![
                Metric::higher("throughput", 250.0),
                Metric::lower("latency", 10.0),
            ],
        )];
        let (deltas, failures) = compare(&base, &good, 0.15);
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| d.worsening < 0.0));

        // Throughput down 20%, latency up 20%: both beyond 15%.
        let bad = vec![bench(
            "b",
            vec![
                Metric::higher("throughput", 80.0),
                Metric::lower("latency", 120.0),
            ],
        )];
        let (_, failures) = compare(&base, &bad, 0.15);
        assert_eq!(failures.len(), 2, "{failures:?}");

        // Within tolerance: passes.
        let meh = vec![bench(
            "b",
            vec![
                Metric::higher("throughput", 90.0),
                Metric::lower("latency", 110.0),
            ],
        )];
        let (_, failures) = compare(&base, &meh, 0.15);
        assert!(failures.is_empty(), "{failures:?}");
    }

    #[test]
    fn compare_fails_on_missing_and_mismatched() {
        let base = vec![
            bench("gone", vec![Metric::higher("x", 1.0)]),
            bench(
                "shrunk",
                vec![Metric::higher("x", 1.0), Metric::higher("y", 2.0)],
            ),
        ];
        let current = vec![bench("shrunk", vec![Metric::higher("x", 1.0)])];
        let (_, failures) = compare(&base, &current, 0.15);
        assert_eq!(failures.len(), 2, "{failures:?}");

        let mut rescaled = vec![bench("gone", vec![Metric::higher("x", 1.0)])];
        rescaled[0].scale = "full".to_string();
        let (_, failures) = compare(&base[..1], &rescaled, 0.15);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("scale mismatch"), "{failures:?}");
    }
}
