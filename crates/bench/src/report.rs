//! Report rendering: markdown tables, ASCII series plots, and the
//! least-squares fits used to compare measured costs against the paper's
//! Table-2 formulas.

use parsim::{RunStats, SimDuration};

/// A simple markdown table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as aligned markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{:-<w$}-|", "", w = w + 1));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One-line summary of a run's kernel-side costs: event count, delivered
/// messages, payload bytes, the event-queue high-water mark, and the
/// engine-level counters (dispatches, serviced syscalls, elided timer
/// wakes, peak ready-set depth). Printed by the benches so batching wins
/// show up as hard counter deltas, not just virtual-time ones.
pub fn kernel_stats(stats: &RunStats) -> String {
    format!(
        "events={} messages={} bytes_sent={} queue_high_water={} \
         dispatches={} syscalls={} wakes_elided={} ready_peak={}",
        stats.events,
        stats.messages,
        count(stats.bytes_sent),
        stats.queue_high_water,
        count(stats.dispatches),
        count(stats.syscalls),
        stats.wakes_elided,
        stats.ready_peak,
    )
}

/// Formats a large count with thousands separators (`12_345_678`).
pub fn count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(c);
    }
    out
}

/// Formats a duration in seconds with one decimal, like the paper's
/// tables.
pub fn secs(d: SimDuration) -> String {
    format!("{:.1} s", d.as_secs_f64())
}

/// Formats a duration in minutes with two decimals (Table 4 style).
pub fn mins(d: SimDuration) -> String {
    format!("{:.2} min", d.as_secs_f64() / 60.0)
}

/// Formats a duration in milliseconds with one decimal (Table 2 style).
pub fn millis(d: SimDuration) -> String {
    format!("{:.1} ms", d.as_millis_f64())
}

/// Least-squares fit of `y = a + b·x`; returns `(a, b, r²)`.
///
/// # Panics
///
/// Panics on fewer than two points or zero x-variance.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    assert!(points.len() >= 2, "fit needs at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "x values are degenerate");
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points.iter().map(|p| (p.1 - (a + b * p.0)).powi(2)).sum();
    let r2 = if ss_tot.abs() < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (a, b, r2)
}

/// A crude ASCII rendering of a (x, y) series, echoing the paper's little
/// records-per-second plots.
///
/// Bars scale against the largest finite positive y; rows whose y is not
/// a finite positive number (or when no such maximum exists — empty or
/// all-negative series) get zero bars, and bars never exceed `width`.
pub fn ascii_series(title: &str, points: &[(f64, f64)], width: usize) -> String {
    let max_y = points
        .iter()
        .map(|p| p.1)
        .filter(|y| y.is_finite() && *y > 0.0)
        .fold(0.0_f64, f64::max);
    let mut out = format!("{title}\n");
    if points.is_empty() {
        out.push_str("  (no data)\n");
        return out;
    }
    for (x, y) in points {
        let bars = if max_y > 0.0 && y.is_finite() && *y > 0.0 {
            (((y / max_y) * width as f64).round() as usize).min(width)
        } else {
            0
        };
        out.push_str(&format!("{x:>6.0} | {:<width$} {y:.1}\n", "#".repeat(bars)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(["p", "time"]);
        t.row(["2", "311.6 s"]).row(["32", "21.6 s"]);
        let s = t.render();
        assert!(s.contains("| 311.6 s |"));
        assert_eq!(s.lines().count(), 4);
        for line in s.lines() {
            assert!(line.starts_with('|') && line.ends_with('|'));
        }
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (1..=5)
            .map(|x| (x as f64, 145.0 + 17.5 * x as f64))
            .collect();
        let (a, b, r2) = linear_fit(&pts);
        assert!((a - 145.0).abs() < 1e-9);
        assert!((b - 17.5).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_handles_noise() {
        let pts = [(1.0, 10.1), (2.0, 19.8), (3.0, 30.2), (4.0, 39.9)];
        let (a, b, r2) = linear_fit(&pts);
        assert!(a.abs() < 1.0);
        assert!((b - 10.0).abs() < 0.2);
        assert!(r2 > 0.999);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(SimDuration::from_millis(21_600)), "21.6 s");
        assert_eq!(mins(SimDuration::from_secs(307)), "5.12 min");
        assert_eq!(millis(SimDuration::from_micros(31_000)), "31.0 ms");
        assert_eq!(count(5), "5");
        assert_eq!(count(1234), "1_234");
        assert_eq!(count(1_234_567), "1_234_567");
    }

    #[test]
    fn kernel_stats_lists_every_counter() {
        let stats = RunStats {
            events: 10,
            messages: 4,
            bytes_sent: 123_456,
            queue_high_water: 7,
            dispatches: 11,
            syscalls: 25,
            wakes_elided: 3,
            ready_peak: 6,
            ..RunStats::default()
        };
        let line = kernel_stats(&stats);
        assert!(line.contains("events=10"));
        assert!(line.contains("messages=4"));
        assert!(line.contains("bytes_sent=123_456"));
        assert!(line.contains("queue_high_water=7"));
        assert!(line.contains("dispatches=11"));
        assert!(line.contains("syscalls=25"));
        assert!(line.contains("wakes_elided=3"));
        assert!(line.contains("ready_peak=6"));
    }

    #[test]
    fn ascii_series_scales_bars() {
        let s = ascii_series("plot", &[(2.0, 10.0), (32.0, 100.0)], 20);
        assert!(s.contains("####################"));
    }

    #[test]
    fn ascii_series_empty_input_is_marked_not_garbage() {
        let s = ascii_series("plot", &[], 20);
        assert_eq!(s, "plot\n  (no data)\n");
    }

    #[test]
    fn ascii_series_all_negative_draws_no_bars() {
        let s = ascii_series("plot", &[(1.0, -5.0), (2.0, -1.0)], 20);
        assert!(
            !s.contains('#'),
            "negative values must not render bars: {s}"
        );
        assert!(s.contains("-5.0") && s.contains("-1.0"));
    }

    #[test]
    fn ascii_series_ignores_non_finite_and_clamps_width() {
        let s = ascii_series(
            "plot",
            &[(1.0, f64::NAN), (2.0, f64::INFINITY), (3.0, 50.0)],
            10,
        );
        // The finite point owns the full width; NaN/inf rows draw nothing.
        for line in s.lines().skip(1) {
            let bars = line.matches('#').count();
            assert!(bars <= 10, "bar overflow in {line:?}");
        }
        assert!(s.lines().nth(3).unwrap().contains("##########"));
        assert!(!s.lines().nth(1).unwrap().contains('#'));
        assert!(!s.lines().nth(2).unwrap().contains('#'));
    }
}
