//! Synthetic workloads: block-sized records with uniformly shuffled keys,
//! standing in for the paper's 10 MB experiment files (no trace data from
//! 1988 survives; the paper's records are opaque block-sized units, so a
//! seeded uniform shuffle exercises the same code paths).

use bridge_tools::KEY_LEN;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Bytes of payload in each generated record (past the key).
pub const RECORD_BODY: usize = 120;

/// Generates `n` records whose leading [`KEY_LEN`]-byte keys are a seeded
/// shuffle of `0..n` (every key distinct — worst case for a merge sort,
/// no early-out on equal keys).
pub fn records(n: u64, seed: u64) -> Vec<Vec<u8>> {
    let mut keys: Vec<u64> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..keys.len()).rev() {
        let j = rng.random_range(0..=i);
        keys.swap(i, j);
    }
    keys.into_iter().map(|k| record_with_key(k, seed)).collect()
}

/// One record with the given key and a deterministic body.
pub fn record_with_key(key: u64, seed: u64) -> Vec<u8> {
    let mut data = vec![0u8; KEY_LEN + RECORD_BODY];
    data[..KEY_LEN].copy_from_slice(&key.to_be_bytes());
    for (i, b) in data.iter_mut().enumerate().skip(KEY_LEN) {
        *b = (key
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(seed)
            .wrapping_add(i as u64)
            % 251) as u8;
    }
    data
}

/// Text-ish records (fixed 80-byte lines) for the filter/grep workloads.
pub fn text_records(n: u64, needle_every: u64, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut line = format!(
                "log entry {i:08} level={} msg=routine-operation code={:04x}",
                if i % 7 == 0 { "WARN" } else { "INFO" },
                rng.random_range(0..0xffffu32),
            );
            if needle_every > 0 && i % needle_every == 0 {
                line.push_str(" NEEDLE");
            }
            let mut bytes = line.into_bytes();
            bytes.resize(80, b' ');
            // 12 lines of 80 bytes per 960-byte block.
            let mut block = Vec::with_capacity(960);
            for _ in 0..12 {
                block.extend_from_slice(&bytes);
            }
            block
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn records_have_distinct_shuffled_keys() {
        let recs = records(100, 42);
        assert_eq!(recs.len(), 100);
        let keys: HashSet<u64> = recs
            .iter()
            .map(|r| u64::from_be_bytes(r[..8].try_into().unwrap()))
            .collect();
        assert_eq!(keys.len(), 100, "all keys distinct");
        // Not already sorted (astronomically unlikely for a real shuffle).
        let in_order: Vec<u64> = recs
            .iter()
            .map(|r| u64::from_be_bytes(r[..8].try_into().unwrap()))
            .collect();
        let mut sorted = in_order.clone();
        sorted.sort_unstable();
        assert_ne!(in_order, sorted);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(records(50, 7), records(50, 7));
        assert_ne!(records(50, 7), records(50, 8));
    }

    #[test]
    fn text_records_embed_needles() {
        let recs = text_records(10, 3, 1);
        assert_eq!(recs.len(), 10);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.len(), 960);
            let has = r.windows(6).any(|w| w == b"NEEDLE");
            assert_eq!(has, i % 3 == 0, "record {i}");
        }
    }
}
