//! # bridge-bench — reproduction harnesses
//!
//! Shared machinery for the benchmark binaries that regenerate every table
//! and figure of the Bridge paper (see `DESIGN.md` §4 for the experiment
//! index): workload generation, measurement plumbing, least-squares fits,
//! and markdown table rendering. The binaries live under `benches/` and
//! run with `cargo bench -p bridge-bench --bench <name>`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod profile;
pub mod report;
pub mod results;
pub mod workload;

use bridge_core::{BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec};
use parsim::{Ctx, SimDuration};

/// The paper's experiment file: 10 MB of block-sized records.
pub const PAPER_FILE_BLOCKS: u64 = 10 * 1024;

/// The processor counts in the paper's Tables 3 and 4.
pub const PAPER_PROCESSORS: [u32; 5] = [2, 4, 8, 16, 32];

/// The extended processor counts past the paper's largest machine, used
/// by the >32-processor scaling curves (EXPERIMENTS.md §A12) and the
/// engine ablation. Runs at this scale are only tractable on the
/// run-to-completion engine.
pub const SCALE_PROCESSORS: [u32; 4] = [32, 64, 256, 1024];

/// Scale factor for a bench run: `full` replays the paper's sizes,
/// `quick` (set `BRIDGE_SCALE=quick`) shrinks the file 8× for smoke runs.
pub fn scale() -> u64 {
    match std::env::var("BRIDGE_SCALE").as_deref() {
        Ok("quick") => 8,
        _ => 1,
    }
}

/// File size in blocks for the current scale.
pub fn file_blocks() -> u64 {
    PAPER_FILE_BLOCKS / scale()
}

/// Builds the paper's machine at breadth `p`.
pub fn paper_machine(p: u32) -> (parsim::Simulation, BridgeMachine) {
    BridgeMachine::build(&BridgeConfig::paper(p))
}

/// Builds the paper's machine at breadth `p`, pinned to `engine`. The
/// engine-equivalence tests and the `ablate_sim_scale` bench run the same
/// machine on both engines and assert bit-identical results.
pub fn paper_machine_on(p: u32, engine: parsim::Engine) -> (parsim::Simulation, BridgeMachine) {
    BridgeMachine::build(&BridgeConfig::paper(p).with_engine(engine))
}

/// Builds the paper's machine at breadth `p` with `tracer` installed.
/// Tracing is observation-only: the traced machine reproduces the
/// untraced one's virtual times and kernel counters exactly.
pub fn paper_machine_traced(
    p: u32,
    tracer: parsim::TracerHandle,
) -> (parsim::Simulation, BridgeMachine) {
    let mut config = BridgeConfig::paper(p);
    config.tracer = Some(tracer);
    BridgeMachine::build(&config)
}

/// Writes `blocks` key-shuffled records into a fresh default-placement
/// file (setup time is excluded by measuring around, not through, this).
pub fn write_workload(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    blocks: u64,
    seed: u64,
) -> BridgeFileId {
    let file = bridge
        .create(ctx, CreateSpec::default())
        .expect("create workload file");
    for record in workload::records(blocks, seed) {
        bridge.seq_write(ctx, file, record).expect("write workload");
    }
    file
}

/// Records/second given a count and a virtual duration.
pub fn records_per_second(records: u64, elapsed: SimDuration) -> f64 {
    if elapsed.is_zero() {
        return f64::INFINITY;
    }
    records as f64 / elapsed.as_secs_f64()
}

/// Parallel speedup relative to a baseline duration.
pub fn speedup(baseline: SimDuration, now: SimDuration) -> f64 {
    baseline.as_secs_f64() / now.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_full() {
        // (Environment-dependent, but the default path must be 1.)
        if std::env::var("BRIDGE_SCALE").is_err() {
            assert_eq!(scale(), 1);
            assert_eq!(file_blocks(), 10 * 1024);
        }
    }

    #[test]
    fn rates_and_speedups() {
        assert!((records_per_second(100, SimDuration::from_secs(2)) - 50.0).abs() < 1e-9);
        assert!(
            (speedup(SimDuration::from_secs(10), SimDuration::from_secs(2)) - 5.0).abs() < 1e-9
        );
    }
}
