//! Tracing must be observation-only: with a collector installed, every
//! [`parsim::RunStats`] counter and the virtual end time must match the
//! untraced run bit for bit, on both a Table-2-style basic-operation
//! workload and a Table-3-style copy workload.

use bridge_bench::{paper_machine, paper_machine_traced, write_workload};
use bridge_core::{BridgeClient, CreateSpec};
use bridge_tools::{copy, ToolOptions};
use bridge_trace::TraceCollector;
use parsim::{RunStats, SimDuration};

/// Runs `f` on the paper machine at breadth `p`, with or without the
/// trace collector, returning the workload's virtual duration and the
/// kernel's run counters.
fn measure<R: Send + 'static>(
    p: u32,
    traced: bool,
    f: impl FnOnce(&mut parsim::Ctx, &mut BridgeClient) -> R + Send + 'static,
) -> (R, RunStats, u64) {
    let collector = traced.then(TraceCollector::install);
    let (mut sim, machine) = match &collector {
        Some(c) => paper_machine_traced(p, c.as_tracer()),
        None => paper_machine(p),
    };
    let server = machine.server;
    let r = sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        f(ctx, &mut bridge)
    });
    let spans = collector.map_or(0, |c| c.snapshot().spans.len() as u64);
    (r, sim.stats(), spans)
}

fn table2_style_ops(ctx: &mut parsim::Ctx, bridge: &mut BridgeClient) -> SimDuration {
    let t0 = ctx.now();
    let file = bridge.create(ctx, CreateSpec::default()).expect("create");
    for i in 0..96u64 {
        bridge
            .seq_write(ctx, file, bridge_bench::workload::record_with_key(i, 1))
            .expect("write");
    }
    bridge.open(ctx, file).expect("open");
    let mut read = 0u64;
    while bridge.seq_read(ctx, file).expect("read").is_some() {
        read += 1;
    }
    assert_eq!(read, 96);
    bridge.delete(ctx, file).expect("delete");
    ctx.now() - t0
}

fn table3_style_copy(ctx: &mut parsim::Ctx, bridge: &mut BridgeClient) -> SimDuration {
    let src = write_workload(ctx, bridge, 256, 42);
    let (_, stats) = copy(ctx, bridge, src, &ToolOptions::default()).expect("copy");
    stats.elapsed
}

#[test]
fn tracing_does_not_change_basic_op_timing() {
    let (plain_t, plain_stats, _) = measure(4, false, table2_style_ops);
    let (traced_t, traced_stats, spans) = measure(4, true, table2_style_ops);
    assert_eq!(plain_t, traced_t, "virtual op timing changed under tracing");
    assert_eq!(plain_stats, traced_stats, "kernel counters changed");
    assert!(spans > 0, "the traced run recorded no spans");
}

#[test]
fn tracing_does_not_change_copy_timing() {
    for p in [2u32, 4] {
        let (plain_t, plain_stats, _) = measure(p, false, table3_style_copy);
        let (traced_t, traced_stats, spans) = measure(p, true, table3_style_copy);
        assert_eq!(plain_t, traced_t, "p={p}: copy time changed under tracing");
        assert_eq!(plain_stats, traced_stats, "p={p}: kernel counters changed");
        assert!(spans > 0, "p={p}: the traced run recorded no spans");
    }
}

/// Building a causal profile is pure analysis over the collected trace:
/// the profiled run's kernel counters stay bit-identical to the untraced
/// run's, the attribution partitions every op's latency exactly, and the
/// critical path lands on the kernel's own end time.
#[test]
fn profiling_reconciles_against_untraced_run() {
    let p = 4u32;
    let (_, plain_stats, _) = measure(p, false, table3_style_copy);

    let collector = TraceCollector::install();
    let (mut sim, machine) = paper_machine_traced(p, collector.as_tracer());
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        table3_style_copy(ctx, &mut bridge)
    });
    let traced_stats = sim.stats();
    assert_eq!(plain_stats, traced_stats, "profiled run counters changed");

    let profile = bridge_trace::profile(&collector.take());
    assert!(!profile.ops.is_empty(), "copy run produced no client ops");
    for op in &profile.ops {
        assert_eq!(
            op.breakdown.total(),
            op.latency_nanos(),
            "op {} breakdown must partition its latency",
            op.id
        );
    }
    let cp = &profile.critical_path;
    assert_eq!(cp.breakdown.total(), cp.makespan_nanos);
    assert_eq!(cp.makespan_nanos, traced_stats.end_time.as_nanos());
    assert!(profile.worst_untraced_fraction() <= 0.05);
}
