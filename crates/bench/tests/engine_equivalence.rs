//! The run-to-completion fiber engine and the threaded engine must be
//! interchangeable on the full Bridge machine: identical virtual phase
//! times, identical [`parsim::RunStats`], identical trace spans, and
//! identical read-back bytes under an active fault plan with retries.
//! These pin the ISSUE's bit-for-bit guarantee at the system level, on
//! top of the kernel-level `engine_equiv` suite in parsim.

use bridge_bench::{paper_machine_on, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, RetryPolicy};
use bridge_tools::{copy, ToolOptions};
use bridge_trace::TraceCollector;
use parsim::{Engine, FaultPlan, MsgFaults, RunStats, SimDuration};

const ENGINES: [Engine; 2] = [Engine::RunToCompletion, Engine::Threaded];

/// Copy-workload measurement on the plain paper machine at breadth `p`.
fn measure_copy(p: u32, engine: Engine, blocks: u64) -> (SimDuration, RunStats) {
    let (mut sim, machine) = paper_machine_on(p, engine);
    let server = machine.server;
    let elapsed = sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, blocks, 42);
        let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
        assert_eq!(stats.blocks, blocks);
        stats.elapsed
    });
    (elapsed, sim.stats())
}

#[test]
fn copy_is_bit_identical_across_engines() {
    for p in [2u32, 4, 8] {
        let fiber = measure_copy(p, Engine::RunToCompletion, 128);
        let thread = measure_copy(p, Engine::Threaded, 128);
        assert_eq!(fiber, thread, "p={p}: copy diverged across engines");
    }
}

#[test]
fn trace_spans_are_bit_identical_across_engines() {
    let traces: Vec<_> = ENGINES
        .map(|engine| {
            let collector = TraceCollector::install();
            let mut config = BridgeConfig::paper(4).with_engine(engine);
            config.tracer = Some(collector.as_tracer());
            let (mut sim, machine) = BridgeMachine::build(&config);
            let server = machine.server;
            sim.block_on(machine.frontend, "bench", move |ctx| {
                let mut bridge = BridgeClient::new(server);
                let src = write_workload(ctx, &mut bridge, 96, 42);
                copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
            });
            (collector.take(), sim.stats())
        })
        .into_iter()
        .collect();
    let (fiber_trace, fiber_stats) = &traces[0];
    let (thread_trace, thread_stats) = &traces[1];
    assert!(
        !fiber_trace.spans.is_empty(),
        "traced run recorded no spans"
    );
    assert_eq!(
        fiber_trace, thread_trace,
        "trace data diverged across engines"
    );
    assert_eq!(fiber_stats, thread_stats, "kernel counters diverged");
}

#[test]
fn chaos_run_is_bit_identical_across_engines() {
    let plan = FaultPlan {
        seed: 0xFA,
        msg: MsgFaults {
            drop_per_mille: 120,
            dup_per_mille: 80,
            delay_per_mille: 80,
            delay_max: SimDuration::from_millis(2),
            max_consecutive_drops: 4,
        },
        ..FaultPlan::none()
    };
    let runs: Vec<_> = ENGINES
        .map(|engine| {
            let mut config = BridgeConfig::paper(4)
                .with_engine(engine)
                .with_faults(plan.clone());
            config.server.lfs_retry = RetryPolicy::standard();
            let (mut sim, machine) = BridgeMachine::build(&config);
            let server = machine.server;
            let contents = sim.block_on(machine.frontend, "bench", move |ctx| {
                let mut bridge = BridgeClient::with_retry(server, RetryPolicy::standard());
                let file = write_workload(ctx, &mut bridge, 64, 7);
                bridge.open(ctx, file).expect("open");
                let mut bytes = Vec::new();
                while let Some(rec) = bridge.seq_read(ctx, file).expect("read") {
                    bytes.extend_from_slice(&rec);
                }
                bytes
            });
            (contents, sim.stats())
        })
        .into_iter()
        .collect();
    assert!(!runs[0].0.is_empty(), "chaos run read nothing back");
    assert_eq!(runs[0], runs[1], "chaos transcript diverged across engines");
}
