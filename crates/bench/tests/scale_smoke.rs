//! CI smoke for the scaling claim: a p = 256 paper machine must build and
//! copy a file within a fixed host wall-clock budget. Before the
//! run-to-completion engine this took minutes (one OS thread per simulated
//! process); now it is sub-second in release builds. The budget is
//! generous — it exists to catch an order-of-magnitude regression (e.g.
//! the engine silently falling back to threaded), not to benchmark; CI
//! runs this in release with a tighter `BRIDGE_SMOKE_BUDGET_SECS`.

use bridge_bench::{paper_machine_on, write_workload};
use bridge_core::BridgeClient;
use bridge_tools::{copy, ToolOptions};
use parsim::Engine;
use std::time::{Duration, Instant};

const BLOCKS: u64 = 512;

fn budget() -> Duration {
    let secs = std::env::var("BRIDGE_SMOKE_BUDGET_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(120);
    Duration::from_secs(secs)
}

#[test]
fn p256_copy_fits_the_wall_clock_budget() {
    let budget = budget();
    let t0 = Instant::now();
    let (mut sim, machine) = paper_machine_on(256, Engine::auto());
    assert_eq!(
        sim.engine(),
        Engine::RunToCompletion,
        "fiber engine unavailable on this host — the scaling claim needs it"
    );
    let server = machine.server;
    let elapsed = sim.block_on(machine.frontend, "smoke", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, BLOCKS, 42);
        let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
        assert_eq!(stats.blocks, BLOCKS);
        stats.elapsed
    });
    let wall = t0.elapsed();
    assert!(!elapsed.is_zero(), "copy advanced no virtual time");
    assert!(
        wall <= budget,
        "p=256 copy of {BLOCKS} blocks took {wall:.1?} against a {budget:.0?} budget"
    );
}
