//! The fault layer must be pay-for-what-you-use: a machine built with an
//! explicit [`parsim::FaultPlan::none`] — and one with retries armed but
//! no faults — must reproduce the plain machine's [`parsim::RunStats`]
//! counters and virtual timestamps bit for bit. The empty plan takes the
//! fast path (no PRNG draws, no delivery rewrites), so nothing about the
//! schedule may shift.

use bridge_bench::write_workload;
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, RetryPolicy};
use parsim::{FaultPlan, RunStats, SimDuration};

const BREADTH: u32 = 4;
const BLOCKS: u64 = 192;

/// Write-then-read-back on the paper machine under `config`, returning
/// the workload's virtual phase times and the kernel's run counters.
fn measure(config: &BridgeConfig, retry: RetryPolicy) -> (SimDuration, SimDuration, RunStats) {
    let (mut sim, machine) = BridgeMachine::build(config);
    let server = machine.server;
    let (write, read) = sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::with_retry(server, retry);
        let t0 = ctx.now();
        let file = write_workload(ctx, &mut bridge, BLOCKS, 42);
        let write = ctx.now() - t0;
        bridge.open(ctx, file).expect("open");
        let t0 = ctx.now();
        let mut read = 0u64;
        while bridge.seq_read(ctx, file).expect("read").is_some() {
            read += 1;
        }
        assert_eq!(read, BLOCKS, "every block read back");
        (write, ctx.now() - t0)
    });
    (write, read, sim.stats())
}

/// Zeroes [`RunStats::wakes_elided`], the one counter this suite must not
/// compare: arming a retry timeout that never fires parks a wake event the
/// scheduler later discards clock-free. The *simulation* is untouched —
/// every other counter and every timestamp stays bit-identical, which the
/// assertions below still check — but the engine-cost counter honestly
/// reports the elided wakes, so an armed run legitimately differs there.
fn sans_elided(
    (write, read, stats): (SimDuration, SimDuration, RunStats),
) -> (SimDuration, SimDuration, RunStats) {
    (
        write,
        read,
        RunStats {
            wakes_elided: 0,
            ..stats
        },
    )
}

#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    let plain = measure(&BridgeConfig::paper(BREADTH), RetryPolicy::none());
    let with_empty_plan = measure(
        &BridgeConfig::paper(BREADTH).with_faults(FaultPlan::none()),
        RetryPolicy::none(),
    );
    assert_eq!(
        sans_elided(plain),
        sans_elided(with_empty_plan),
        "FaultPlan::none() changed timings or kernel counters"
    );
}

#[test]
fn arming_retries_without_faults_is_bit_identical() {
    let plain = measure(&BridgeConfig::paper(BREADTH), RetryPolicy::none());
    let mut armed_config = BridgeConfig::paper(BREADTH);
    armed_config.server.lfs_retry = RetryPolicy::standard();
    let armed = measure(&armed_config, RetryPolicy::standard());
    assert_eq!(
        sans_elided(plain),
        sans_elided(armed),
        "idle retry timeouts changed timings or kernel counters"
    );
    // The un-fired timeouts do surface in exactly one place: the armed
    // run's elided-wake counter.
    assert!(
        armed.2.wakes_elided > 0,
        "armed retries should park (and elide) timeout wakes"
    );
    assert_eq!(plain.2.wakes_elided, 0, "no timeouts armed, none elided");
}
