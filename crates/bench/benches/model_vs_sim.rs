//! The paper's closing claim, checked: "We have developed an …
//! mathematical analysis of the merge sort algorithm … The results we
//! obtain for the constants on the Butterfly agree quite nicely with
//! empirical data." Here: the `bridge-model` predictions vs the simulator,
//! for the copy tool and both sort phases.

use bridge_bench::report::Table;
use bridge_bench::{file_blocks, paper_machine, write_workload};
use bridge_core::BridgeClient;
use bridge_model::{copy_s, max_merge_parallelism, sort_prediction, Constants};
use bridge_tools::{copy, sort, SortOptions, ToolOptions};

fn pct_err(predicted: f64, measured: f64) -> f64 {
    (predicted - measured).abs() / measured * 100.0
}

fn main() {
    let n = file_blocks();
    let c = Constants::reproduction();
    println!("## Model vs simulation ({n} blocks; constants from the Table-2 run)\n");

    println!("### Copy tool");
    let mut t = Table::new(["p", "model", "simulated", "error"]);
    for &p in &[2u32, 8, 32] {
        let (mut sim, machine) = paper_machine(p);
        let server = machine.server;
        let measured = sim.block_on(machine.frontend, "bench", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let src = write_workload(ctx, &mut bridge, n, 3);
            let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
            stats.elapsed.as_secs_f64()
        });
        let predicted = copy_s(&c, n, p);
        t.row([
            p.to_string(),
            format!("{predicted:.1} s"),
            format!("{measured:.1} s"),
            format!("{:.0}%", pct_err(predicted, measured)),
        ]);
    }
    t.print();

    println!("\n### Merge sort (local / merge phases)");
    let mut t = Table::new([
        "p",
        "model local",
        "sim local",
        "model merge",
        "sim merge",
        "local err",
        "merge err",
    ]);
    for &p in &[2u32, 8, 32] {
        let (mut sim, machine) = paper_machine(p);
        let server = machine.server;
        let stats = sim.block_on(machine.frontend, "bench", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let src = write_workload(ctx, &mut bridge, n, 3);
            let (_, stats) = sort(ctx, &mut bridge, src, &SortOptions::default()).expect("sort");
            stats
        });
        let pred = sort_prediction(&c, n, p, 512);
        let sim_local = stats.local_sort.as_secs_f64();
        let sim_merge = stats.merge.as_secs_f64();
        t.row([
            p.to_string(),
            format!("{:.0} s", pred.local_s),
            format!("{sim_local:.0} s"),
            format!("{:.0} s", pred.merge_s),
            format!("{sim_merge:.0} s"),
            format!("{:.0}%", pct_err(pred.local_s, sim_local)),
            format!("{:.0}%", pct_err(pred.merge_s, sim_merge)),
        ]);
    }
    t.print();

    println!(
        "\n### Maximum merge parallelism (the number the paper's [17] derives)\n\
         reproduction constants: {:.0} readers before the token ring saturates\n\
         paper-like constants:   {:.0} — \"32 nodes is clearly well below the point\n\
         at which the merge phase … would be unable to take advantage of\n\
         additional parallelism.\"",
        max_merge_parallelism(&c),
        max_merge_parallelism(&Constants::paper()),
    );
}
