//! Ablation A7 — write-behind (paper §6).
//!
//! "Assuming that the local file systems perform read-ahead and
//! write-behind, virtually any program that uses the naive interface will
//! be compute- or communication-bound." The prototype's EFS is
//! write-through; this ablation turns on a bounded write-behind queue per
//! disk and measures what the assumption buys.

use bridge_bench::profile::Profiler;
use bridge_bench::report::Table;
use bridge_bench::{records_per_second, scale, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine};
use bridge_tools::{copy, sort, SortOptions, ToolOptions};
use parsim::{SimDuration, TracerHandle};

struct Run {
    write: SimDuration,
    read: SimDuration,
    copy: SimDuration,
    sort_total: SimDuration,
}

fn measure(p: u32, blocks: u64, write_behind: Option<u32>, tracer: Option<TracerHandle>) -> Run {
    let mut config = BridgeConfig::paper(p);
    config.write_behind = write_behind;
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let t0 = ctx.now();
        let file = write_workload(ctx, &mut bridge, blocks, 8);
        let write = ctx.now() - t0;

        bridge.open(ctx, file).expect("open");
        let t0 = ctx.now();
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        let read = ctx.now() - t0;

        let (copy_file, cstats) =
            copy(ctx, &mut bridge, file, &ToolOptions::default()).expect("copy");
        bridge.delete(ctx, copy_file).expect("delete");

        let (sorted, sstats) = sort(ctx, &mut bridge, file, &SortOptions::default()).expect("sort");
        bridge.delete(ctx, sorted).expect("delete");

        Run {
            write,
            read,
            copy: cstats.elapsed,
            sort_total: sstats.total,
        }
    })
}

fn main() {
    let p = 8u32;
    let blocks = 1024 / scale();
    println!("## Ablation A7 — write-behind at the LFS (p = {p}, {blocks} blocks)\n");

    // Under --profile, attribute both regimes for comparison.
    let mut profiler = Profiler::new("ablate_write_behind");
    let tracer = profiler.arm("write_through_p8");
    let through = measure(p, blocks, None, tracer);
    profiler.capture();
    let tracer = profiler.arm("write_behind_p8_depth8");
    let behind = measure(p, blocks, Some(8), tracer);
    profiler.capture();

    let mut t = Table::new([
        "workload",
        "write-through",
        "write-behind (depth 8)",
        "gain",
    ]);
    for (name, a, b) in [
        ("naive sequential write", through.write, behind.write),
        ("naive sequential read", through.read, behind.read),
        ("copy tool", through.copy, behind.copy),
        ("sort tool (total)", through.sort_total, behind.sort_total),
    ] {
        t.row([
            name.to_string(),
            format!(
                "{:.1} s ({:.0} rec/s)",
                a.as_secs_f64(),
                records_per_second(blocks, a)
            ),
            format!(
                "{:.1} s ({:.0} rec/s)",
                b.as_secs_f64(),
                records_per_second(blocks, b)
            ),
            format!("{:.2}x", a.as_secs_f64() / b.as_secs_f64()),
        ]);
    }
    t.print();

    println!(
        "\nWrite-behind overlaps the EFS append's two media writes (data block and\n\
         tail-pointer fix-up) with the request path, so the client sees the CPU and\n\
         messaging cost until the queue's backpressure engages — the paper's\n\
         compute/communication-bound regime. Workloads that alternate reads with\n\
         writes on the same spindle (copy, sort) gain less: their reads queue\n\
         behind the deferred writes."
    );
}
