//! Ablation A14 — what machine-wide atomicity costs: the 2PC
//! coordinator on top of the per-LFS WAL, against the WAL-only machine
//! it extends (p = 4, Wren disks).
//!
//! Two regimes of the same machine:
//!
//! 1. **wal** — `BridgeConfig::with_wal()`: per-instance crash
//!    consistency (the A13a baseline), Create/Delete fan out directly.
//! 2. **2pc** — `BridgeConfig::with_2pc()`: every multi-instance
//!    mutation runs presumed-abort two-phase commit — a prepare round
//!    into the participants' WAL rings, then BEGIN and COMMIT records
//!    on the coordinator's decision log, then the decide round.
//!
//! Measured twice:
//!
//! * **create/delete churn** — a single client creating and deleting
//!   mirrored files as fast as the server answers. The worst case: the
//!   op *is* the commit, so the prepare round and both decision-log
//!   writes land on the latency path of every request. Recorded, not
//!   gated — this prices the protocol itself.
//! * **concurrent** — six writers pipelining appends straight at the
//!   instances while a churn client creates and deletes through the
//!   server. The realistic mix: appends never touch the coordinator,
//!   and the participants' prepare records ride the same group commits
//!   as the append intents. Gated at ≤ 1.15x over the WAL machine.

use bridge_bench::report::{secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{file_blocks, records_per_second};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, Redundancy};
use bridge_efs::{LfsClient, LfsFileId, LfsOp};
use bridge_tools::{run_workers, ToolOptions, WorkerSpec};
use bytes::Bytes;
use parsim::SimDuration;
use std::collections::VecDeque;

const BREADTH: u32 = 4;
const WRITERS: usize = 6;
/// In-flight ops each writer keeps pipelined at its instance.
const WINDOW: usize = 8;
/// Create+delete cycles in the churn phases.
const CHURN_OPS: u64 = 24;

fn stream_blocks() -> u64 {
    file_blocks() / 32
}

/// One create/delete cycle: a mirrored file (every instance holds a
/// column, so the mutation is machine-wide) with two appended blocks
/// (the delete frees something on every node).
fn churn_cycle(ctx: &mut parsim::Ctx, bridge: &mut BridgeClient) {
    let file = bridge
        .create(
            ctx,
            CreateSpec {
                redundancy: Redundancy::Mirror,
                ..CreateSpec::default()
            },
        )
        .expect("create");
    for b in 0..2 {
        bridge
            .seq_write(ctx, file, vec![0x2C; 256])
            .map(|n| assert_eq!(n, b))
            .expect("append");
    }
    bridge.delete(ctx, file).expect("delete");
}

struct Run {
    /// One client, `CHURN_OPS` create/delete cycles, nothing else.
    churn: SimDuration,
    /// Six pipelined writers + the churn client: total wall time until
    /// every worker finishes.
    concurrent: SimDuration,
}

fn measure(two_pc: bool) -> Run {
    let base = BridgeConfig::paper(BREADTH);
    let config = if two_pc {
        base.with_2pc()
    } else {
        base.with_wal()
    };
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let frontend = machine.frontend;
    let lfs: Vec<(parsim::ProcId, parsim::NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let t0 = ctx.now();
        for _ in 0..CHURN_OPS {
            churn_cycle(ctx, &mut bridge);
        }
        let churn = ctx.now() - t0;

        // The concurrent phase: the append traffic from ablate_wal's
        // six writers, plus a seventh worker churning create/delete
        // through the server. Group commit folds the 2PC prepare
        // records into the same commit batches as the append intents.
        let mut specs: Vec<WorkerSpec<u64>> = (0..WRITERS)
            .map(|w| {
                let (proc, node) = lfs[w % lfs.len()];
                WorkerSpec {
                    node,
                    name: format!("writer{w}"),
                    run: Box::new(move |c| {
                        let mut client = LfsClient::new();
                        let file = LfsFileId(0xA140 + w as u32);
                        client
                            .call(c, proc, LfsOp::Create { file })
                            .expect("create");
                        let mut inflight = VecDeque::new();
                        for i in 0..stream_blocks() {
                            let data = Bytes::from(vec![(w as u8) << 4 | (i as u8 & 0xf); 1000]);
                            let op = LfsOp::Write {
                                file,
                                block: i as u32,
                                data,
                                hint: None,
                            };
                            inflight.push_back(client.send(c, proc, op));
                            if inflight.len() >= WINDOW {
                                let id = inflight.pop_front().expect("nonempty");
                                client.wait(c, proc, id).expect("write");
                            }
                        }
                        while let Some(id) = inflight.pop_front() {
                            client.wait(c, proc, id).expect("write");
                        }
                        Ok(stream_blocks())
                    }),
                }
            })
            .collect();
        specs.push(WorkerSpec {
            node: frontend,
            name: "churn".into(),
            run: Box::new(move |c| {
                let mut bridge = BridgeClient::new(server);
                for _ in 0..CHURN_OPS {
                    churn_cycle(c, &mut bridge);
                }
                Ok(CHURN_OPS)
            }),
        });
        let t0 = ctx.now();
        let done = run_workers(ctx, &ToolOptions::default(), specs).expect("workers");
        let concurrent = ctx.now() - t0;
        assert_eq!(
            done.iter().sum::<u64>(),
            WRITERS as u64 * stream_blocks() + CHURN_OPS
        );

        Run { churn, concurrent }
    })
}

fn main() {
    println!(
        "## Ablation A14 — 2PC commit overhead (p = {BREADTH}, {CHURN_OPS} cycles \
         + {WRITERS}x{} blocks)\n",
        stream_blocks()
    );

    let wal = measure(false);
    let two_pc = measure(true);

    let mut t = Table::new(["workload", "wal only", "2pc"]);
    for (name, pick) in [
        (
            "create/delete churn",
            &(|r: &Run| r.churn) as &dyn Fn(&Run) -> SimDuration,
        ),
        ("concurrent mix", &|r: &Run| r.concurrent),
    ] {
        t.row([name.to_string(), secs(pick(&wal)), secs(pick(&two_pc))]);
    }
    t.print();

    let churn_overhead = two_pc.churn.as_secs_f64() / wal.churn.as_secs_f64();
    let concurrent_overhead = two_pc.concurrent.as_secs_f64() / wal.concurrent.as_secs_f64();

    // The acceptance gate: under group commit, machine-wide atomicity
    // must cost the realistic mix no more than 15%.
    assert!(
        concurrent_overhead <= 1.15,
        "2PC concurrent overhead {concurrent_overhead:.3}x exceeds the 1.15x budget"
    );

    println!(
        "\nchurn overhead: {churn_overhead:.2}x; concurrent overhead: \
         {concurrent_overhead:.2}x (budget 1.15x)"
    );

    emit(
        "ablate_2pc",
        &[
            Metric::higher(
                "wal.churn_ops_per_s",
                records_per_second(CHURN_OPS, wal.churn),
            ),
            Metric::higher(
                "two_pc.churn_ops_per_s",
                records_per_second(CHURN_OPS, two_pc.churn),
            ),
            Metric::lower("two_pc.churn_overhead", churn_overhead),
            Metric::lower("two_pc.concurrent_overhead", concurrent_overhead),
        ],
    );
}
