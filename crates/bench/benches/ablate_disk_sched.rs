//! Disk-scheduling ablation: Fifo versus Sstf versus CScan under
//! concurrent multi-client load on a seek-sensitive disk.
//!
//! The paper's flat 15 ms Wren profile makes every positioning cost the
//! same, so request order cannot matter; this harness instead uses a
//! travel-dominated seek curve on a 1024-track platter — 2 ms settle,
//! 38.4 us per track — calibrated so the *average* random seek still
//! lands near the flat profile's 15 ms while a full stroke costs ~41 ms.
//! The LFS gets a link cache big enough to hold every block's link, so
//! requests cost one media access each and the ablation isolates head
//! scheduling from metadata-cache pressure.
//!
//! Twelve open-loop clients offer the LFS a combined ~50 ops/s — more
//! than Fifo's measured ~42 ops/s service capacity on this platter, but
//! comfortably within what the disk-aware policies sustain. Each client
//! paces sends on a fixed jittered period regardless of replies, drawing
//! a deterministic zipf-like file mix (rank r with weight 1/(r+1); ranks
//! scattered across the platter so hot files are not accidentally
//! adjacent) and an 80/20 read/overwrite split. Under Fifo the backlog
//! grows for the whole run and tail latency stretches into seconds;
//! Sstf/CScan keep the queue short. Per-operation round-trip latency is
//! traced client-side (`sched.op` spans), so throughput and p50/p99 come
//! from the same trace histograms `bridge-trace` aggregates; queue-wait
//! and depth come from the server's `lfs.queue_wait` spans.

use bridge_bench::profile::Profiler;
use bridge_bench::report::{count, secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{records_per_second, scale};
use bridge_efs::{spawn_lfs_sched, Efs, EfsConfig, LfsClient, LfsData, LfsFileId, LfsOp};
use bridge_trace::{Metrics, TraceCollector};
use parsim::{SimConfig, SimDuration, SimTime, Simulation, UniformLatency};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simdisk::{DiskGeometry, DiskProfile, SchedConfig, SchedPolicy, SeekCurve, SimDisk};
use std::sync::mpsc;

const CLIENTS: u32 = 12;
const FILES: u32 = 16;
const FILE_BLOCKS: u32 = 416;

/// Mean inter-send period per client: 12 clients at one op per 240 ms
/// offer ~50 ops/s combined — past Fifo's capacity on this platter,
/// within Sstf's and CScan's.
const SEND_PERIOD: SimDuration = SimDuration::from_millis(240);

/// Zipf rank -> file index: a fixed scatter so the hottest files sit on
/// far-apart tracks (allocation is sequential in creation order).
const RANK_TO_FILE: [u32; FILES as usize] = [9, 2, 14, 5, 0, 11, 7, 13, 3, 10, 1, 15, 6, 12, 4, 8];

fn ops_per_client() -> u64 {
    256 / scale()
}

/// The bench disk: 1024 tracks of 8 blocks with a travel-dominated seek
/// curve. The average random seek (a third of the platter, ~341 tracks)
/// costs 2 ms + 341 x 38.4 us ~= 15 ms, matching the flat Wren figure, so
/// Fifo's expected positioning cost is unchanged from the paper's model —
/// only the *spread* that ordering can exploit is new.
fn bench_disk() -> SimDisk {
    SimDisk::new(
        DiskGeometry {
            block_size: 1024,
            blocks_per_track: 8,
            tracks: 1024,
        },
        DiskProfile {
            seek: Some(SeekCurve {
                settle: SimDuration::from_millis(2),
                per_track: SimDuration::from_nanos(38_400),
            }),
            ..DiskProfile::wren()
        },
    )
}

/// Draws a zipf-like file rank: rank r with weight 1/(r+1).
fn zipf_rank(rng: &mut SmallRng, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty weights");
    let u = rng.random_range(0u64..1_000_000) as f64 / 1_000_000.0 * total;
    cumulative.iter().position(|&c| u < c).unwrap_or(0)
}

struct RunResult {
    policy: SchedPolicy,
    throughput: f64,
    makespan: SimDuration,
    mean: SimDuration,
    p50_bound: u64,
    p99_bound: u64,
    queue_wait_mean: SimDuration,
    depth_mean: f64,
    depth_max: u64,
    head_travel: u64,
}

fn run_policy(policy: SchedPolicy, profiler: &Profiler) -> RunResult {
    let collector = TraceCollector::install();
    let mut sim = Simulation::new(SimConfig {
        latency: Box::new(UniformLatency::default()),
        seed: 0x5C4E_D015,
        tracer: Some(collector.as_tracer()),
        ..SimConfig::default()
    });
    let lfs_node = sim.add_node("lfs");

    // Setup (untraced costs don't matter: measurement starts per client):
    // lay the shared files end to end across the platter.
    let efs = sim.block_on(lfs_node, "setup", move |ctx| {
        // A link cache spanning every data block: requests then cost one
        // media access each instead of walking the on-disk chain, and the
        // scheduler can place every pending request on its real track.
        let config = EfsConfig {
            link_cache_capacity: 8 * 1024,
            ..EfsConfig::default()
        };
        let mut efs = Efs::format(bench_disk(), config);
        for f in 0..FILES {
            let file = LfsFileId(f);
            efs.create(ctx, file).expect("create shared file");
            for b in 0..FILE_BLOCKS {
                efs.write(ctx, file, b, &[f as u8, b as u8], None)
                    .expect("populate shared file");
            }
        }
        efs
    });
    let server = spawn_lfs_sched(&mut sim, lfs_node, "lfs", efs, SchedConfig::new(policy));

    let cumulative: Vec<f64> = (0..FILES)
        .scan(0.0, |acc, r| {
            *acc += 1.0 / f64::from(r + 1);
            Some(*acc)
        })
        .collect();
    let ops = ops_per_client();
    let (tx, rx) = mpsc::channel();
    for c in 0..CLIENTS {
        let node = sim.add_node(format!("client{c}"));
        let tx = tx.clone();
        let cumulative = cumulative.clone();
        sim.spawn(node, format!("client{c}"), move |ctx| {
            let mut rng = SmallRng::seed_from_u64(0x5EED_0000 + u64::from(c));
            let mut lfs = LfsClient::new();
            let mut pending: std::collections::HashMap<u64, parsim::SimTime> =
                std::collections::HashMap::new();
            let finish = |ctx: &mut parsim::Ctx,
                          pending: &mut std::collections::HashMap<u64, parsim::SimTime>,
                          env: parsim::Envelope| {
                let reply = env.downcast::<bridge_efs::LfsReply>().expect("lfs reply");
                reply.result.expect("lfs op succeeded");
                let t0 = pending.remove(&reply.id).expect("reply matches a send");
                ctx.trace_span("bench", "sched.op", t0, &[]);
            };
            let start = ctx.now();
            // Stagger client start so the offered load is spread evenly.
            let mut due = start + SEND_PERIOD / u64::from(CLIENTS) * u64::from(c);
            for _ in 0..ops {
                // Sends are paced by the wall clock, not by replies:
                // consume replies while waiting for the next send slot.
                loop {
                    let now = ctx.now();
                    if now >= due {
                        break;
                    }
                    match ctx.recv_timeout(due.saturating_duration_since(now)) {
                        Some(env) => finish(ctx, &mut pending, env),
                        None => break,
                    }
                }
                let file = LfsFileId(RANK_TO_FILE[zipf_rank(&mut rng, &cumulative)]);
                let block = rng.random_range(0..FILE_BLOCKS);
                let op = if rng.random_range(0u32..5) == 0 {
                    LfsOp::Write {
                        file,
                        block,
                        data: bytes::Bytes::from(vec![block as u8; 960]),
                        hint: None,
                    }
                } else {
                    LfsOp::Read {
                        file,
                        block,
                        hint: None,
                    }
                };
                let id = lfs.send(ctx, server, op);
                pending.insert(id, ctx.now());
                // Jittered period, mean SEND_PERIOD (deterministic).
                let jitter = SimDuration::from_millis(rng.random_range(0u64..61));
                due += SEND_PERIOD + jitter - SimDuration::from_millis(30);
            }
            while !pending.is_empty() {
                let env = ctx.recv();
                finish(ctx, &mut pending, env);
            }
            tx.send((start, ctx.now())).expect("collect client window");
        });
    }
    drop(tx);
    sim.run();

    let windows: Vec<(SimTime, SimTime)> = rx.iter().collect();
    assert_eq!(windows.len(), CLIENTS as usize, "every client reported");
    let first_start = windows.iter().map(|w| w.0).min().expect("clients ran");
    let last_end = windows.iter().map(|w| w.1).max().expect("clients ran");
    let makespan = last_end.saturating_duration_since(first_start);

    let probe = sim.add_node("probe");
    let stats = sim.block_on(probe, "stats", move |ctx| {
        match LfsClient::new().call(ctx, server, LfsOp::DiskStats) {
            Ok(LfsData::DiskCounters(stats)) => stats,
            other => panic!("expected disk counters, got {other:?}"),
        }
    });

    let data = collector.take();
    // Under --profile, the same trace also yields the causal profile.
    profiler.report(&format!("sched_{policy}"), &data);
    let metrics = Metrics::from_trace(&data);
    let op = metrics
        .latency
        .get("sched.op")
        .expect("sched.op spans traced");
    assert_eq!(op.count(), u64::from(CLIENTS) * ops, "all ops traced");
    RunResult {
        policy,
        throughput: records_per_second(op.count(), makespan),
        makespan,
        mean: op.mean(),
        p50_bound: op.quantile_bound(0.50),
        p99_bound: op.quantile_bound(0.99),
        queue_wait_mean: metrics.queue.wait.mean(),
        depth_mean: metrics.queue.depth_mean(),
        depth_max: metrics.queue.depth_max,
        head_travel: stats.head_travel,
    }
}

fn ms(nanos: u64) -> String {
    format!("{:.1} ms", nanos as f64 / 1e6)
}

fn main() {
    let ops = ops_per_client();
    println!(
        "## Disk-scheduling ablation — {CLIENTS} clients x {ops} ops, \
         zipf-like mix over {FILES} files on a seek-sensitive platter\n"
    );

    let profiler = Profiler::new("ablate_disk_sched");
    let results: Vec<RunResult> = [SchedPolicy::Fifo, SchedPolicy::Sstf, SchedPolicy::CScan]
        .into_iter()
        .map(|policy| run_policy(policy, &profiler))
        .collect();

    let mut table = Table::new([
        "policy",
        "ops/s",
        "makespan",
        "mean",
        "p50 <=",
        "p99 <=",
        "queue wait",
        "depth avg/max",
        "head travel",
    ]);
    for r in &results {
        table.row([
            r.policy.to_string(),
            format!("{:.1}", r.throughput),
            secs(r.makespan),
            ms(r.mean.as_nanos()),
            ms(r.p50_bound),
            ms(r.p99_bound),
            ms(r.queue_wait_mean.as_nanos()),
            format!("{:.1} / {}", r.depth_mean, r.depth_max),
            format!("{} tracks", count(r.head_travel)),
        ]);
    }
    table.print();

    // The acceptance bar: at least one disk-aware policy must beat Fifo on
    // both throughput and the p99 latency bound under this load.
    let fifo = &results[0];
    let best = results[1..]
        .iter()
        .filter(|r| r.throughput > fifo.throughput && r.p99_bound < fifo.p99_bound)
        .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
        .unwrap_or_else(|| {
            panic!(
                "expected sstf or cscan to beat fifo on both throughput and p99 \
                 (fifo: {:.1} ops/s, p99 <= {})",
                fifo.throughput,
                ms(fifo.p99_bound),
            )
        });
    println!(
        "\nHeadline: {} sustains {:.1} ops/s vs fifo's {:.1} ({:.2}x) \
         with p99 <= {} vs {}",
        best.policy,
        best.throughput,
        fifo.throughput,
        best.throughput / fifo.throughput,
        ms(best.p99_bound),
        ms(fifo.p99_bound),
    );

    let mut metrics = Vec::new();
    for r in &results {
        metrics.push(Metric::higher(
            format!("{}.ops_per_s", r.policy),
            r.throughput,
        ));
        metrics.push(Metric::lower(
            format!("{}.p99_ns", r.policy),
            r.p99_bound as f64,
        ));
    }
    emit("ablate_disk_sched", &metrics);
}
