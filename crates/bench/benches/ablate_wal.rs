//! Ablation A13a — what crash consistency costs: the per-LFS write-ahead
//! log on and off, and how much of the cost group commit recovers.
//!
//! Three regimes of the same machine (p = 4, Wren disks):
//!
//! 1. **wal-off** — `WalConfig::disabled()`: the pre-crash-era EFS,
//!    write-through directory, no commit barrier.
//! 2. **wal, no batching** — a 64-block ring with `group_commit = 1`:
//!    every mutating op pays its intent append and a commit record
//!    before the ack.
//! 3. **wal, group commit 8** — `WalConfig::standard()`: the server
//!    drains up to 8 queued mutations per commit, amortising the commit
//!    record and the ring's tail seeks across the batch.
//!
//! Measured twice: a single sequential writer (the worst case for group
//! commit — the queue never holds more than one op) and six concurrent
//! writers pipelining appends straight at the LFS instances (the case
//! group commit exists for). The Bridge server services one client
//! request at a time, so the direct path is the only way a bench client
//! can build queue depth at an instance.

use bridge_bench::report::{secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{file_blocks, records_per_second, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine};
use bridge_efs::{LfsClient, LfsFileId, LfsOp, WalConfig};
use bridge_tools::{run_workers, ToolOptions, WorkerSpec};
use bytes::Bytes;
use parsim::SimDuration;
use std::collections::VecDeque;

const BREADTH: u32 = 4;
const WRITERS: usize = 6;
/// In-flight ops each writer keeps pipelined at its instance.
const WINDOW: usize = 8;

fn single_blocks() -> u64 {
    file_blocks() / 8
}

fn stream_blocks() -> u64 {
    file_blocks() / 32
}

struct Run {
    /// One client writing `single_blocks()` sequentially.
    single_write: SimDuration,
    /// The same client reading the file back.
    single_read: SimDuration,
    /// Six concurrent clients, `stream_blocks()` each: total wall time
    /// until the last writer finishes.
    concurrent: SimDuration,
}

fn measure(wal: WalConfig) -> Run {
    let mut config = BridgeConfig::paper(BREADTH);
    config.efs.wal = wal;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let lfs: Vec<(parsim::ProcId, parsim::NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let t0 = ctx.now();
        let file = write_workload(ctx, &mut bridge, single_blocks(), 8);
        let single_write = ctx.now() - t0;

        bridge.open(ctx, file).expect("open");
        let t0 = ctx.now();
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        let single_read = ctx.now() - t0;

        // Six writers spread over the four instances, each running on
        // its instance's node and keeping a window of appends pipelined
        // — the queued mutations the server's batch fill drains per
        // group commit.
        let specs: Vec<WorkerSpec<u64>> = (0..WRITERS)
            .map(|w| {
                let (proc, node) = lfs[w % lfs.len()];
                WorkerSpec {
                    node,
                    name: format!("writer{w}"),
                    run: Box::new(move |c| {
                        let mut client = LfsClient::new();
                        let file = LfsFileId(0xA130 + w as u32);
                        client
                            .call(c, proc, LfsOp::Create { file })
                            .expect("create");
                        let mut inflight = VecDeque::new();
                        for i in 0..stream_blocks() {
                            let data = Bytes::from(vec![(w as u8) << 4 | (i as u8 & 0xf); 1000]);
                            let op = LfsOp::Write {
                                file,
                                block: i as u32,
                                data,
                                hint: None,
                            };
                            inflight.push_back(client.send(c, proc, op));
                            if inflight.len() >= WINDOW {
                                let id = inflight.pop_front().expect("nonempty");
                                client.wait(c, proc, id).expect("write");
                            }
                        }
                        while let Some(id) = inflight.pop_front() {
                            client.wait(c, proc, id).expect("write");
                        }
                        Ok(stream_blocks())
                    }),
                }
            })
            .collect();
        let t0 = ctx.now();
        let written = run_workers(ctx, &ToolOptions::default(), specs).expect("writers");
        let concurrent = ctx.now() - t0;
        assert_eq!(
            written.iter().sum::<u64>(),
            WRITERS as u64 * stream_blocks()
        );

        Run {
            single_write,
            single_read,
            concurrent,
        }
    })
}

fn main() {
    println!(
        "## Ablation A13a — WAL overhead and group commit (p = {BREADTH}, \
         {} + {WRITERS}x{} blocks)\n",
        single_blocks(),
        stream_blocks()
    );

    let off = measure(WalConfig::disabled());
    let nobatch = measure(WalConfig {
        log_blocks: 64,
        group_commit: 1,
    });
    let standard = measure(WalConfig::standard());

    let mut t = Table::new(["workload", "wal off", "wal, no batch", "wal, group 8"]);
    for (name, pick) in [
        (
            "single writer",
            &(|r: &Run| r.single_write) as &dyn Fn(&Run) -> SimDuration,
        ),
        ("single reader", &|r: &Run| r.single_read),
        ("6 concurrent writers", &|r: &Run| r.concurrent),
    ] {
        t.row([
            name.to_string(),
            secs(pick(&off)),
            secs(pick(&nobatch)),
            secs(pick(&standard)),
        ]);
    }
    t.print();

    let single_overhead = standard.single_write.as_secs_f64() / off.single_write.as_secs_f64();
    let nobatch_overhead = nobatch.concurrent.as_secs_f64() / off.concurrent.as_secs_f64();
    let standard_overhead = standard.concurrent.as_secs_f64() / off.concurrent.as_secs_f64();
    let recovery = nobatch.concurrent.as_secs_f64() / standard.concurrent.as_secs_f64();

    // Reads never touch the log: the read path must price identically.
    assert_eq!(
        off.single_read, standard.single_read,
        "the WAL must not affect the read path"
    );
    // Group commit must recover part of the commit cost under load.
    assert!(
        standard.concurrent <= nobatch.concurrent,
        "group commit regressed the concurrent write phase: {} > {}",
        secs(standard.concurrent),
        secs(nobatch.concurrent)
    );

    println!(
        "\nsingle-writer WAL overhead: {single_overhead:.2}x; concurrent overhead \
         {nobatch_overhead:.2}x unbatched, {standard_overhead:.2}x with group commit \
         ({recovery:.2}x recovered)"
    );

    emit(
        "ablate_wal",
        &[
            Metric::higher(
                "wal_off.writes_per_s",
                records_per_second(single_blocks(), off.single_write),
            ),
            Metric::higher(
                "wal_on.writes_per_s",
                records_per_second(single_blocks(), standard.single_write),
            ),
            Metric::lower("wal_on.single_overhead", single_overhead),
            Metric::lower("wal_on.concurrent_overhead", standard_overhead),
            Metric::higher("group_commit.recovery", recovery),
        ],
    );
}
