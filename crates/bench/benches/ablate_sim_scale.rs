//! Engine-scaling ablation: how fast does the simulator itself run, and
//! how far past the paper's p = 32 does it now reach?
//!
//! Three sweeps:
//!
//! 1. **Scale** — the run-to-completion fiber engine copies a fixed file
//!    on machines of p ∈ {32, 64, 256, 1024}, reporting host wall-clock
//!    for machine build and for the run phase, simulator events/second,
//!    and the workload's virtual time.
//! 2. **Copy head-to-head** — the same copy on both engines at p ∈
//!    {32, 256}. The engines must agree bit-for-bit on virtual time and
//!    event count (the engine contract, also pinned by the
//!    `engine_equivalence` tests). The events/second ratio here is
//!    Amdahl-limited: every event carries the simulated file system's own
//!    compute (block memcpys, EFS B-tree walks), identical on both
//!    engines, so even an infinitely fast dispatcher could not push this
//!    ratio past common-cost ÷ nothing.
//! 3. **Dispatch rate** — a 256-node token ring whose per-event work is
//!    one receive and one send: the purest measure of what the engine
//!    rework changed. Here the fiber engine must clear
//!    [`REQUIRED_DISPATCH_SPEEDUP`] over the threaded engine, which is
//!    what makes the >32-processor curves in EXPERIMENTS.md §A12
//!    tractable at all.
//!
//! Virtual-time metrics go to the regression gate as exact values. The
//! wall-clock metrics are emitted too, but their committed baselines are
//! deliberate *floors* (far below any healthy host) so the gate only
//! trips on an order-of-magnitude engine regression — e.g. silently
//! falling back to the threaded engine — never on host noise.

use bridge_bench::report::{count, secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{paper_machine_on, write_workload, SCALE_PROCESSORS};
use bridge_core::BridgeClient;
use bridge_tools::{copy, ToolOptions};
use parsim::{Engine, ProcId, RunStats, SimConfig, SimDuration, Simulation};
use std::time::Instant;

/// Copy-workload size in blocks — fixed (not `BRIDGE_SCALE`-dependent) so
/// the virtual-time metrics below are identical at every scale and the
/// threaded head-to-head stays tractable.
const BLOCKS: u64 = 1024;

/// Breadths for the copy head-to-head. The threaded engine is already
/// painfully slow at p = 256 (which is the point); p = 1024 on it is
/// intractable, which is why the scale sweep is fiber-only.
const HEAD_TO_HEAD: [u32; 2] = [32, 256];

/// Ring breadth and laps for the dispatch-rate sweep.
const RING_P: usize = 256;
const RING_LAPS: u64 = 200;

/// Acceptance bar from the engine rework: dispatch-rate events/second on
/// the fiber engine at p = 256 must be at least this multiple of the
/// threaded engine's. (Measured locally: ~20x.)
const REQUIRED_DISPATCH_SPEEDUP: f64 = 10.0;

struct Row {
    build_wall: f64,
    run_wall: f64,
    virt: SimDuration,
    stats: RunStats,
}

impl Row {
    /// Simulator events retired per host second, run phase only. Machine
    /// build (allocating p disks and EFS instances — and, on the
    /// threaded engine, spawning p·k OS threads) is reported separately.
    fn events_per_sec(&self) -> f64 {
        self.stats.events as f64 / self.run_wall.max(1e-9)
    }
}

/// Write-then-copy of [`BLOCKS`] records on the paper machine at breadth
/// `p`, pinned to `engine`, with host wall-clock split into machine
/// build and run phases.
fn run_copy(p: u32, engine: Engine) -> Row {
    let t0 = Instant::now();
    let (mut sim, machine) = paper_machine_on(p, engine);
    let build_wall = t0.elapsed().as_secs_f64();
    let server = machine.server;
    let t0 = Instant::now();
    let virt = sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, BLOCKS, 42);
        let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
        assert_eq!(stats.blocks, BLOCKS);
        stats.elapsed
    });
    let run_wall = t0.elapsed().as_secs_f64();
    Row {
        build_wall,
        run_wall,
        virt,
        stats: sim.stats(),
    }
}

/// Token ring across [`RING_P`] nodes: every event is one receive plus
/// one send, so events/second here is raw engine dispatch rate.
fn run_ring(engine: Engine) -> Row {
    let t0 = Instant::now();
    let mut sim = Simulation::new(SimConfig {
        engine,
        ..SimConfig::default()
    });
    let nodes: Vec<_> = (0..RING_P).map(|i| sim.add_node(format!("n{i}"))).collect();
    let hops = RING_LAPS * RING_P as u64;
    let mut pids: Vec<ProcId> = Vec::with_capacity(RING_P);
    for (i, &node) in nodes.iter().enumerate() {
        pids.push(sim.spawn(node, format!("r{i}"), move |ctx| loop {
            let (_, (hop, ring)) = ctx.recv_as::<(u64, Vec<ProcId>)>();
            if hop >= hops {
                break;
            }
            let dst = ring[(hop as usize + 1) % ring.len()];
            ctx.send(dst, (hop + 1, ring));
        }));
    }
    let build_wall = t0.elapsed().as_secs_f64();
    let ring = pids.clone();
    let first = pids[0];
    let t0 = Instant::now();
    sim.block_on(nodes[0], "kick", move |ctx| {
        ctx.send(first, (0u64, ring));
    });
    let run_wall = t0.elapsed().as_secs_f64();
    let stats = sim.stats();
    Row {
        build_wall,
        run_wall,
        virt: stats.end_time - parsim::SimTime::ZERO,
        stats,
    }
}

fn main() {
    println!("## Simulator-scale ablation — run-to-completion engine ({BLOCKS}-block copy)\n");

    println!("### Sweep 1 — fiber engine vs machine breadth\n");
    let mut metrics = Vec::new();
    let mut fiber_rows: Vec<(u32, Row)> = Vec::new();
    let mut table = Table::new([
        "Processors",
        "Build (host)",
        "Run (host)",
        "Events",
        "Events/s (host)",
        "Dispatches",
        "Copy Time (virtual)",
    ]);
    for &p in &SCALE_PROCESSORS {
        let row = run_copy(p, Engine::RunToCompletion);
        table.row([
            p.to_string(),
            format!("{:.3} s", row.build_wall),
            format!("{:.3} s", row.run_wall),
            count(row.stats.events),
            format!("{:.0}", row.events_per_sec()),
            count(row.stats.dispatches),
            secs(row.virt),
        ]);
        metrics.push(Metric::lower(
            format!("p{p}.virt_secs"),
            row.virt.as_secs_f64(),
        ));
        metrics.push(Metric::lower(
            format!("p{p}.events"),
            row.stats.events as f64,
        ));
        fiber_rows.push((p, row));
    }
    table.print();

    println!("\n### Sweep 2 — copy head-to-head (same workload, both engines)\n");
    let mut table = Table::new([
        "Processors",
        "Engine",
        "Run (host)",
        "Events/s (host)",
        "Fiber Speedup",
    ]);
    for &p in &HEAD_TO_HEAD {
        let threaded = run_copy(p, Engine::Threaded);
        let (_, fiber) = fiber_rows
            .iter()
            .find(|(fp, _)| *fp == p)
            .expect("head-to-head breadth is in the scale sweep");
        // The engine contract: identical simulation, different host cost.
        assert_eq!(
            (fiber.virt, fiber.stats.events),
            (threaded.virt, threaded.stats.events),
            "p={p}: engines disagree on the simulation itself"
        );
        let speedup = fiber.events_per_sec() / threaded.events_per_sec();
        table.row([
            p.to_string(),
            "threaded".to_string(),
            format!("{:.3} s", threaded.run_wall),
            format!("{:.0}", threaded.events_per_sec()),
            String::new(),
        ]);
        table.row([
            String::new(),
            "fiber".to_string(),
            format!("{:.3} s", fiber.run_wall),
            format!("{:.0}", fiber.events_per_sec()),
            format!("{speedup:.1}x"),
        ]);
    }
    table.print();
    println!(
        "\n(Copy events carry the simulated file system's own compute, identical on \
         both engines; the dispatch sweep below isolates what the engine changed.)"
    );

    println!("\n### Sweep 3 — dispatch rate ({RING_P}-node token ring, {RING_LAPS} laps)\n");
    let ring_fiber = run_ring(Engine::RunToCompletion);
    let ring_threaded = run_ring(Engine::Threaded);
    assert_eq!(
        (ring_fiber.virt, ring_fiber.stats.events),
        (ring_threaded.virt, ring_threaded.stats.events),
        "ring: engines disagree on the simulation itself"
    );
    let dispatch_speedup = ring_fiber.events_per_sec() / ring_threaded.events_per_sec();
    let mut table = Table::new(["Engine", "Run (host)", "Events", "Events/s (host)"]);
    table.row([
        "threaded".to_string(),
        format!("{:.3} s", ring_threaded.run_wall),
        count(ring_threaded.stats.events),
        format!("{:.0}", ring_threaded.events_per_sec()),
    ]);
    table.row([
        "fiber".to_string(),
        format!("{:.3} s", ring_fiber.run_wall),
        count(ring_fiber.stats.events),
        format!("{:.0}", ring_fiber.events_per_sec()),
    ]);
    table.print();
    println!(
        "\nFiber engine dispatch rate at p={RING_P}: {dispatch_speedup:.1}x the threaded \
         engine (required: {REQUIRED_DISPATCH_SPEEDUP:.0}x)"
    );
    metrics.push(Metric::higher("p256.dispatch_speedup", dispatch_speedup));
    metrics.push(Metric::higher(
        "p256.fiber_dispatch_events_per_s",
        ring_fiber.events_per_sec(),
    ));
    assert!(
        dispatch_speedup >= REQUIRED_DISPATCH_SPEEDUP,
        "run-to-completion engine must dispatch at least \
         {REQUIRED_DISPATCH_SPEEDUP:.0}x faster than the threaded engine at \
         p={RING_P}, measured {dispatch_speedup:.1}x"
    );

    emit("ablate_sim_scale", &metrics);
}
