//! Ablation A3 — token-ring saturation (paper §5.2, §6).
//!
//! "With sufficiently large p, the token will eventually be unable to
//! complete a circuit of the nodes in the time it takes to read and write
//! a record. At that point performance should begin to taper off … 32
//! nodes is clearly well below the point at which the merge phase of the
//! sort tool would be unable to take advantage of additional parallelism."
//!
//! We measure merge-phase throughput vs p on the paper's interconnect, and
//! again on a 20× slower one, where saturation arrives within reach.

use bridge_bench::profile::Profiler;
use bridge_bench::report::Table;
use bridge_bench::{records_per_second, scale, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine};
use bridge_tools::{sort, SortOptions, SortStats};
use parsim::{SimDuration, TracerHandle, UniformLatency};

fn run(p: u32, blocks: u64, latency: UniformLatency, tracer: Option<TracerHandle>) -> SortStats {
    let mut config = BridgeConfig::paper(p);
    config.latency = latency;
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, blocks, 17);
        let (_, stats) = sort(ctx, &mut bridge, src, &SortOptions::default()).expect("sort");
        stats
    })
}

fn main() {
    let blocks = 4096 / scale();
    println!("## Ablation A3 — merge-phase token-ring saturation ({blocks} records)\n");

    let fast = UniformLatency::default();
    let slow = UniformLatency {
        local: fast.local,
        remote_base: fast.remote_base * 20,
        per_byte: fast.per_byte * 20,
    };

    let mut profiler = Profiler::new("ablate_token_ring");
    for (name, slug, latency) in [
        ("paper-like interconnect", "fast", fast),
        ("20× slower interconnect", "slow20x", slow),
    ] {
        println!("### {name} (remote base {})", latency.remote_base);
        let mut t = Table::new(["p", "merge time", "merge records/s", "gain vs previous p"]);
        let mut prev: Option<SimDuration> = None;
        for &p in &[2u32, 4, 8, 16, 32, 64] {
            // Under --profile, attribute the widest sort per interconnect.
            let tracer = if p == 64 {
                profiler.arm(&format!("sort_p64_{slug}"))
            } else {
                None
            };
            let stats = run(p, blocks, latency, tracer);
            profiler.capture();
            let gain = prev.map_or("-".to_string(), |q| {
                format!("{:.2}x", q.as_secs_f64() / stats.merge.as_secs_f64())
            });
            t.row([
                p.to_string(),
                format!("{:.1} s", stats.merge.as_secs_f64()),
                format!("{:.0}", records_per_second(blocks, stats.merge)),
                gain,
            ]);
            prev = Some(stats.merge);
        }
        t.print();
        println!();
    }
    println!(
        "On the fast interconnect, gains continue through p=64 (the token circuit\n\
         fits inside a record read+write). On the slow one, the final passes'\n\
         token circuit time exceeds the disk time and the gains flatten —\n\
         the taper the paper predicts."
    );
}
