//! Table 2 reproduction: costs of the basic Bridge operations through the
//! naive interface, as functions of p and file size, with least-squares
//! fits against the paper's functional forms:
//!
//! | op     | paper (ms)              |
//! |--------|-------------------------|
//! | Delete | 20 · filesize / p       |
//! | Create | 145 + 17.5 p            |
//! | Open   | 80                      |
//! | Read   | 9.0 + 500 p / filesize  |
//! | Write  | 31                      |

use bridge_bench::report::{linear_fit, millis, Table};
use bridge_bench::{paper_machine, scale};
use bridge_core::{BridgeClient, CreateSpec};
use parsim::SimDuration;

struct OpCosts {
    p: u32,
    blocks: u64,
    create: SimDuration,
    open: SimDuration,
    read_avg: SimDuration,
    write_avg: SimDuration,
    delete: SimDuration,
}

fn measure(p: u32, blocks: u64) -> OpCosts {
    let (mut sim, machine) = paper_machine(p);
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);

        let t0 = ctx.now();
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        let create = ctx.now() - t0;

        let t0 = ctx.now();
        for i in 0..blocks {
            bridge
                .seq_write(ctx, file, bridge_bench::workload::record_with_key(i, 1))
                .expect("write");
        }
        let write_avg = (ctx.now() - t0) / blocks;

        let t0 = ctx.now();
        bridge.open(ctx, file).expect("open");
        let open = ctx.now() - t0;

        let t0 = ctx.now();
        let mut read = 0u64;
        while bridge.seq_read(ctx, file).expect("read").is_some() {
            read += 1;
        }
        assert_eq!(read, blocks);
        let read_avg = (ctx.now() - t0) / blocks;

        let t0 = ctx.now();
        bridge.delete(ctx, file).expect("delete");
        let delete = ctx.now() - t0;

        OpCosts {
            p,
            blocks,
            create,
            open,
            read_avg,
            write_avg,
            delete,
        }
    })
}

fn main() {
    let blocks = 1024 / scale().min(4);
    println!("## Table 2 reproduction — basic operation costs (naive interface)");
    println!("(file size for per-op table: {blocks} blocks)\n");

    let ps = [2u32, 4, 8, 16, 32];
    let runs: Vec<OpCosts> = ps.iter().map(|&p| measure(p, blocks)).collect();

    let mut table = Table::new([
        "p",
        "Create",
        "Open",
        "Read (avg)",
        "Write (avg)",
        "Delete",
        "Delete·p/size",
    ]);
    for r in &runs {
        table.row([
            r.p.to_string(),
            millis(r.create),
            millis(r.open),
            millis(r.read_avg),
            millis(r.write_avg),
            millis(r.delete),
            format!(
                "{:.1} ms/blk",
                r.delete.as_millis_f64() * f64::from(r.p) / r.blocks as f64
            ),
        ]);
    }
    table.print();

    // Fits against the paper's forms.
    println!("\n### Fits (paper's functional forms)");

    let create_pts: Vec<(f64, f64)> = runs
        .iter()
        .map(|r| (f64::from(r.p), r.create.as_millis_f64()))
        .collect();
    let (a, b, r2) = linear_fit(&create_pts);
    println!("Create  = {a:.0} + {b:.1}·p ms   (r²={r2:.3}; paper: 145 + 17.5·p)");

    let delete_pts: Vec<(f64, f64)> = runs
        .iter()
        .map(|r| (r.blocks as f64 / f64::from(r.p), r.delete.as_millis_f64()))
        .collect();
    let (a, b, r2) = linear_fit(&delete_pts);
    println!("Delete  = {a:.0} + {b:.1}·(filesize/p) ms   (r²={r2:.3}; paper: 20·filesize/p)");

    // Read startup term: sweep file size at fixed p.
    let p = 8u32;
    let read_pts: Vec<(f64, f64)> = [128u64, 256, 512, 1024]
        .iter()
        .map(|&n| {
            let r = measure(p, n);
            (f64::from(p) / n as f64, r.read_avg.as_millis_f64())
        })
        .collect();
    let (a, b, r2) = linear_fit(&read_pts);
    println!(
        "Read    = {a:.1} + {b:.0}·(p/filesize) ms   (r²={r2:.3}; paper: 9.0 + 500·p/filesize)"
    );

    let writes: Vec<f64> = runs.iter().map(|r| r.write_avg.as_millis_f64()).collect();
    let opens: Vec<f64> = runs.iter().map(|r| r.open.as_millis_f64()).collect();
    let spread = |v: &[f64]| {
        let min = v.iter().fold(f64::MAX, |a, &b| a.min(b));
        let max = v.iter().fold(f64::MIN, |a, &b| a.max(b));
        (min, max)
    };
    let (wmin, wmax) = spread(&writes);
    let (omin, omax) = spread(&opens);
    println!("Write   = {wmin:.1}..{wmax:.1} ms, flat in p   (paper: 31 ms)");
    println!("Open    = {omin:.1}..{omax:.1} ms, flat in p   (paper: 80 ms)");
}
