//! Ablation A4 — serial vs binary-tree startup/completion (paper §4.5,
//! §5.1).
//!
//! Two serial-startup costs exist in the system, and the paper proposes a
//! binary tree for both:
//!
//! 1. **Create**: "the initiation and termination are sequential, leading
//!    to an almost linear increase in overhead for additional processors.
//!    Performance could be improved somewhat by sending startup and
//!    completion messages through an embedded binary tree."
//! 2. **Tool worker startup**: the copy tool's O(n/p + log p) bound
//!    assumes tree-structured worker creation.

use bridge_bench::profile::Profiler;
use bridge_bench::report::Table;
use bridge_bench::write_workload;
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateFanout, CreateSpec};
use bridge_tools::{copy, Fanout, ToolOptions};
use parsim::{SimDuration, TracerHandle};

fn create_time(p: u32, fanout: CreateFanout) -> SimDuration {
    let mut config = BridgeConfig::paper(p);
    config.server.create_fanout = fanout;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        // Average a few creates.
        let t0 = ctx.now();
        for _ in 0..4 {
            bridge.create(ctx, CreateSpec::default()).expect("create");
        }
        (ctx.now() - t0) / 4
    })
}

fn copy_time(
    p: u32,
    blocks: u64,
    create: CreateFanout,
    workers: Fanout,
    tracer: Option<TracerHandle>,
) -> SimDuration {
    let mut config = BridgeConfig::paper(p);
    config.server.create_fanout = create;
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, blocks, 23);
        let opts = ToolOptions {
            fanout: workers,
            ..ToolOptions::default()
        };
        let (_, stats) = copy(ctx, &mut bridge, src, &opts).expect("copy");
        stats.elapsed
    })
}

fn main() {
    println!("## Ablation A4 — serial vs embedded-binary-tree startup\n");
    let mut profiler = Profiler::new("ablate_tree_start");

    println!("### Create (Table 2's serial 145 + 17.5p vs the paper's suggested tree)");
    let mut t = Table::new(["p", "serial create", "tree create", "tree advantage"]);
    for &p in &[4u32, 8, 16, 32, 64] {
        let serial = create_time(p, CreateFanout::Serial);
        let tree = create_time(p, CreateFanout::Tree);
        t.row([
            p.to_string(),
            format!("{:.0} ms", serial.as_millis_f64()),
            format!("{:.0} ms", tree.as_millis_f64()),
            format!("{:.2}x", serial.as_secs_f64() / tree.as_secs_f64()),
        ]);
    }
    t.print();

    println!("\n### Copy tool, startup-dominated (one block per node), both fan-outs applied");
    let mut t = Table::new(["p", "all-serial", "all-tree", "advantage"]);
    for &p in &[8u32, 16, 32, 64] {
        // Under --profile, attribute the widest startup-dominated copies.
        let tracer = (p == 64)
            .then(|| profiler.arm("copy_start_p64_serial"))
            .flatten();
        let serial = copy_time(
            p,
            u64::from(p),
            CreateFanout::Serial,
            Fanout::Serial,
            tracer,
        );
        profiler.capture();
        let tracer = (p == 64)
            .then(|| profiler.arm("copy_start_p64_tree"))
            .flatten();
        let tree = copy_time(p, u64::from(p), CreateFanout::Tree, Fanout::Tree, tracer);
        profiler.capture();
        t.row([
            p.to_string(),
            format!("{:.0} ms", serial.as_millis_f64()),
            format!("{:.0} ms", tree.as_millis_f64()),
            format!("{:.2}x", serial.as_secs_f64() / tree.as_secs_f64()),
        ]);
    }
    t.print();

    println!("\n### Copy tool, I/O-dominated (2048-block file): startup is in the noise");
    let mut t = Table::new(["p", "all-serial", "all-tree", "advantage"]);
    for &p in &[8u32, 32] {
        let serial = copy_time(p, 2048, CreateFanout::Serial, Fanout::Serial, None);
        let tree = copy_time(p, 2048, CreateFanout::Tree, Fanout::Tree, None);
        t.row([
            p.to_string(),
            format!("{:.1} s", serial.as_secs_f64()),
            format!("{:.1} s", tree.as_secs_f64()),
            format!("{:.2}x", serial.as_secs_f64() / tree.as_secs_f64()),
        ]);
    }
    t.print();
    println!(
        "\nCreate's O(p) serial term becomes O(log p) through the agent tree, and the\n\
         tool's O(p) worker startup likewise — decisive for small per-node work,\n\
         invisible once the O(n/p) streaming term dominates."
    );
}
