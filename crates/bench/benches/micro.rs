//! Criterion micro-benchmarks for the pure-CPU building blocks: placement
//! arithmetic, block codecs, and the key comparison at the heart of the
//! sort tool. These complement the virtual-time reproduction benches by
//! measuring the *host* cost of the hot paths.

use bridge_core::{
    decode_payload, encode_payload, BridgeFileId, BridgeHeader, GlobalPtr, Placement,
    PlacementKind, BRIDGE_DATA,
};
use bridge_efs::{decode_block, encode_block, EfsHeader, LfsFileId};
use bridge_tools::key_of;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simdisk::BlockAddr;
use std::hint::black_box;

fn bench_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement");
    let rr = Placement::new(PlacementKind::RoundRobin { start: 3 }, 32);
    group.bench_function("round_robin_locate", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for blk in 0..1024u64 {
                let ptr = rr.locate(black_box(blk)).unwrap();
                acc += u64::from(ptr.lfs.0) + u64::from(ptr.local);
            }
            acc
        })
    });
    let chunked = Placement::new(
        PlacementKind::Chunked {
            blocks_per_chunk: 40,
        },
        32,
    );
    group.bench_function("chunked_locate", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for blk in 0..1024u64 {
                let ptr = chunked.locate(black_box(blk)).unwrap();
                acc += u64::from(ptr.local);
            }
            acc
        })
    });
    let hashed = Placement::new(PlacementKind::Hashed { seed: 7 }, 32);
    group.bench_function("hashed_cursor_1024", |b| {
        b.iter(|| {
            let mut cursor = hashed.cursor();
            let mut acc = 0u64;
            for _ in 0..1024 {
                acc += u64::from(cursor.next().unwrap().local);
            }
            acc
        })
    });
    group.finish();
}

fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codecs");
    let efs_header = EfsHeader {
        file: LfsFileId(7),
        block_no: 42,
        next: BlockAddr::new(1000),
        prev: BlockAddr::new(998),
    };
    let payload = vec![0xabu8; 1000];
    group.bench_function("efs_encode_block", |b| {
        b.iter(|| encode_block(black_box(&efs_header), black_box(&payload)))
    });
    let encoded = bytes::Bytes::from(encode_block(&efs_header, &payload));
    group.bench_function("efs_decode_block", |b| {
        b.iter(|| decode_block(black_box(&encoded)).unwrap())
    });

    let bridge_header = BridgeHeader {
        file: BridgeFileId(3),
        global_block: 123_456,
        breadth: 32,
        next: GlobalPtr::new(5, 100),
        prev: GlobalPtr::new(4, 99),
    };
    let data = vec![0x5au8; BRIDGE_DATA];
    group.bench_function("bridge_encode_payload", |b| {
        b.iter(|| encode_payload(black_box(&bridge_header), black_box(&data)))
    });
    let enc = bytes::Bytes::from(encode_payload(&bridge_header, &data));
    group.bench_function("bridge_decode_payload", |b| {
        b.iter(|| decode_payload(black_box(&enc)).unwrap())
    });
    group.finish();
}

fn bench_sort_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sort_kernel");
    let records: Vec<Vec<u8>> = bridge_bench::workload::records(512, 9);
    group.bench_function("in_core_sort_512", |b| {
        b.iter_batched(
            || records.clone(),
            |mut batch| {
                batch.sort_by_key(|d| key_of(d));
                batch
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("key_extract", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for r in &records {
                acc ^= key_of(black_box(r))[7];
            }
            acc
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = bench_placement, bench_codecs, bench_sort_kernel
}
criterion_main!(benches);
