//! Table 3 reproduction: copy tool performance on the paper's 10 MB file
//! for p ∈ {2, 4, 8, 16, 32}, plus the records-per-second series plotted
//! beside the table (475 records/s at p = 32 in the paper).

use bridge_bench::profile::Profiler;
use bridge_bench::report::{ascii_series, kernel_stats, secs, Table};
use bridge_bench::{
    file_blocks, paper_machine, paper_machine_traced, records_per_second, speedup, write_workload,
    PAPER_PROCESSORS,
};
use bridge_core::BridgeClient;
use bridge_tools::{copy, ToolOptions};
use bridge_trace::{Metrics, TraceCollector};
use parsim::SimDuration;

const PAPER_SECONDS: [f64; 5] = [311.6, 156.0, 79.3, 41.0, 21.6];

fn main() {
    let blocks = file_blocks();
    println!(
        "## Table 3 reproduction — copy tool ({} blocks ≈ {:.0} MB file)\n",
        blocks,
        blocks as f64 * 1024.0 / (1024.0 * 1024.0)
    );

    let mut elapsed: Vec<SimDuration> = Vec::new();
    for &p in &PAPER_PROCESSORS {
        let (mut sim, machine) = paper_machine(p);
        let server = machine.server;
        let t = sim.block_on(machine.frontend, "bench", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let src = write_workload(ctx, &mut bridge, blocks, 42);
            let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
            assert_eq!(stats.blocks, blocks);
            stats.elapsed
        });
        elapsed.push(t);
    }

    let mut table = Table::new([
        "Processors",
        "Copy Time",
        "Records/s",
        "Speedup vs p=2",
        "Paper Time",
        "Paper Speedup",
    ]);
    for (i, (&p, &t)) in PAPER_PROCESSORS.iter().zip(&elapsed).enumerate() {
        table.row([
            p.to_string(),
            secs(t),
            format!("{:.0}", records_per_second(blocks, t)),
            format!("{:.2}x", speedup(elapsed[0], t)),
            format!("{:.1} s", PAPER_SECONDS[i]),
            format!("{:.2}x", PAPER_SECONDS[0] / PAPER_SECONDS[i]),
        ]);
    }
    table.print();

    println!("\n### Figure beside Table 3 — records per second vs processors");
    let series: Vec<(f64, f64)> = PAPER_PROCESSORS
        .iter()
        .zip(&elapsed)
        .map(|(&p, &t)| (f64::from(p), records_per_second(blocks, t)))
        .collect();
    print!("{}", ascii_series("records/second", &series, 40));

    // The headline claim: near-linear speedup.
    let s = speedup(elapsed[0], elapsed[4]);
    println!(
        "\nSpeedup p=2 → p=32: {s:.1}x measured (ideal 16.0x; paper {:.1}x)",
        PAPER_SECONDS[0] / PAPER_SECONDS[4]
    );

    // BRIDGE_TRACE=1 (or --profile): re-run the p=4 row with the trace
    // collector installed and render the metrics registry next to the
    // kernel counters. Tracing is observation-only, so the traced run must
    // land on exactly the table's p=4 virtual time.
    let profiler = Profiler::new("table3_copy");
    if std::env::var("BRIDGE_TRACE").is_ok() || profiler.enabled() {
        let collector = TraceCollector::install();
        let (mut sim, machine) = paper_machine_traced(4, collector.as_tracer());
        let server = machine.server;
        let t = sim.block_on(machine.frontend, "bench", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let src = write_workload(ctx, &mut bridge, blocks, 42);
            let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).expect("copy");
            stats.elapsed
        });
        assert_eq!(t, elapsed[1], "tracing changed the p=4 copy time");
        println!("\n### Trace metrics — p = 4 copy (BRIDGE_TRACE)");
        println!("{}", kernel_stats(&sim.stats()));
        let data = collector.snapshot();
        print!(
            "{}",
            Metrics::from_trace(&data).with_kernel(sim.stats()).render()
        );
        profiler.report("copy_p4", &data);
    }
}
