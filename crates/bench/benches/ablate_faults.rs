//! Fault-tolerance ablation: what the timeout/retry protocol costs when
//! idle, and what riding out a fault storm costs end to end.
//!
//! Three runs of the same sequential write-then-read workload on the
//! paper machine:
//!
//! 1. **fault-free** — no fault plan, retries disabled: the pre-fault
//!    protocol, bit-for-bit.
//! 2. **retry-armed** — no fault plan, retries enabled everywhere. The
//!    phase durations must equal run 1's *exactly*: arming timeouts is
//!    free until a fault actually fires.
//! 3. **storm** — drops, duplicates, delays, and transient disk errors at
//!    aggressive rates with retries enabled. The read-back must still be
//!    byte-identical; throughput degrades and the trace's recovery
//!    histogram prices the availability cost.

use bridge_bench::profile::Profiler;
use bridge_bench::report::{secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{file_blocks, records_per_second};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, RetryPolicy};
use bridge_efs::DEDUP_RETENTION;
use bridge_trace::{Metrics, TraceCollector};
use parsim::{DiskFaults, FaultPlan, MsgFaults, SimDuration};

const BREADTH: u32 = 4;

fn blocks() -> u64 {
    file_blocks() / 4
}

/// The storm: every transient fault class at once, all bounded, with
/// delays far below the servers' dedup retention.
fn storm_plan() -> FaultPlan {
    let plan = FaultPlan {
        seed: 0x57A0_0001,
        msg: MsgFaults {
            drop_per_mille: 150,
            dup_per_mille: 100,
            delay_per_mille: 150,
            delay_max: SimDuration::from_millis(20),
            max_consecutive_drops: 4,
        },
        disk: DiskFaults {
            error_per_mille: 100,
            max_consecutive: 4,
            targets: Vec::new(),
        },
        ..FaultPlan::none()
    };
    assert!(plan.msg.delay_max < DEDUP_RETENTION);
    plan
}

/// FNV-1a over the read-back stream: the convergence witness.
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h = (*h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
}

struct RunOutcome {
    write: SimDuration,
    read: SimDuration,
    hash: u64,
}

fn run(config: &BridgeConfig, retry: RetryPolicy) -> RunOutcome {
    let n = blocks();
    let (mut sim, machine) = BridgeMachine::build(config);
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::with_retry(server, retry);
        let file = bridge
            .create(ctx, CreateSpec::default())
            .expect("create bench file");
        let t0 = ctx.now();
        for record in bridge_bench::workload::records(n, 42) {
            bridge.seq_write(ctx, file, record).expect("write");
        }
        let write = ctx.now() - t0;
        bridge.open(ctx, file).expect("open");
        let t0 = ctx.now();
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        let mut read = 0u64;
        while let Some(block) = bridge.seq_read(ctx, file).expect("read") {
            fnv(&mut hash, &block);
            read += 1;
        }
        assert_eq!(read, n, "every block read back");
        RunOutcome {
            write,
            read: ctx.now() - t0,
            hash,
        }
    })
}

fn main() {
    let n = blocks();
    println!("## Fault-tolerance ablation — {n} blocks written + read back, p = {BREADTH}\n");

    let fault_free = run(&BridgeConfig::paper(BREADTH), RetryPolicy::none());

    let mut armed_config = BridgeConfig::paper(BREADTH);
    armed_config.server.lfs_retry = RetryPolicy::standard();
    let armed = run(&armed_config, RetryPolicy::standard());

    let collector = TraceCollector::install();
    let mut storm_config = BridgeConfig::paper(BREADTH).with_faults(storm_plan());
    storm_config.tracer = Some(collector.as_tracer());
    let storm = run(&storm_config, RetryPolicy::standard());
    let data = collector.take();
    // Under --profile, the storm trace also yields a causal profile
    // (retry backoff shows up as its own attribution category).
    Profiler::new("ablate_faults").report("storm", &data);
    let retry = Metrics::from_trace(&data).retry;

    // Correctness bars: arming retries without faults is free, and the
    // storm changes nothing the client can observe except timing.
    assert_eq!(
        (armed.write, armed.read),
        (fault_free.write, fault_free.read),
        "idle retry protocol must not change virtual timings"
    );
    assert_eq!(armed.hash, fault_free.hash, "armed read-back identical");
    assert_eq!(storm.hash, fault_free.hash, "storm read-back identical");
    assert_eq!(retry.exhausted, 0, "bounded storm never spends the budget");
    assert!(retry.resends > 0, "the storm actually dropped messages");

    let mut table = Table::new(["run", "write", "w/s", "read", "r/s"]);
    for (label, r) in [
        ("fault-free", &fault_free),
        ("retry-armed", &armed),
        ("storm", &storm),
    ] {
        table.row([
            label.to_string(),
            secs(r.write),
            format!("{:.1}", records_per_second(n, r.write)),
            secs(r.read),
            format!("{:.1}", records_per_second(n, r.read)),
        ]);
    }
    table.print();
    println!(
        "\nstorm recovery: {} resends, {} recovered, {} reply replays; \
         recovery latency mean {:.1} ms, p99 <= {:.1} ms",
        retry.resends,
        retry.recovered,
        retry.replays,
        retry.recovery.mean().as_nanos() as f64 / 1e6,
        retry.recovery.quantile_bound(0.99) as f64 / 1e6,
    );
    println!(
        "faults injected: {} drops, {} dups, {} delays, {} disk transients",
        retry.msg_drops, retry.msg_dups, retry.msg_delays, retry.disk_transients,
    );
    let slowdown = (storm.write + storm.read).as_secs_f64()
        / (fault_free.write + fault_free.read).as_secs_f64();
    println!(
        "\nHeadline: the storm costs {slowdown:.2}x wall-clock; contents and replies are unchanged"
    );

    emit(
        "ablate_faults",
        &[
            Metric::higher(
                "fault_free.writes_per_s",
                records_per_second(n, fault_free.write),
            ),
            Metric::higher(
                "fault_free.reads_per_s",
                records_per_second(n, fault_free.read),
            ),
            Metric::higher("storm.writes_per_s", records_per_second(n, storm.write)),
            Metric::higher("storm.reads_per_s", records_per_second(n, storm.read)),
            Metric::lower("storm.resends", retry.resends as f64),
            Metric::lower(
                "storm.recovery_p99_ns",
                retry.recovery.quantile_bound(0.99) as f64,
            ),
        ],
    );
}
