//! Ablation A1 — placement strategies (paper §3).
//!
//! Quantifies the paper's argument for round-robin interleaving over
//! Gamma-style chunking and hashing: (a) the probability that p
//! consecutive blocks land on p distinct nodes, and (b) measured
//! parallel-open read throughput under each placement.

use bridge_bench::profile::Profiler;
use bridge_bench::report::Table;
use bridge_bench::{records_per_second, scale};
use bridge_core::{
    BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec, JobDeliver, Placement,
    PlacementKind, PlacementSpec,
};
use parsim::{Ctx, SimDuration, TracerHandle};
use std::collections::HashSet;

fn distinct_window_fraction(kind: PlacementKind, breadth: u32, windows: u64) -> f64 {
    let placement = Placement::new(kind, breadth);
    let mut hits = 0u64;
    for w in 0..windows {
        let nodes: HashSet<u32> = (w..w + u64::from(breadth))
            .map(|b| placement.node_of(b).expect("computable").0)
            .collect();
        if nodes.len() == breadth as usize {
            hits += 1;
        }
    }
    hits as f64 / windows as f64
}

/// Reads the whole file through a parallel open of width p, with sink
/// workers, and returns the elapsed virtual time.
fn job_read_throughput(
    p: u32,
    blocks: u64,
    spec: PlacementSpec,
    tracer: Option<TracerHandle>,
) -> SimDuration {
    let mut config = BridgeConfig::paper(p);
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let worker_nodes = machine.lfs_nodes.clone();
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge
            .create(
                ctx,
                CreateSpec {
                    placement: spec,
                    size_hint: Some(blocks),
                    ..CreateSpec::default()
                },
            )
            .expect("create");
        for i in 0..blocks {
            bridge
                .seq_write(ctx, file, bridge_bench::workload::record_with_key(i, 3))
                .expect("write");
        }
        run_job_read(ctx, &mut bridge, file, &worker_nodes)
    })
}

fn run_job_read(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    file: BridgeFileId,
    worker_nodes: &[parsim::NodeId],
) -> SimDuration {
    let me = ctx.me();
    let workers: Vec<_> = worker_nodes
        .iter()
        .enumerate()
        .map(|(i, &node)| {
            ctx.spawn(node, format!("sink{i}"), move |c: &mut Ctx| loop {
                let env = c.recv_where(|e| e.is::<JobDeliver>() || e.is::<&str>());
                if env.is::<&str>() {
                    c.send(me, ());
                    return;
                }
            })
        })
        .collect();
    let job = bridge
        .parallel_open(ctx, file, workers.clone())
        .expect("job");
    let t0 = ctx.now();
    loop {
        let (_, eof) = bridge.job_read(ctx, job).expect("job read");
        if eof {
            break;
        }
    }
    let elapsed = ctx.now() - t0;
    for &w in &workers {
        ctx.send(w, "stop");
    }
    for _ in &workers {
        ctx.recv_as::<()>();
    }
    elapsed
}

fn main() {
    println!("## Ablation A1 — block placement strategies (paper §3)\n");

    println!("### Probability that p consecutive blocks hit p distinct nodes");
    let mut t = Table::new(["p", "round-robin", "hashed", "chunked", "p!/p^p (theory)"]);
    for &p in &[4u32, 8, 16, 32] {
        let theory: f64 = (1..=p).map(|i| f64::from(i) / f64::from(p)).product();
        t.row([
            p.to_string(),
            format!(
                "{:.3}",
                distinct_window_fraction(PlacementKind::RoundRobin { start: 0 }, p, 500)
            ),
            format!(
                "{:.3}",
                distinct_window_fraction(PlacementKind::Hashed { seed: 11 }, p, 500)
            ),
            format!(
                "{:.3}",
                distinct_window_fraction(
                    PlacementKind::Chunked {
                        blocks_per_chunk: 64
                    },
                    p,
                    500
                )
            ),
            format!("{theory:.5}"),
        ]);
    }
    t.print();
    println!(
        "\n(The paper: \"with p processors … the probability that p consecutive blocks\n\
         would be on p different processors would be extremely low.\" Round-robin\n\
         guarantees it; chunking keeps whole windows on one node.)\n"
    );

    println!("### Parallel-open read throughput (width p), 2048-block file, p = 8");
    let blocks = 2048 / scale();
    let p = 8u32;
    let mut t = Table::new(["placement", "elapsed", "records/s", "vs round-robin"]);
    let mut profiler = Profiler::new("ablate_placement");
    let rr = job_read_throughput(p, blocks, PlacementSpec::RoundRobin, None);
    for (name, slug, spec) in [
        ("round-robin", "rr", PlacementSpec::RoundRobin),
        ("hashed", "hashed", PlacementSpec::Hashed { seed: 11 }),
        ("chunked", "chunked", PlacementSpec::Chunked),
    ] {
        // Under --profile, attribute each placement's job-read pass.
        let tracer = profiler.arm(&format!("job_read_p8_{slug}"));
        let e = job_read_throughput(p, blocks, spec, tracer);
        profiler.capture();
        t.row([
            name.to_string(),
            format!("{:.1} s", e.as_secs_f64()),
            format!("{:.0}", records_per_second(blocks, e)),
            format!("{:.2}x", e.as_secs_f64() / rr.as_secs_f64()),
        ]);
    }
    t.print();
    println!(
        "\n(Round-robin keeps all p disks busy every wave; hashing collides within\n\
         waves; chunking serializes each wave on a single disk.)"
    );
}
