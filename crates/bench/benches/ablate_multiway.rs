//! Ablation A2 — local merge arity (paper §5.2).
//!
//! "In our implementation the constant for a local merge is higher than
//! the constant for a global merge, with the net result that the sort tool
//! as a whole displays super-linear speedup. With a faster (e.g.
//! multi-way) local merge, this anomaly should disappear." This bench
//! measures exactly that: sort speedup curves under 2-way vs multi-way
//! local merges.

use bridge_bench::profile::Profiler;
use bridge_bench::report::{mins, Table};
use bridge_bench::{file_blocks, speedup, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine};
use bridge_tools::{sort, LocalMergeArity, SortOptions, SortStats};
use parsim::TracerHandle;

fn run(p: u32, blocks: u64, arity: LocalMergeArity, tracer: Option<TracerHandle>) -> SortStats {
    let mut config = BridgeConfig::paper(p);
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, blocks, 13);
        let (_, stats) = sort(
            ctx,
            &mut bridge,
            src,
            &SortOptions {
                local_merge: arity,
                ..SortOptions::default()
            },
        )
        .expect("sort");
        stats
    })
}

fn main() {
    let blocks = file_blocks();
    println!("## Ablation A2 — 2-way vs multi-way local merge ({blocks} records)\n");

    let ps = [2u32, 4, 8, 16, 32];
    let mut profiler = Profiler::new("ablate_multiway");
    // Under --profile, attribute the widest sort of each arity.
    let mut run_one = |p: u32, arity: LocalMergeArity, label: Option<&str>| {
        let tracer = label.and_then(|l| profiler.arm(l));
        let stats = run(p, blocks, arity, tracer);
        profiler.capture();
        stats
    };
    let binary: Vec<SortStats> = ps
        .iter()
        .map(|&p| {
            run_one(
                p,
                LocalMergeArity::Binary,
                (p == 32).then_some("sort_p32_2way"),
            )
        })
        .collect();
    let multi: Vec<SortStats> = ps
        .iter()
        .map(|&p| {
            run_one(
                p,
                LocalMergeArity::MultiWay,
                (p == 32).then_some("sort_p32_multiway"),
            )
        })
        .collect();

    let mut t = Table::new([
        "p",
        "2-way local",
        "2-way total",
        "2-way passes",
        "multi local",
        "multi total",
    ]);
    for (i, &p) in ps.iter().enumerate() {
        t.row([
            p.to_string(),
            mins(binary[i].local_sort),
            mins(binary[i].total),
            binary[i].local_merge_passes.to_string(),
            mins(multi[i].local_sort),
            mins(multi[i].total),
        ]);
    }
    t.print();

    println!("\n### Doubling speedups (total time)");
    let mut t = Table::new(["p doubling", "2-way speedup", "multi-way speedup"]);
    for i in 1..ps.len() {
        t.row([
            format!("{} → {}", ps[i - 1], ps[i]),
            format!("{:.2}x", speedup(binary[i - 1].total, binary[i].total)),
            format!("{:.2}x", speedup(multi[i - 1].total, multi[i].total)),
        ]);
    }
    t.print();

    let b_overall = speedup(binary[0].total, binary[4].total);
    let m_overall = speedup(multi[0].total, multi[4].total);
    println!(
        "\np=2 → 32 overall: 2-way {b_overall:.1}x vs multi-way {m_overall:.1}x (ideal 16x).\n\
         The 2-way curve exceeds linear (merge passes fall out of the local phase as p\n\
         grows); the multi-way curve should sit near linear — the paper's prediction."
    );
}
