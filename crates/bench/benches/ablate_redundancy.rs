//! Ablation A6/A15 — the cost of fault tolerance (paper §6).
//!
//! "Interleaved files … are inherently intolerant of faults. A failure
//! anywhere in the system is fatal; it ruins every file. Replication
//! helps, but only at very high cost. Storage capacity must be doubled …
//! One might hope to reduce the amount of space required by using an
//! error-correcting scheme … but we see no obvious way to do so in a MIMD
//! environment with block-level interleaving."
//!
//! We measure what the authors weighed: write/read throughput and storage
//! overhead for no redundancy, mirroring (2×), and rotating block parity
//! (p/(p−1) — the scheme they thought obstructed), plus what the
//! redundancy layer costs when it matters:
//!
//! * **single stream** — one client appending through the server. The
//!   worst case: the parity read-modify-write sits on the latency path
//!   of every append. Recorded, not gated — this prices the scheme.
//! * **concurrent mix** — six writers pipelining straight at the
//!   instances while a client appends a parity-protected file through
//!   the server. The realistic regime: the parity updates compete for
//!   the same disks as everyone else. Gated at ≤ 1.25x over the
//!   unprotected mix.
//! * **degraded reads** — every block re-read (and verified) with a node
//!   down, reconstructed from the survivors on the fly.
//! * **rebuild pacing** — a spare racks into a populated machine and an
//!   online rebuild repopulates it at three paces, while a reader keeps
//!   reading; rebuild completion time trades against the reader's p99.

use bridge_bench::profile::Profiler;
use bridge_bench::report::{secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{file_blocks, scale};
use bridge_core::{
    BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec, Redundancy,
};
use bridge_efs::{LfsClient, LfsFileId, LfsOp};
use bridge_tools::{run_workers, ToolOptions, WorkerSpec};
use bytes::Bytes;
use parsim::{Ctx, SimDuration, TracerHandle};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const BREADTH: u32 = 4;
const WRITERS: usize = 6;
/// In-flight ops each direct writer keeps pipelined at its instance.
const WINDOW: usize = 8;

fn stream_blocks() -> u64 {
    (file_blocks() / 32).max(16)
}

fn rebuild_blocks() -> u64 {
    (file_blocks() / 16).max(48)
}

struct Run {
    write: SimDuration,
    read: SimDuration,
    degraded_read: Option<SimDuration>,
    blocks_stored: f64, // physical blocks per logical block
}

fn measure(p: u32, blocks: u64, redundancy: Redundancy, tracer: Option<TracerHandle>) -> Run {
    let mut config = BridgeConfig::paper(p);
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let victim = machine.lfs[1];
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge
            .create(
                ctx,
                CreateSpec {
                    redundancy,
                    ..CreateSpec::default()
                },
            )
            .expect("create");
        let t0 = ctx.now();
        for i in 0..blocks {
            bridge
                .seq_write(ctx, file, bridge_bench::workload::record_with_key(i, 6))
                .expect("write");
        }
        let write = ctx.now() - t0;

        bridge.open(ctx, file).expect("open");
        let t0 = ctx.now();
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        let read = ctx.now() - t0;

        let degraded_read = if redundancy == Redundancy::None {
            None
        } else {
            // The correctness gate rides along: every degraded block must
            // reconstruct to exactly the bytes that were written.
            fail(ctx, victim, true);
            bridge.open(ctx, file).expect("degraded open");
            let t0 = ctx.now();
            let mut i = 0u64;
            while let Some(block) = bridge.seq_read(ctx, file).expect("degraded read") {
                // The server returns the whole zero-padded data area;
                // the record must sit at its front, intact.
                let record = bridge_bench::workload::record_with_key(i, 6);
                assert!(
                    block.starts_with(&record) && block[record.len()..].iter().all(|&b| b == 0),
                    "degraded read of block {i} reconstructed the wrong bytes"
                );
                i += 1;
            }
            assert_eq!(i, blocks, "degraded read covered the whole file");
            let d = ctx.now() - t0;
            fail(ctx, victim, false);
            Some(d)
        };

        let blocks_stored = match redundancy {
            Redundancy::None => 1.0,
            Redundancy::Mirror => 2.0,
            Redundancy::Parity { .. } => f64::from(p) / f64::from(p - 1),
        };
        Run {
            write,
            read,
            degraded_read,
            blocks_stored,
        }
    })
}

fn fail(ctx: &mut Ctx, lfs: parsim::ProcId, failed: bool) {
    bridge_efs::set_failed(ctx, lfs, failed);
}

/// Blocks each direct writer streams in the concurrent mix. The bulk of
/// the machine's traffic: the parity stream must share disks with this.
fn mix_writer_blocks() -> u64 {
    stream_blocks() * 4
}

/// Blocks the (possibly parity-protected) bridge stream appends in the
/// mix — a minority share of the traffic, as on a real busy machine. The
/// gate bounds what protecting this stream adds to the machine's
/// completion time, not the stream's own latency (the single-stream
/// table above prices that).
fn mix_bridge_blocks() -> u64 {
    (stream_blocks() / 2).max(8)
}

/// The concurrent mix: six writers pipelining appends straight at the
/// instances while one client appends a file of the given redundancy
/// through the server. Returns the wall time until every worker is done.
fn measure_mix(redundancy: Redundancy) -> SimDuration {
    let config = BridgeConfig::paper(BREADTH)
        .with_2pc()
        .with_redundancy(redundancy);
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let frontend = machine.frontend;
    let lfs: Vec<(parsim::ProcId, parsim::NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut specs: Vec<WorkerSpec<u64>> = (0..WRITERS)
            .map(|w| {
                let (proc, node) = lfs[w % lfs.len()];
                WorkerSpec {
                    node,
                    name: format!("writer{w}"),
                    run: Box::new(move |c| {
                        let mut client = LfsClient::new();
                        let file = LfsFileId(0xA600 + w as u32);
                        client
                            .call(c, proc, LfsOp::Create { file })
                            .expect("create");
                        let mut inflight = VecDeque::new();
                        for i in 0..mix_writer_blocks() {
                            let data = Bytes::from(vec![(w as u8) << 4 | (i as u8 & 0xf); 1000]);
                            let op = LfsOp::Write {
                                file,
                                block: i as u32,
                                data,
                                hint: None,
                            };
                            inflight.push_back(client.send(c, proc, op));
                            if inflight.len() >= WINDOW {
                                let id = inflight.pop_front().expect("nonempty");
                                client.wait(c, proc, id).expect("write");
                            }
                        }
                        while let Some(id) = inflight.pop_front() {
                            client.wait(c, proc, id).expect("write");
                        }
                        Ok(mix_writer_blocks())
                    }),
                }
            })
            .collect();
        specs.push(WorkerSpec {
            node: frontend,
            name: "bridge-writer".into(),
            run: Box::new(move |c| {
                let mut bridge = BridgeClient::new(server);
                let file = bridge
                    .create(c, CreateSpec::default())
                    .expect("create redundant");
                for i in 0..mix_bridge_blocks() {
                    bridge
                        .seq_write(c, file, bridge_bench::workload::record_with_key(i, 6))
                        .expect("append");
                }
                Ok(mix_bridge_blocks())
            }),
        });
        let t0 = ctx.now();
        let done = run_workers(ctx, &ToolOptions::default(), specs).expect("workers");
        assert_eq!(
            done.iter().sum::<u64>(),
            WRITERS as u64 * mix_writer_blocks() + mix_bridge_blocks()
        );
        ctx.now() - t0
    })
}

/// One rebuild-pacing run: a parity file fills the machine, a spare racks
/// into LFS 1 (wiping its columns), then a paced rebuild repopulates it
/// while a reader keeps reading the whole file round-robin. Returns the
/// rebuild's completion time and the reader's p99 read latency over the
/// rebuild window.
fn measure_rebuild(chunk: u64, pause: SimDuration) -> (SimDuration, SimDuration) {
    let config = BridgeConfig::paper(BREADTH)
        .with_2pc()
        .with_redundancy(Redundancy::parity());
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let frontend = machine.frontend;
    let spare = machine.lfs[1];
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let blocks = rebuild_blocks();
        let mut bridge = BridgeClient::new(server);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..blocks {
            bridge
                .seq_write(ctx, file, bridge_bench::workload::record_with_key(i, 6))
                .expect("write");
        }
        assert!(
            bridge_efs::install_spare(ctx, spare),
            "device produced a spare"
        );

        // Two workers race: the rebuild driver and a reader measuring the
        // latency it sees while the machine rebuilds underneath it. The
        // flag is fiber-to-fiber signalling on one scheduler thread, so
        // the run stays deterministic.
        let done = Arc::new(AtomicBool::new(false));
        let done_reader = Arc::clone(&done);
        let specs: Vec<WorkerSpec<u64>> = vec![
            WorkerSpec {
                node: frontend,
                name: "rebuild".into(),
                run: Box::new(move |c| {
                    let mut bridge = BridgeClient::new(server);
                    let t0 = c.now();
                    bridge
                        .rebuild_paced(c, file, chunk, pause)
                        .expect("rebuild");
                    done.store(true, Ordering::Relaxed);
                    Ok((c.now() - t0).as_nanos())
                }),
            },
            WorkerSpec {
                node: frontend,
                name: "reader".into(),
                run: Box::new(move |c| {
                    let mut bridge = BridgeClient::new(server);
                    let mut lat: Vec<u64> = Vec::new();
                    let mut i = 0u64;
                    while !done_reader.load(Ordering::Relaxed) || lat.len() < 32 {
                        let t0 = c.now();
                        let block = bridge
                            .rand_read(c, file, i % blocks)
                            .expect("read during rebuild");
                        assert!(!block.is_empty());
                        lat.push((c.now() - t0).as_nanos());
                        i += 1;
                    }
                    lat.sort_unstable();
                    Ok(lat[(lat.len() * 99 / 100).min(lat.len() - 1)])
                }),
            },
        ];
        let done = run_workers(ctx, &ToolOptions::default(), specs).expect("workers");
        (
            SimDuration::from_nanos(done[0]),
            SimDuration::from_nanos(done[1]),
        )
    })
}

fn main() {
    let p = 8u32;
    let blocks = 1024 / scale();
    println!(
        "## Ablation A6 — the price of surviving one node failure (p = {p}, {blocks} blocks)\n"
    );

    let mut t = Table::new([
        "redundancy",
        "capacity",
        "write/blk",
        "read/blk",
        "degraded read/blk",
    ]);
    let mut profiler = Profiler::new("ablate_redundancy");
    let mut runs = Vec::new();
    for (name, slug, r) in [
        ("none (the prototype)", "none", Redundancy::None),
        ("mirrored", "mirrored", Redundancy::Mirror),
        ("rotating parity", "parity", Redundancy::parity()),
    ] {
        // Under --profile, attribute each redundancy mode's run.
        let tracer = profiler.arm(&format!("rw_p8_{slug}"));
        let run = measure(p, blocks, r, tracer);
        profiler.capture();
        t.row([
            name.to_string(),
            format!("{:.2}x", run.blocks_stored),
            format!("{:.1} ms", run.write.as_millis_f64() / blocks as f64),
            format!("{:.1} ms", run.read.as_millis_f64() / blocks as f64),
            run.degraded_read.map_or("fatal".to_string(), |d| {
                format!("{:.1} ms", d.as_millis_f64() / blocks as f64)
            }),
        ]);
        runs.push(run);
    }
    t.print();

    let mirror_write_overhead = runs[1].write.as_secs_f64() / runs[0].write.as_secs_f64();
    let parity_write_overhead = runs[2].write.as_secs_f64() / runs[0].write.as_secs_f64();
    let degraded_slowdown = runs[2]
        .degraded_read
        .expect("parity run went degraded")
        .as_secs_f64()
        / runs[2].read.as_secs_f64();

    println!(
        "\nMirroring doubles capacity and write cost; rotating parity stores only\n\
         p/(p−1) but pays the classic small-write penalty (a parity read-modify-write\n\
         per block) and reconstructs degraded reads from p−1 peers. The paper judged\n\
         block-level ECC infeasible on a MIMD machine; a rotating parity column —\n\
         published the same year as RAID — turns out to fit Bridge's structure\n\
         naturally. A second failure remains fatal in every mode."
    );

    // The concurrent mix, gated: the parity tax on a busy machine.
    println!("\n### Concurrent mix (p = {BREADTH}, {WRITERS} direct writers + 1 bridge stream)\n");
    let mix_none = measure_mix(Redundancy::None);
    let mix_parity = measure_mix(Redundancy::parity());
    let concurrent_overhead = mix_parity.as_secs_f64() / mix_none.as_secs_f64();
    let mut t = Table::new(["bridge stream", "wall time", "overhead"]);
    t.row(["unprotected".into(), secs(mix_none), "1.00x".into()]);
    t.row([
        "rotating parity".into(),
        secs(mix_parity),
        format!("{concurrent_overhead:.2}x"),
    ]);
    t.print();
    // The acceptance gate: fault-free parity must cost the realistic
    // concurrent mix no more than 25%.
    assert!(
        concurrent_overhead <= 1.25,
        "parity concurrent overhead {concurrent_overhead:.3}x exceeds the 1.25x budget"
    );

    // Rebuild pacing: how hard to push the rebuild vs what readers feel.
    println!(
        "\n### Online rebuild pacing (p = {BREADTH}, {} blocks)\n",
        rebuild_blocks()
    );
    let paces = [
        ("flat out", "fast", 64u64, SimDuration::from_micros(0)),
        ("paced", "paced", 8, SimDuration::from_millis(2)),
        ("trickle", "trickle", 2, SimDuration::from_millis(8)),
    ];
    let mut t = Table::new(["pace", "chunk", "pause", "rebuild", "reader p99"]);
    let mut rebuilds = Vec::new();
    for (name, _slug, chunk, pause) in paces {
        let (rebuild, p99) = measure_rebuild(chunk, pause);
        t.row([
            name.to_string(),
            chunk.to_string(),
            format!("{pause}"),
            secs(rebuild),
            format!("{:.1} ms", p99.as_millis_f64()),
        ]);
        rebuilds.push((rebuild, p99));
    }
    t.print();
    assert!(
        rebuilds[0].0 < rebuilds[2].0,
        "a flat-out rebuild must finish before a trickle"
    );
    println!(
        "\nA flat-out rebuild closes the degraded window fastest but queues its\n\
         reads and writes in front of the clients'; trickling keeps the reader's\n\
         tail flat and stretches the window. The knob is per-call: chunk blocks\n\
         between pauses."
    );

    // The overhead trend vs p for parity.
    println!("\n### Parity capacity overhead shrinks with p");
    let mut t = Table::new(["p", "parity capacity", "mirrored capacity"]);
    for &p in &[2u32, 4, 8, 16, 32] {
        t.row([
            p.to_string(),
            format!("{:.2}x", f64::from(p) / f64::from(p - 1).max(1.0)),
            "2.00x".to_string(),
        ]);
    }
    t.print();
    let _ = BridgeFileId(0);

    emit(
        "ablate_redundancy",
        &[
            Metric::lower("mirror.write_overhead", mirror_write_overhead),
            Metric::lower("parity.write_overhead", parity_write_overhead),
            Metric::lower("parity.degraded_read_slowdown", degraded_slowdown),
            Metric::lower("parity.concurrent_overhead", concurrent_overhead),
            Metric::lower("rebuild_fast.secs", rebuilds[0].0.as_secs_f64()),
            Metric::lower("rebuild_fast.read_p99_ns", rebuilds[0].1.as_nanos() as f64),
            Metric::lower("rebuild_trickle.secs", rebuilds[2].0.as_secs_f64()),
            Metric::lower(
                "rebuild_trickle.read_p99_ns",
                rebuilds[2].1.as_nanos() as f64,
            ),
        ],
    );
}
