//! Ablation A6 — the cost of fault tolerance (paper §6).
//!
//! "Interleaved files … are inherently intolerant of faults. A failure
//! anywhere in the system is fatal; it ruins every file. Replication
//! helps, but only at very high cost. Storage capacity must be doubled …
//! One might hope to reduce the amount of space required by using an
//! error-correcting scheme … but we see no obvious way to do so in a MIMD
//! environment with block-level interleaving."
//!
//! We measure what the authors weighed: write/read throughput and storage
//! overhead for no redundancy, mirroring (2×), and rotating block parity
//! (p/(p−1) — the scheme they thought obstructed), plus the degraded-read
//! penalty while a node is down.

use bridge_bench::profile::Profiler;
use bridge_bench::report::Table;
use bridge_bench::scale;
use bridge_core::{
    BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec, Redundancy,
};
use parsim::{Ctx, SimDuration, TracerHandle};

struct Run {
    write: SimDuration,
    read: SimDuration,
    degraded_read: Option<SimDuration>,
    blocks_stored: f64, // physical blocks per logical block
}

fn measure(p: u32, blocks: u64, redundancy: Redundancy, tracer: Option<TracerHandle>) -> Run {
    let mut config = BridgeConfig::paper(p);
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let victim = machine.lfs[1];
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge
            .create(
                ctx,
                CreateSpec {
                    redundancy,
                    ..CreateSpec::default()
                },
            )
            .expect("create");
        let t0 = ctx.now();
        for i in 0..blocks {
            bridge
                .seq_write(ctx, file, bridge_bench::workload::record_with_key(i, 6))
                .expect("write");
        }
        let write = ctx.now() - t0;

        bridge.open(ctx, file).expect("open");
        let t0 = ctx.now();
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        let read = ctx.now() - t0;

        let degraded_read = if redundancy == Redundancy::None {
            None
        } else {
            fail(ctx, victim, true);
            bridge.open(ctx, file).expect("degraded open");
            let t0 = ctx.now();
            while bridge.seq_read(ctx, file).expect("degraded read").is_some() {}
            let d = ctx.now() - t0;
            fail(ctx, victim, false);
            Some(d)
        };

        let blocks_stored = match redundancy {
            Redundancy::None => 1.0,
            Redundancy::Mirrored => 2.0,
            Redundancy::Parity => f64::from(p) / f64::from(p - 1),
        };
        Run {
            write,
            read,
            degraded_read,
            blocks_stored,
        }
    })
}

fn fail(ctx: &mut Ctx, lfs: parsim::ProcId, failed: bool) {
    bridge_efs::set_failed(ctx, lfs, failed);
}

fn main() {
    let p = 8u32;
    let blocks = 1024 / scale();
    println!(
        "## Ablation A6 — the price of surviving one node failure (p = {p}, {blocks} blocks)\n"
    );

    let mut t = Table::new([
        "redundancy",
        "capacity",
        "write/blk",
        "read/blk",
        "degraded read/blk",
    ]);
    let mut profiler = Profiler::new("ablate_redundancy");
    for (name, slug, r) in [
        ("none (the prototype)", "none", Redundancy::None),
        ("mirrored", "mirrored", Redundancy::Mirrored),
        ("rotating parity", "parity", Redundancy::Parity),
    ] {
        // Under --profile, attribute each redundancy mode's run.
        let tracer = profiler.arm(&format!("rw_p8_{slug}"));
        let run = measure(p, blocks, r, tracer);
        profiler.capture();
        t.row([
            name.to_string(),
            format!("{:.2}x", run.blocks_stored),
            format!("{:.1} ms", run.write.as_millis_f64() / blocks as f64),
            format!("{:.1} ms", run.read.as_millis_f64() / blocks as f64),
            run.degraded_read.map_or("fatal".to_string(), |d| {
                format!("{:.1} ms", d.as_millis_f64() / blocks as f64)
            }),
        ]);
    }
    t.print();

    println!(
        "\nMirroring doubles capacity and write cost; rotating parity stores only\n\
         p/(p−1) but pays the classic small-write penalty (a parity read-modify-write\n\
         per block) and reconstructs degraded reads from p−1 peers. The paper judged\n\
         block-level ECC infeasible on a MIMD machine; a rotating parity column —\n\
         published the same year as RAID — turns out to fit Bridge's structure\n\
         naturally. A second failure remains fatal in every mode."
    );

    // The overhead trend vs p for parity.
    println!("\n### Parity capacity overhead shrinks with p");
    let mut t = Table::new(["p", "parity capacity", "mirrored capacity"]);
    for &p in &[2u32, 4, 8, 16, 32] {
        t.row([
            p.to_string(),
            format!("{:.2}x", f64::from(p) / f64::from(p - 1).max(1.0)),
            "2.00x".to_string(),
        ]);
    }
    t.print();
    let _ = BridgeFileId(0);
}
