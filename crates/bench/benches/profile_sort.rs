//! Causal-profiler regression bench: one traced sort at p = 8 whose
//! virtual-time phase costs feed the `bench_gate` baseline, and whose
//! profiler invariants run as hard asserts on every invocation:
//!
//! - the trace passes [`validate_causality`],
//! - every op's category breakdown sums exactly to its latency,
//! - the whole-run critical path partitions `[0, makespan]` exactly and
//!   agrees with the kernel's `RunStats` end time,
//! - the worst untraced fraction stays under 5%.
//!
//! The gated metrics are sort-phase virtual times (which tracing must not
//! change — it is observation-only) plus the critical path's disk
//! fraction, so a profiler change that silently loses disk attribution
//! fails the gate even when timings hold.

use bridge_bench::profile::{Profiler, PROFILE_BINS};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{file_blocks, paper_machine_traced, write_workload};
use bridge_core::BridgeClient;
use bridge_tools::{sort, SortOptions};
use bridge_trace::{validate_causality, Category, ProfileReport, TraceCollector};

const P: u32 = 8;

fn main() {
    let blocks = file_blocks();
    println!("## Causal-profiler regression bench — traced sort, p = {P}, {blocks} records\n");

    let collector = TraceCollector::install();
    let (mut sim, machine) = paper_machine_traced(P, collector.as_tracer());
    let server = machine.server;
    let stats = sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = write_workload(ctx, &mut bridge, blocks, 7);
        let (_, stats) = sort(ctx, &mut bridge, src, &SortOptions::default()).expect("sort");
        stats
    });
    let run = sim.stats();
    let data = collector.take();

    validate_causality(&data).expect("trace causality holds");
    let report = ProfileReport::from_trace(&data, PROFILE_BINS);
    let profile = &report.profile;
    let cp = &profile.critical_path;

    for op in &profile.ops {
        assert_eq!(
            op.breakdown.total(),
            op.latency_nanos(),
            "op {} ({}): breakdown must partition its latency exactly",
            op.id,
            op.name,
        );
    }
    assert_eq!(
        cp.breakdown.total(),
        cp.makespan_nanos,
        "critical path must partition [0, makespan] exactly"
    );
    assert_eq!(
        cp.makespan_nanos,
        run.end_time.as_nanos(),
        "profiler makespan must agree with the kernel's RunStats end time"
    );
    let worst = profile.worst_untraced_fraction();
    assert!(
        worst <= 0.05,
        "worst untraced fraction {worst:.4} exceeds the 5% bar"
    );

    let disk = cp.breakdown.get(Category::DiskPosition) + cp.breakdown.get(Category::DiskTransfer);
    let disk_frac = disk as f64 / cp.makespan_nanos as f64;

    println!(
        "ops attributed: {} (worst untraced fraction {worst:.4})",
        profile.ops.len()
    );
    println!(
        "critical path: {:.2} s over {} flow hops, disk fraction {disk_frac:.3}",
        cp.makespan_nanos as f64 / 1e9,
        cp.hops
    );
    println!(
        "sort phases: local {:.2} s, merge {:.2} s, total {:.2} s",
        stats.local_sort.as_secs_f64(),
        stats.merge.as_secs_f64(),
        stats.total.as_secs_f64()
    );

    // Under --profile, also print and write the full report.
    Profiler::new("profile_sort").report(&format!("sort_p{P}"), &data);

    emit(
        "profile_sort",
        &[
            Metric::lower("sort_p8.local_secs", stats.local_sort.as_secs_f64()),
            Metric::lower("sort_p8.merge_secs", stats.merge.as_secs_f64()),
            Metric::lower("sort_p8.total_secs", stats.total.as_secs_f64()),
            Metric::higher("sort_p8.cp_disk_frac", disk_frac),
        ],
    );
}
