//! Baseline comparison — the paper's thesis, measured.
//!
//! "The current state of the art in parallel storage device hardware can
//! deliver effectively unlimited data rates to the file system. A
//! bottleneck remains, however, if the file system itself uses sequential
//! software…" We pit one conventional file system over increasingly
//! parallel *devices* (one spindle, a storage array, a striped set)
//! against Bridge's parallel *software* on the same aggregate hardware.

use bridge_baseline::{array_device, BaselineMachine, SeqFile, StripedDisk};
use bridge_bench::report::Table;
use bridge_bench::{records_per_second, scale, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine};
use bridge_efs::{EfsConfig, LfsFileId};
use parsim::{SimConfig, SimDuration, Simulation};
use simdisk::{BlockDevice, DiskGeometry, DiskProfile, SimDisk};

fn baseline_seq_read<D: BlockDevice + 'static>(device: D, blocks: u64) -> SimDuration {
    let mut sim = Simulation::new(SimConfig::default());
    let machine = BaselineMachine::build_with_device(&mut sim, device, EfsConfig::default());
    let lfs = machine.lfs;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut f = SeqFile::create(ctx, lfs, LfsFileId(1)).expect("create");
        for i in 0..blocks {
            f.append(ctx, bridge_bench::workload::record_with_key(i, 5))
                .expect("append");
        }
        let mut f = SeqFile::open(ctx, lfs, LfsFileId(1)).expect("open");
        let t0 = ctx.now();
        while f.read_next(ctx).expect("read").is_some() {}
        ctx.now() - t0
    })
}

/// Bridge: naive sequential read and the tool-view scan, same file.
fn bridge_seq_read(p: u32, blocks: u64) -> (SimDuration, SimDuration) {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(p));
    let server = machine.server;
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = write_workload(ctx, &mut bridge, blocks, 5);
        bridge.open(ctx, file).expect("open");
        let t0 = ctx.now();
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        let naive = ctx.now() - t0;
        let t0 = ctx.now();
        bridge_tools::summarize(
            ctx,
            &mut bridge,
            file,
            &bridge_tools::ToolOptions::default(),
        )
        .expect("summarize");
        let tool = ctx.now() - t0;
        (naive, tool)
    })
}

fn main() {
    let blocks = 2048 / scale();
    let geometry = DiskGeometry::default();
    let profile = DiskProfile::wren();
    println!(
        "## Baseline comparison — one FS over parallel devices vs Bridge ({blocks}-block file)\n"
    );

    println!("### Reading one file sequentially, 8 spindles of aggregate hardware");
    let single = baseline_seq_read(SimDisk::new(geometry, profile), blocks);
    let array = baseline_seq_read(array_device(geometry, profile, 8), blocks);
    let striped = baseline_seq_read(StripedDisk::new(geometry, profile, 8), blocks);
    let (naive8, tool8) = bridge_seq_read(8, blocks);

    let mut t = Table::new(["architecture", "per block", "records/s", "bound by"]);
    for (name, d, bound) in [
        ("one spindle, one FS", single, "device positioning"),
        ("storage array (8), one FS", array, "device + FS CPU"),
        (
            "striped set (8), one FS",
            striped,
            "FS software (CPU + queue)",
        ),
        ("Bridge (8), naive view", naive8, "server + one stream"),
        ("Bridge (8), tool view", tool8, "p parallel columns"),
    ] {
        t.row([
            name.to_string(),
            format!("{:.2} ms", d.as_millis_f64() / blocks as f64),
            format!("{:.0}", records_per_second(blocks, d)),
            bound.to_string(),
        ]);
    }
    t.print();

    println!("\n### Scaling the hardware: striped set vs Bridge tool view");
    let mut t = Table::new([
        "spindles p",
        "striped records/s",
        "bridge tool records/s",
        "bridge advantage",
    ]);
    for &p in &[2u32, 8, 32] {
        let s = baseline_seq_read(StripedDisk::new(geometry, profile, p), blocks);
        let (_, tool) = bridge_seq_read(p, blocks);
        t.row([
            p.to_string(),
            format!("{:.0}", records_per_second(blocks, s)),
            format!("{:.0}", records_per_second(blocks, tool)),
            format!("{:.1}x", s.as_secs_f64() / tool.as_secs_f64()),
        ]);
    }
    t.print();

    println!(
        "\nStriping makes the *device* nearly free, but one file system process still\n\
         touches every block: its curve is flat in p. Bridge runs p file systems and\n\
         lets the application meet them where the data is: its curve is linear in p.\n\
         That gap is the paper's reason to exist."
    );
}
