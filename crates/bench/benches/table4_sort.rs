//! Table 4 reproduction: merge sort tool performance on the paper's 10 MB
//! file for p ∈ {2, 4, 8, 16, 32} — local sort / merge / total columns —
//! plus the two figures beside it: records-per-second vs processors and
//! the local-sort vs parallel-merge time curves.

use bridge_bench::report::{ascii_series, mins, Table};
use bridge_bench::{
    file_blocks, paper_machine, records_per_second, speedup, write_workload, PAPER_PROCESSORS,
};
use bridge_core::BridgeClient;
use bridge_tools::{sort, SortOptions, SortStats};

const PAPER_LOCAL_MIN: [f64; 5] = [350.0, 98.0, 24.0, 6.0, 0.67];
const PAPER_MERGE_MIN: [f64; 5] = [17.0, 16.0, 11.0, 7.0, 4.45];
const PAPER_TOTAL_MIN: [f64; 5] = [367.0, 111.0, 35.0, 13.0, 5.12];

fn main() {
    let blocks = file_blocks();
    println!(
        "## Table 4 reproduction — merge sort tool ({} block-sized records, c = 512)\n",
        blocks
    );

    let mut all: Vec<SortStats> = Vec::new();
    for &p in &PAPER_PROCESSORS {
        let (mut sim, machine) = paper_machine(p);
        let server = machine.server;
        let stats = sim.block_on(machine.frontend, "bench", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let src = write_workload(ctx, &mut bridge, blocks, 7);
            let (out, stats) = sort(ctx, &mut bridge, src, &SortOptions::default()).expect("sort");
            // Sanity: output is the right size.
            assert_eq!(bridge.open(ctx, out).expect("open").size, blocks);
            stats
        });
        all.push(stats);
    }

    let mut table = Table::new([
        "Processors",
        "Local Sort",
        "Merge",
        "Total",
        "Paper Local",
        "Paper Merge",
        "Paper Total",
    ]);
    for (i, (&p, s)) in PAPER_PROCESSORS.iter().zip(&all).enumerate() {
        table.row([
            p.to_string(),
            mins(s.local_sort),
            mins(s.merge),
            mins(s.total),
            format!("{} min", PAPER_LOCAL_MIN[i]),
            format!("{} min", PAPER_MERGE_MIN[i]),
            format!("{} min", PAPER_TOTAL_MIN[i]),
        ]);
    }
    table.print();

    println!("\n### Figure beside Table 4 — records per second vs processors");
    let series: Vec<(f64, f64)> = PAPER_PROCESSORS
        .iter()
        .zip(&all)
        .map(|(&p, s)| (f64::from(p), records_per_second(blocks, s.total)))
        .collect();
    print!("{}", ascii_series("records/second", &series, 40));

    println!("\n### Figure — total time, local sort vs parallel merge");
    let total: Vec<(f64, f64)> = PAPER_PROCESSORS
        .iter()
        .zip(&all)
        .map(|(&p, s)| (f64::from(p), s.total.as_secs_f64() / 60.0))
        .collect();
    let local: Vec<(f64, f64)> = PAPER_PROCESSORS
        .iter()
        .zip(&all)
        .map(|(&p, s)| (f64::from(p), s.local_sort.as_secs_f64() / 60.0))
        .collect();
    let merge: Vec<(f64, f64)> = PAPER_PROCESSORS
        .iter()
        .zip(&all)
        .map(|(&p, s)| (f64::from(p), s.merge.as_secs_f64() / 60.0))
        .collect();
    print!("{}", ascii_series("total (min)", &total, 40));
    print!("{}", ascii_series("local sort (min)", &local, 40));
    print!("{}", ascii_series("parallel merge (min)", &merge, 40));

    // The headline claims.
    println!("\n### Speedup structure");
    let mut prev: Option<SortStats> = None;
    for (&p, s) in PAPER_PROCESSORS.iter().zip(&all) {
        if let Some(q) = prev {
            let sp = speedup(q.total, s.total);
            let local_sp = speedup(q.local_sort, s.local_sort);
            println!(
                "p {:>2} → {:>2}: total speedup {:.2}x (local sort {:.2}x{}), local merge passes {} → {}",
                p / 2,
                p,
                sp,
                local_sp,
                if local_sp > 2.05 { ", super-linear" } else { "" },
                q.local_merge_passes,
                s.local_merge_passes,
            );
        }
        prev = Some(*s);
    }
    let overall = speedup(all[0].total, all[4].total);
    let paper_overall = PAPER_TOTAL_MIN[0] / PAPER_TOTAL_MIN[4];
    let local_overall = speedup(all[0].local_sort, all[4].local_sort);
    println!(
        "\nOverall p=2 → p=32: total {overall:.1}x, local-sort phase {local_overall:.1}x \
         (paper: total {paper_overall:.1}x)."
    );
    println!(
        "The anomaly the paper describes lives in the local phase: every doubling of p\n\
         both doubles the disks and removes a local merge pass, so the local-sort\n\
         column shrinks super-linearly (see the >2x doubling speedups above). How far\n\
         that drags the *total* past linear depends on the local-merge constant —\n\
         the authors' EFS paid ~4 s/record there, ours ~75 ms/record, so their total\n\
         went super-linear while ours sits at near-ideal linear. `ablate_multiway`\n\
         shows the anomaly vanish when the local merge is multi-way, as they predict."
    );
}
