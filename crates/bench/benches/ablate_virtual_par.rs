//! Ablation A5 — virtual parallelism and the three views (paper §4.1, §6).
//!
//! The parallel-open view "offers true parallelism up to the interleaving
//! breadth of the Bridge file or the bandwidth of interprocessor
//! communication, whichever is least. It also offers virtual parallelism
//! to any reasonable degree" — but widths beyond p add lock-step overhead
//! without adding disks. And because job data flows *through the server
//! and across the interconnect*, even the best parallel-open width loses
//! to a tool that reads each column on its own node.

use bridge_bench::profile::Profiler;
use bridge_bench::report::Table;
use bridge_bench::{records_per_second, scale, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, JobDeliver};
use bridge_tools::{summarize, ToolOptions};
use parsim::{Ctx, SimDuration, TracerHandle};

fn measure(
    p: u32,
    blocks: u64,
    widths: &[u32],
    tracer: Option<TracerHandle>,
) -> (Vec<SimDuration>, SimDuration, SimDuration) {
    let mut config = BridgeConfig::paper(p);
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let lfs_nodes = machine.lfs_nodes.clone();
    let frontend = machine.frontend;
    let widths = widths.to_vec();
    sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = write_workload(ctx, &mut bridge, blocks, 31);

        let mut job_times = Vec::new();
        for &t in &widths {
            job_times.push(job_read_all(
                ctx,
                &mut bridge,
                file,
                t,
                frontend,
                &lfs_nodes,
            ));
        }

        // Naive sequential read for reference.
        bridge.open(ctx, file).expect("open");
        let t0 = ctx.now();
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        let naive = ctx.now() - t0;

        // Tool view: per-node column scan (summarize reads every block on
        // its own node and ships back a few bytes).
        let t0 = ctx.now();
        summarize(ctx, &mut bridge, file, &ToolOptions::default()).expect("summarize");
        let tool = ctx.now() - t0;

        (job_times, naive, tool)
    })
}

/// One full job-read pass with `t` sink workers placed round-robin on the
/// LFS nodes (as an application would).
fn job_read_all(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    file: BridgeFileId,
    t: u32,
    frontend: parsim::NodeId,
    lfs_nodes: &[parsim::NodeId],
) -> SimDuration {
    let me = ctx.me();
    let workers: Vec<_> = (0..t)
        .map(|i| {
            let node = if lfs_nodes.is_empty() {
                frontend
            } else {
                lfs_nodes[i as usize % lfs_nodes.len()]
            };
            ctx.spawn(node, format!("sink{i}"), move |c: &mut Ctx| loop {
                let env = c.recv_where(|e| e.is::<JobDeliver>() || e.is::<&str>());
                if env.is::<&str>() {
                    c.send(me, ());
                    return;
                }
            })
        })
        .collect();
    let job = bridge
        .parallel_open(ctx, file, workers.clone())
        .expect("job");
    let t0 = ctx.now();
    loop {
        let (_, eof) = bridge.job_read(ctx, job).expect("job read");
        if eof {
            break;
        }
    }
    let elapsed = ctx.now() - t0;
    bridge.job_close(ctx, job).expect("close");
    for &w in &workers {
        ctx.send(w, "stop");
    }
    for _ in &workers {
        ctx.recv_as::<()>();
    }
    elapsed
}

fn main() {
    let p = 8u32;
    let blocks = 4096 / scale();
    let widths = [1u32, 2, 4, 8, 16, 32];
    println!(
        "## Ablation A5 — virtual parallelism and the three views (p = {p}, {blocks} blocks)\n"
    );

    // Under --profile, attribute the whole three-view comparison run.
    let mut profiler = Profiler::new("ablate_virtual_par");
    let tracer = profiler.arm("views_p8");
    let (job_times, naive, tool) = measure(p, blocks, &widths, tracer);
    profiler.capture();

    let mut t = Table::new(["view", "width t", "elapsed", "records/s"]);
    t.row([
        "naive sequential".to_string(),
        "-".to_string(),
        format!("{:.1} s", naive.as_secs_f64()),
        format!("{:.0}", records_per_second(blocks, naive)),
    ]);
    for (&w, &e) in widths.iter().zip(&job_times) {
        let label = if w < p {
            "parallel open (t < p)"
        } else if w == p {
            "parallel open (t = p)"
        } else {
            "parallel open (t > p, virtual)"
        };
        t.row([
            label.to_string(),
            w.to_string(),
            format!("{:.1} s", e.as_secs_f64()),
            format!("{:.0}", records_per_second(blocks, e)),
        ]);
    }
    t.row([
        "tool view (per-node scan)".to_string(),
        p.to_string(),
        format!("{:.1} s", tool.as_secs_f64()),
        format!("{:.0}", records_per_second(blocks, tool)),
    ]);
    t.print();

    println!(
        "\nThroughput rises with t up to t = p (true parallelism), then flattens —\n\
         virtual parallelism is correct but adds no disks. The tool view beats\n\
         every server-mediated width because blocks never cross the interconnect:\n\
         \"the exportation of user-level code allows data to be filtered before\n\
         it must be moved.\""
    );
}
