//! Ablation A16 — what always-on telemetry costs: the live health
//! registry (lock-free counters, per-op latency histogram, event
//! journal) armed but never polled, against the same machine with the
//! registry disarmed (p = 4, Wren disks, WAL + 2PC + parity — every
//! counter family in the hot path).
//!
//! Telemetry is observation-only by construction: counter updates
//! happen host-side between events and consume no virtual time, so the
//! armed run *must* return bit-identical `RunStats` — asserted here,
//! not just tested. What arming can cost is host compute (per-batch
//! counter flushes and histogram records), and that is the gate:
//! armed-but-unpolled may cost at most 1.05x the disarmed run.
//!
//! The cost is measured in on-CPU time, not wall-clock. The default
//! engine runs the whole simulation as fibers on the calling thread,
//! so the thread's scheduler runtime (`/proc/thread-self/schedstat` on
//! Linux) prices exactly the work under test while staying immune to
//! the preemption noise that makes wall-clock swing ±10% on a shared
//! CI host; where that clock is unavailable the bench falls back to
//! wall time. The regimes run interleaved and the gate compares the
//! ratio of per-regime medians. A sampler-polled run (one snapshot per
//! 10 virtual ms) is measured alongside, ungated — it prices the
//! dashboard itself.

use bridge_bench::report::{secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{file_blocks, records_per_second};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, Redundancy};
use parsim::{RunStats, SimDuration};
use std::time::Instant;

const BREADTH: u32 = 4;
/// Interleaved disarmed/armed pairs feeding the gate; the estimator is
/// the ratio of per-regime medians, so its noise shrinks roughly with
/// the square root of the pair count.
const PAIRS: usize = 21;
/// Repetitions of the sampler-polled regime (ungated, so a few suffice).
const POLL_REPS: usize = 3;

fn stream_blocks() -> u64 {
    // 4x the scaled file so each run is long enough (~0.3 CPU-seconds
    // at quick scale) that per-run cache and frequency transients stay
    // small against the quantity under test.
    file_blocks() * 4
}

/// The measured machine: everything armed counters watch — WAL rings,
/// 2PC, parity redundancy — so every counter family is on the hot path.
fn config(telemetry: bool) -> BridgeConfig {
    let mut c = BridgeConfig::paper(BREADTH)
        .with_2pc()
        .with_redundancy(Redundancy::parity());
    c.telemetry = telemetry;
    c
}

/// One run: append-heavy traffic through the server (every block lands
/// on data plus parity columns, under 2PC-backed creates), then a full
/// read-back. Returns the kernel counters and the virtual elapsed time.
fn run_once(config: &BridgeConfig, poll: bool) -> (RunStats, SimDuration) {
    let (mut sim, machine) = BridgeMachine::build(config);
    if poll {
        let registry = machine.telemetry.clone().expect("polled run is armed");
        sim.set_sampler(SimDuration::from_millis(10), move |at, stats| {
            // The dashboard's cost: assemble the full frame each poll.
            let snap = registry.snapshot(at, Some(*stats));
            std::hint::black_box(&snap);
        });
    }
    let server = machine.server;
    let blocks = stream_blocks();
    let elapsed = sim.block_on(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let t0 = ctx.now();
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..blocks {
            bridge
                .seq_write(ctx, file, vec![i as u8; 256])
                .expect("append");
        }
        bridge.open(ctx, file).expect("open");
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        ctx.now() - t0
    });
    (sim.stats(), elapsed)
}

/// On-CPU seconds consumed so far by the calling thread, from the
/// scheduler's own ledger (`sum_exec_runtime`, nanosecond resolution).
/// The run-to-completion engine executes the entire simulation on this
/// thread, so deltas of this clock price exactly the work under test
/// and exclude time spent preempted. `None` off Linux or when the
/// kernel does not expose schedstats.
fn thread_cpu_seconds() -> Option<f64> {
    let text = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
    let on_cpu_nanos: u64 = text.split_whitespace().next()?.parse().ok()?;
    Some(on_cpu_nanos as f64 * 1e-9)
}

/// One cost sample around `f`: on-CPU seconds when available, else
/// wall-clock seconds. Never mixes the two within a process — if the
/// CPU clock worked for the first read it works for the second.
fn time_cost<T>(f: impl FnOnce() -> T) -> (T, f64) {
    match thread_cpu_seconds() {
        Some(cpu0) => {
            let value = f();
            let cpu1 = thread_cpu_seconds().expect("schedstat disappeared mid-run");
            (value, cpu1 - cpu0)
        }
        None => {
            let t0 = Instant::now();
            let value = f();
            (value, t0.elapsed().as_secs_f64())
        }
    }
}

/// Median of a small sample (averages the middle pair when even).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// One full measurement round: interleaved disarmed/armed pairs (plus a
/// few ungated polled reps), so slow drift in the host — turbo states,
/// cache warmth, noisy neighbours — lands on both gated regimes alike.
/// Returns per-regime median costs and the last run of each regime.
fn measure_round(with_polled: bool) -> ([f64; 3], [Option<(RunStats, SimDuration)>; 3]) {
    let mut host: [Vec<f64>; 3] = Default::default();
    let mut runs: [Option<(RunStats, SimDuration)>; 3] = [None, None, None];
    for rep in 0..PAIRS {
        let mut regimes = vec![(0usize, false, false), (1, true, false)];
        if with_polled && rep < POLL_REPS {
            regimes.push((2, true, true));
        }
        for (i, telemetry, poll) in regimes {
            let cfg = config(telemetry);
            let (run, cost) = time_cost(|| run_once(&cfg, poll));
            host[i].push(cost);
            runs[i] = Some(run);
        }
    }
    if std::env::var("BRIDGE_BENCH_DEBUG").is_ok() {
        for (name, xs) in [
            ("disarmed", &host[0]),
            ("armed", &host[1]),
            ("polled", &host[2]),
        ] {
            let line: Vec<String> = xs.iter().map(|x| format!("{x:.4}")).collect();
            eprintln!("{name}: {}", line.join(" "));
        }
    }
    let medians = [
        median(host[0].clone()),
        median(host[1].clone()),
        if host[2].is_empty() {
            0.0
        } else {
            median(host[2].clone())
        },
    ];
    (medians, runs)
}

fn main() {
    println!(
        "## Ablation A16 — telemetry overhead (p = {BREADTH}, {} blocks, \
         ratio of medians over {PAIRS} interleaved pairs)\n",
        stream_blocks()
    );

    // One discarded warmup: the first run pays one-time costs (page
    // faults, branch and cache warmup) that no regime should inherit.
    let _ = run_once(&config(false), false);

    // The per-regime medians still carry a few percent of environmental
    // noise on a shared host, and the true overhead sits near 1.0x, so a
    // single round can breach the 1.05x gate spuriously. A breach
    // therefore triggers a full re-measure (up to two): interference
    // does not repeat three rounds running, while a genuine regression
    // past the budget fails every round.
    const ROUNDS: usize = 3;
    let (mut medians, mut runs) = measure_round(true);
    let (polled_median, polled_run) = (medians[2], runs[2]);
    for round in 1..ROUNDS {
        if medians[1] / medians[0] <= 1.05 {
            break;
        }
        println!(
            "round {round}: armed overhead {:.3}x breached the gate; re-measuring\n",
            medians[1] / medians[0]
        );
        (medians, runs) = measure_round(false);
        medians[2] = polled_median;
        runs[2] = polled_run;
    }
    let (disarmed, armed, polled) = (
        runs[0].expect("ran"),
        runs[1].expect("ran"),
        runs[2].expect("ran"),
    );

    // The contract before the cost: observation never changes the run.
    assert_eq!(
        disarmed.0, armed.0,
        "arming telemetry changed the kernel's RunStats"
    );
    assert_eq!(
        disarmed.0, polled.0,
        "sampler polling changed the kernel's RunStats"
    );

    // Ratio of medians, not median of per-rep ratios: single reps on a
    // shared host swing ±10%, and pairing adjacent runs does not cancel
    // that — the medians themselves are what converge.
    let armed_overhead = medians[1] / medians[0];
    let polled_overhead = medians[2] / medians[0];

    let clock = if thread_cpu_seconds().is_some() {
        "cpu"
    } else {
        "wall"
    };
    let mut t = Table::new(["regime", "virtual", "cost (median)", "overhead"]);
    for (name, i, overhead) in [
        ("disarmed", 0usize, 1.0),
        ("armed, unpolled", 1, armed_overhead),
        ("armed + sampler", 2, polled_overhead),
    ] {
        t.row([
            name.to_string(),
            secs(disarmed.1),
            format!("{:.3} {clock}-s", medians[i]),
            format!("{overhead:.3}x"),
        ]);
    }
    t.print();

    // The acceptance gate: always-on telemetry may cost at most 5%.
    assert!(
        armed_overhead <= 1.05,
        "armed-but-unpolled overhead {armed_overhead:.3}x exceeds the 1.05x budget"
    );

    println!(
        "\narmed overhead: {armed_overhead:.3}x (budget 1.05x); \
         polled overhead: {polled_overhead:.3}x"
    );

    emit(
        "ablate_telemetry",
        &[
            Metric::lower("telemetry.virt_secs", disarmed.1.as_secs_f64()),
            Metric::higher(
                "telemetry.blocks_per_s",
                records_per_second(stream_blocks(), disarmed.1),
            ),
            Metric::lower("telemetry.armed_overhead", armed_overhead),
            Metric::lower("telemetry.polled_overhead", polled_overhead),
        ],
    );
}
