//! Ablation A13b — parallel fsck: checking all p LFS instances at once.
//!
//! A Bridge machine's consistency check decomposes the way everything
//! else in the system does: each LFS audits its own directory, chains,
//! and allocator, so `pfsck` can run the p audits concurrently (one
//! worker per node, tree fan-out) instead of visiting instances one at a
//! time from the controller. This bench populates a p = 32 machine,
//! then runs the identical check in both [`FsckMode`]s on identically
//! populated machines and reports the speedup — the crash-era analogue
//! of the copy tool's O(n/p + log p) claim.

use bridge_bench::report::{secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{file_blocks, write_workload};
use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine};
use bridge_tools::{pfsck, FsckMode, FsckOptions, FsckVerdict};
use parsim::{NodeId, ProcId};

const BREADTH: u32 = 32;

fn blocks() -> u64 {
    file_blocks() / 4
}

/// Builds a fresh machine, fills it with `blocks()` striped records, and
/// runs one machine-wide `pfsck --check` in `mode`.
fn measure(mode: FsckMode) -> FsckVerdict {
    let config = BridgeConfig::paper(BREADTH).with_wal();
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let pairs: Vec<(ProcId, NodeId)> = machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect();
    sim.block_on(machine.frontend, "fsck-bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        write_workload(ctx, &mut bridge, blocks(), 8);
        pfsck(
            ctx,
            &pairs,
            &FsckOptions {
                mode,
                ..FsckOptions::default()
            },
        )
        .expect("pfsck")
    })
}

fn main() {
    println!(
        "## Ablation A13b — parallel vs serial fsck (p = {BREADTH}, {} blocks)\n",
        blocks()
    );

    let serial = measure(FsckMode::Serial);
    let parallel = measure(FsckMode::Parallel);

    assert!(serial.clean(), "serial check dirty: {:?}", serial.errors());
    assert!(
        parallel.clean(),
        "parallel check dirty: {:?}",
        parallel.errors()
    );
    assert_eq!(
        serial.reports, parallel.reports,
        "both modes must report identical per-instance findings"
    );

    let speedup = serial.elapsed.as_secs_f64() / parallel.elapsed.as_secs_f64();
    let mut t = Table::new(["mode", "elapsed", "speedup"]);
    t.row(["serial".to_string(), secs(serial.elapsed), "1.00x".into()]);
    t.row([
        "parallel".to_string(),
        secs(parallel.elapsed),
        format!("{speedup:.2}x"),
    ]);
    t.print();

    let files: u32 = parallel.reports.iter().map(|r| r.files).sum();
    let audited: u32 = parallel.reports.iter().map(|r| r.blocks).sum();
    println!(
        "\n{files} directory entries, {audited} blocks audited; parallel fsck is \
         {speedup:.2}x faster at p = {BREADTH}"
    );

    // The decomposition claim as a hard bar: concurrent instance audits
    // must clearly beat the controller's one-at-a-time visit.
    assert!(
        speedup >= 4.0,
        "parallel fsck speedup collapsed: {speedup:.2}x"
    );

    emit(
        "fsck_speedup",
        &[
            Metric::lower("fsck.serial_secs", serial.elapsed.as_secs_f64()),
            Metric::lower("fsck.parallel_secs", parallel.elapsed.as_secs_f64()),
            Metric::higher("fsck.speedup_p32", speedup),
        ],
    );
}
