//! Batching ablation: run-based scatter-gather I/O versus the paper's
//! block-at-a-time protocol, for batch depths {1, 2, 8, 32} and machine
//! breadths {4, 16, 32}.
//!
//! Two sweeps:
//!
//! 1. **Server cursors** — a naive client writes then re-reads the 10 MB
//!    file sequentially, with `BridgeServerConfig::batch` controlling the
//!    server's LFS run size (read-ahead and write-behind per cursor).
//! 2. **Copy tool** — the Table 3 workload with `ToolOptions::batch`
//!    controlling the per-worker column streams.
//!
//! Since the simulation is deterministic, per-phase kernel counters come
//! from two-run subtraction: a setup-only run and a setup-plus-phase run
//! with the same seed produce identical setup traffic, so the difference
//! is the measured phase alone.

use bridge_bench::profile::Profiler;
use bridge_bench::report::{count, kernel_stats, secs, Table};
use bridge_bench::results::{emit, Metric};
use bridge_bench::{file_blocks, speedup, write_workload};
use bridge_core::{BatchPolicy, BridgeClient, BridgeConfig, BridgeMachine};
use bridge_tools::{copy, ToolOptions};
use parsim::{Ctx, RunStats, SimDuration, TracerHandle};
use std::sync::mpsc;

const DEPTHS: [u32; 4] = [1, 2, 8, 32];
const PROCESSORS: [u32; 3] = [4, 16, 32];

fn policy(depth: u32) -> BatchPolicy {
    if depth <= 1 {
        BatchPolicy::Off
    } else {
        BatchPolicy::Runs(depth)
    }
}

/// Runs `body` on the paper machine at breadth `p` with the server batch
/// policy set, returning the body's result and the whole run's kernel
/// counters.
fn run_instrumented<R: Send + 'static>(
    p: u32,
    server_batch: BatchPolicy,
    tracer: Option<TracerHandle>,
    body: impl FnOnce(&mut Ctx, &mut BridgeClient) -> R + Send + 'static,
) -> (R, RunStats) {
    let mut config = BridgeConfig::paper(p);
    config.server.batch = server_batch;
    config.tracer = tracer;
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    let (tx, rx) = mpsc::channel();
    sim.spawn(machine.frontend, "bench", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let _ = tx.send(body(ctx, &mut bridge));
    });
    let stats = sim.run();
    (rx.try_recv().expect("bench body completed"), stats)
}

/// One phase measurement via two-run subtraction: `(elapsed, messages,
/// events)` attributable to the phase alone.
struct PhaseCost {
    elapsed: SimDuration,
    messages: u64,
    events: u64,
}

fn sweep_cursors(blocks: u64) {
    println!("### Sweep 1 — server cursors (naive sequential write + read, {blocks} blocks)\n");
    let measure = |p: u32, depth: u32| -> (PhaseCost, PhaseCost) {
        let batch = policy(depth);
        // Run A: create only. Run B: create + write. Run C: create +
        // write + read. Subtraction isolates the write and read phases.
        let (_, base) = run_instrumented(p, batch, None, move |ctx, bridge| {
            bridge.create(ctx, Default::default()).expect("create");
        });
        let (write_t, with_write) = run_instrumented(p, batch, None, move |ctx, bridge| {
            let t0 = ctx.now();
            write_workload(ctx, bridge, blocks, 42);
            ctx.now() - t0
        });
        let (read_t, with_read) = run_instrumented(p, batch, None, move |ctx, bridge| {
            let file = write_workload(ctx, bridge, blocks, 42);
            bridge.open(ctx, file).expect("open");
            let t0 = ctx.now();
            let mut read = 0u64;
            while let Some(block) = bridge.seq_read(ctx, file).expect("read") {
                read += block.len().min(1) as u64;
            }
            assert_eq!(read, blocks);
            ctx.now() - t0
        });
        let write = PhaseCost {
            elapsed: write_t,
            messages: with_write.messages - base.messages,
            events: with_write.events - base.events,
        };
        let read = PhaseCost {
            elapsed: read_t,
            messages: with_read.messages - with_write.messages,
            events: with_read.events - with_write.events,
        };
        (write, read)
    };

    for &p in &PROCESSORS {
        let mut table = Table::new([
            "Depth",
            "Write Time",
            "Write Msgs",
            "Read Time",
            "Read Msgs",
            "Read Speedup",
            "Msg Reduction",
        ]);
        let mut baseline: Option<(SimDuration, u64)> = None;
        for &depth in &DEPTHS {
            let (write, read) = measure(p, depth);
            let (t1, m1) = *baseline.get_or_insert((read.elapsed, read.messages));
            table.row([
                if depth == 1 {
                    "1 (Off)".to_string()
                } else {
                    depth.to_string()
                },
                secs(write.elapsed),
                count(write.messages),
                secs(read.elapsed),
                count(read.messages),
                format!("{:.2}x", speedup(t1, read.elapsed)),
                format!("{:.2}x", m1 as f64 / read.messages as f64),
            ]);
            let _ = (write.events, read.events);
        }
        println!("p = {p}:\n");
        table.print();
        println!();
    }
}

fn sweep_copy(blocks: u64, profiler: &mut Profiler) {
    println!("### Sweep 2 — copy tool ({blocks} blocks, per-worker column streams)\n");
    let mut measure = |p: u32, depth: u32| -> (PhaseCost, String) {
        let batch = policy(depth);
        // Setup (write_workload) runs unbatched in both runs so the
        // subtraction isolates the copy phase exactly.
        let (_, base) = run_instrumented(p, BatchPolicy::Off, None, move |ctx, bridge| {
            write_workload(ctx, bridge, blocks, 42);
        });
        // Under --profile, attribute the headline-breadth copies.
        let tracer = if p == 32 && (depth == 1 || depth == 8) {
            profiler.arm(&format!("copy_p{p}_depth{depth}"))
        } else {
            None
        };
        let (elapsed, with_copy) =
            run_instrumented(p, BatchPolicy::Off, tracer, move |ctx, bridge| {
                let src = write_workload(ctx, bridge, blocks, 42);
                let opts = ToolOptions {
                    batch,
                    ..ToolOptions::default()
                };
                let (_, stats) = copy(ctx, bridge, src, &opts).expect("copy");
                assert_eq!(stats.blocks, blocks);
                stats.elapsed
            });
        profiler.capture();
        let cost = PhaseCost {
            elapsed,
            messages: with_copy.messages - base.messages,
            events: with_copy.events - base.events,
        };
        (cost, kernel_stats(&with_copy))
    };

    let mut headline: Option<(u64, u64)> = None;
    let mut tracked: Vec<Metric> = Vec::new();
    for &p in &PROCESSORS {
        let mut table = Table::new([
            "Depth",
            "Copy Time",
            "Messages",
            "Events",
            "Speedup",
            "Msg Reduction",
        ]);
        let mut baseline: Option<(SimDuration, u64)> = None;
        let mut kernel_lines = Vec::new();
        for &depth in &DEPTHS {
            let (cost, kernel) = measure(p, depth);
            let (t1, m1) = *baseline.get_or_insert((cost.elapsed, cost.messages));
            if p == 32 && depth == 8 {
                headline = Some((m1, cost.messages));
            }
            if p == 32 && (depth == 1 || depth == 8) {
                tracked.push(Metric::lower(
                    format!("copy_p32_depth{depth}.secs"),
                    cost.elapsed.as_secs_f64(),
                ));
                tracked.push(Metric::lower(
                    format!("copy_p32_depth{depth}.messages"),
                    cost.messages as f64,
                ));
            }
            table.row([
                if depth == 1 {
                    "1 (Off)".to_string()
                } else {
                    depth.to_string()
                },
                secs(cost.elapsed),
                count(cost.messages),
                count(cost.events),
                format!("{:.2}x", speedup(t1, cost.elapsed)),
                format!("{:.2}x", m1 as f64 / cost.messages as f64),
            ]);
            kernel_lines.push(format!("depth {depth:>2}: {kernel}"));
        }
        println!("p = {p}:\n");
        table.print();
        println!("\nWhole-run kernel counters (setup + copy):");
        for line in kernel_lines {
            println!("  {line}");
        }
        println!();
    }

    // The acceptance bar: Runs(8) at p=32 must deliver ≥5x fewer messages
    // on the copy workload than block-at-a-time.
    let (unbatched, batched) = headline.expect("p=32 depth=8 measured");
    let reduction = unbatched as f64 / batched as f64;
    println!(
        "Headline: copy at p=32 with depth 8 delivers {reduction:.1}x fewer messages \
         ({} -> {})",
        count(unbatched),
        count(batched)
    );
    assert!(
        reduction >= 5.0,
        "expected >=5x message reduction at p=32 depth=8, got {reduction:.2}x"
    );
    tracked.push(Metric::higher("copy_p32_depth8.msg_reduction", reduction));
    emit("ablate_batch_io", &tracked);
}

fn main() {
    let blocks = file_blocks();
    println!(
        "## Batching ablation — run-based scatter-gather I/O ({} blocks ≈ {:.0} MB file)\n",
        blocks,
        blocks as f64 * 1024.0 / (1024.0 * 1024.0)
    );
    let mut profiler = Profiler::new("ablate_batch_io");
    sweep_cursors(blocks);
    sweep_copy(blocks, &mut profiler);
}
