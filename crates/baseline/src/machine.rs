//! Baseline "machines": one conventional file system over one (possibly
//! internally parallel) device — the architecture Bridge is measured
//! against. However fast the device, there is a single LFS process, a
//! single request queue, and a single CPU in the I/O path.

use bridge_efs::{spawn_lfs, Efs, EfsConfig, LfsClient, LfsData, LfsFileId, LfsOp};
use parsim::{Ctx, NodeId, ProcId, Simulation};
use simdisk::{BlockAddr, BlockDevice};

/// A built baseline machine: one I/O node running the file system, plus a
/// frontend node for applications.
#[derive(Debug)]
pub struct BaselineMachine {
    /// The node hosting the file system and its device.
    pub io_node: NodeId,
    /// The LFS server process.
    pub lfs: ProcId,
    /// A node for application processes.
    pub frontend: NodeId,
}

impl BaselineMachine {
    /// Stands up a single file system over `device` inside `sim`.
    pub fn build_with_device<D: BlockDevice + 'static>(
        sim: &mut Simulation,
        device: D,
        efs: EfsConfig,
    ) -> BaselineMachine {
        let io_node = sim.add_node("baseline-io");
        let frontend = sim.add_node("baseline-frontend");
        let fs = Efs::format(device, efs);
        let lfs = spawn_lfs(sim, io_node, "baseline-fs", fs);
        BaselineMachine {
            io_node,
            lfs,
            frontend,
        }
    }
}

/// A thin sequential-file helper over the stateless LFS protocol, so
/// baseline benchmarks read like their Bridge counterparts.
#[derive(Debug)]
pub struct SeqFile {
    lfs: ProcId,
    file: LfsFileId,
    client: LfsClient,
    hint: Option<BlockAddr>,
    cursor: u32,
    size: u32,
}

impl SeqFile {
    /// Creates `file` on `lfs`.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn create(
        ctx: &mut Ctx,
        lfs: ProcId,
        file: LfsFileId,
    ) -> Result<SeqFile, bridge_efs::EfsError> {
        let mut client = LfsClient::new();
        client.call(ctx, lfs, LfsOp::Create { file })?;
        Ok(SeqFile {
            lfs,
            file,
            client,
            hint: None,
            cursor: 0,
            size: 0,
        })
    }

    /// Opens an existing `file` on `lfs`, positioning at block 0.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn open(
        ctx: &mut Ctx,
        lfs: ProcId,
        file: LfsFileId,
    ) -> Result<SeqFile, bridge_efs::EfsError> {
        let mut client = LfsClient::new();
        let size = match client.call(ctx, lfs, LfsOp::Stat { file })? {
            LfsData::Info(info) => info.size,
            _ => 0,
        };
        Ok(SeqFile {
            lfs,
            file,
            client,
            hint: None,
            cursor: 0,
            size,
        })
    }

    /// Blocks in the file.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Appends one block (up to 1000 bytes).
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn append(&mut self, ctx: &mut Ctx, data: Vec<u8>) -> Result<(), bridge_efs::EfsError> {
        let reply = self.client.call(
            ctx,
            self.lfs,
            LfsOp::Write {
                file: self.file,
                block: self.size,
                data: data.into(),
                hint: self.hint,
            },
        )?;
        if let LfsData::Written { addr } = reply {
            self.hint = Some(addr);
        }
        self.size += 1;
        Ok(())
    }

    /// Reads the next block sequentially; `None` at end of file.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn read_next(
        &mut self,
        ctx: &mut Ctx,
    ) -> Result<Option<bytes::Bytes>, bridge_efs::EfsError> {
        if self.cursor >= self.size {
            return Ok(None);
        }
        let reply = self.client.call(
            ctx,
            self.lfs,
            LfsOp::Read {
                file: self.file,
                block: self.cursor,
                hint: self.hint,
            },
        )?;
        match reply {
            LfsData::Block { data, addr } => {
                self.hint = Some(addr);
                self.cursor += 1;
                Ok(Some(data))
            }
            other => Err(bridge_efs::EfsError::Corrupt(format!(
                "unexpected reply {other:?}"
            ))),
        }
    }
}
