//! Disk striping under a single file system — the Salem / Garcia-Molina
//! baseline of the paper's background: "conventional devices are joined
//! logically at the level of the file system software. Consecutive blocks
//! are located on different disk drives, so the file system can initiate
//! I/O operations on several blocks in parallel. Striped files are not
//! limited by disk or channel speed, but … they are limited by the
//! throughput of the file system software."

use bytes::Bytes;
use parsim::{Ctx, SimDuration};
use simdisk::{BlockAddr, BlockDevice, DiskError, DiskGeometry, DiskProfile, DiskStats};
use std::fmt;

/// A set of `p` identical spindles presented as one logical block device,
/// block-interleaved: global block `g` lives on member `g mod p`.
///
/// The striping controller prefetches aggressively: a read miss positions
/// *all* members in parallel and streams each member's track into its
/// buffer, so a sequential scan pays one positioning delay per `p` tracks.
/// The device is therefore nearly free for sequential access — which is
/// precisely why the single file-system process above it becomes the
/// bottleneck Bridge removes.
pub struct StripedDisk {
    members: u32,
    member_geometry: DiskGeometry,
    profile: DiskProfile,
    blocks: Vec<Option<Bytes>>,
    /// Per-member buffered track (member-local track index).
    buffered: Vec<Option<u32>>,
    /// Per-member per-block validity of the buffered track: all blocks
    /// after a full-track load, only the transferred block after a write.
    buffered_valid: Vec<Vec<bool>>,
    stats: DiskStats,
}

impl StripedDisk {
    /// Joins `members` spindles of the given per-member geometry.
    ///
    /// # Panics
    ///
    /// Panics if `members` is zero.
    pub fn new(member_geometry: DiskGeometry, profile: DiskProfile, members: u32) -> Self {
        assert!(members > 0, "a striped set needs at least one member");
        let capacity = member_geometry.capacity_blocks() as usize * members as usize;
        StripedDisk {
            members,
            member_geometry,
            profile,
            blocks: vec![None; capacity],
            buffered: vec![None; members as usize],
            buffered_valid: vec![
                vec![false; member_geometry.blocks_per_track as usize];
                members as usize
            ],
            stats: DiskStats::default(),
        }
    }

    /// Number of member spindles.
    pub fn members(&self) -> u32 {
        self.members
    }

    fn split(&self, addr: BlockAddr) -> (usize, u32) {
        let member = (addr.index() % self.members) as usize;
        let local = addr.index() / self.members;
        (member, local)
    }

    fn check(&self, addr: BlockAddr) -> Result<usize, DiskError> {
        let capacity = self.blocks.len() as u32;
        if addr.index() < capacity {
            Ok(addr.index() as usize)
        } else {
            Err(DiskError::OutOfRange { addr, capacity })
        }
    }

    fn charge(&mut self, ctx: &mut Ctx, d: SimDuration) {
        self.stats.busy += d;
        ctx.delay(d);
    }
}

impl BlockDevice for StripedDisk {
    fn geometry(&self) -> DiskGeometry {
        DiskGeometry {
            block_size: self.member_geometry.block_size,
            blocks_per_track: self.member_geometry.blocks_per_track,
            tracks: self.member_geometry.tracks * self.members,
        }
    }

    fn read(&mut self, ctx: &mut Ctx, addr: BlockAddr) -> Result<Bytes, DiskError> {
        let idx = self.check(addr)?;
        let (member, local) = self.split(addr);
        let track = local / self.member_geometry.blocks_per_track;
        let offset = (local % self.member_geometry.blocks_per_track) as usize;
        self.stats.reads += 1;
        let t0 = ctx.now();
        let hit = self.buffered[member] == Some(track) && self.buffered_valid[member][offset];
        let (position, xfer) = if hit {
            self.stats.buffer_hits += 1;
            (SimDuration::ZERO, self.profile.transfer_per_block)
        } else {
            // All members position and stream in parallel; the caller
            // waits one track's worth, the stripe set loads p tracks.
            self.stats.track_loads += 1;
            (
                self.profile.positioning,
                self.profile.transfer_per_block * u64::from(self.member_geometry.blocks_per_track),
            )
        };
        let d = position + xfer;
        self.charge(ctx, d);
        if !hit {
            for (b, valid) in self.buffered.iter_mut().zip(&mut self.buffered_valid) {
                *b = Some(track);
                valid.fill(true);
            }
        }
        if ctx.trace_enabled() {
            let name = if hit {
                "disk.read.hit"
            } else {
                "disk.read.load"
            };
            ctx.trace_span(
                "disk",
                name,
                t0,
                &[
                    ("busy", d.as_nanos()),
                    ("position", position.as_nanos()),
                    ("transfer", xfer.as_nanos()),
                ],
            );
        }
        match &self.blocks[idx] {
            Some(data) => Ok(data.clone()),
            None => Err(DiskError::Unwritten { addr }),
        }
    }

    fn write(&mut self, ctx: &mut Ctx, addr: BlockAddr, data: &[u8]) -> Result<(), DiskError> {
        let idx = self.check(addr)?;
        if data.len() != self.member_geometry.block_size {
            return Err(DiskError::WrongBlockSize {
                provided: data.len(),
                required: self.member_geometry.block_size,
            });
        }
        let (member, local) = self.split(addr);
        self.stats.writes += 1;
        let d = self.profile.positioning + self.profile.transfer_per_block;
        let t0 = ctx.now();
        self.charge(ctx, d);
        if ctx.trace_enabled() {
            ctx.trace_span(
                "disk",
                "disk.write",
                t0,
                &[
                    ("busy", d.as_nanos()),
                    ("position", self.profile.positioning.as_nanos()),
                    ("transfer", self.profile.transfer_per_block.as_nanos()),
                ],
            );
        }
        self.blocks[idx] = Some(Bytes::copy_from_slice(data));
        // Only the transferred block becomes valid in the member's buffer;
        // marking the whole track buffered here would make later reads of
        // its untouched neighbors phantom hits.
        let track = local / self.member_geometry.blocks_per_track;
        let offset = (local % self.member_geometry.blocks_per_track) as usize;
        if self.buffered[member] != Some(track) {
            self.buffered[member] = Some(track);
            self.buffered_valid[member].fill(false);
        }
        self.buffered_valid[member][offset] = true;
        Ok(())
    }

    fn read_raw(&self, addr: BlockAddr) -> Option<&[u8]> {
        self.blocks
            .get(addr.index() as usize)
            .and_then(|b| b.as_ref())
            .map(|b| b.as_ref())
    }

    fn write_raw(&mut self, addr: BlockAddr, data: &[u8]) {
        let idx = self
            .check(addr)
            .unwrap_or_else(|e| panic!("write_raw: {e}"));
        assert_eq!(
            data.len(),
            self.member_geometry.block_size,
            "write_raw: data must be exactly one block"
        );
        self.blocks[idx] = Some(Bytes::copy_from_slice(data));
    }

    fn clear_raw(&mut self, addr: BlockAddr) {
        if let Ok(idx) = self.check(addr) {
            self.blocks[idx] = None;
        }
    }

    fn stats(&self) -> DiskStats {
        self.stats
    }
}

impl fmt::Debug for StripedDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StripedDisk")
            .field("members", &self.members)
            .field("member_geometry", &self.member_geometry)
            .field("profile", &self.profile)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim::{SimConfig, Simulation};

    fn small() -> DiskGeometry {
        DiskGeometry {
            block_size: 1024,
            blocks_per_track: 8,
            tracks: 64,
        }
    }

    fn on<R: Send + 'static>(
        f: impl FnOnce(&mut Ctx, &mut StripedDisk) -> R + Send + 'static,
    ) -> R {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", move |ctx| {
            let mut disk = StripedDisk::new(small(), DiskProfile::wren(), 4);
            f(ctx, &mut disk)
        })
    }

    #[test]
    fn capacity_scales_with_members() {
        let disk = StripedDisk::new(small(), DiskProfile::wren(), 4);
        assert_eq!(disk.capacity_blocks(), 4 * 8 * 64);
        assert_eq!(disk.members(), 4);
    }

    #[test]
    fn round_trips_across_the_stripe() {
        on(|ctx, disk| {
            for i in 0..64u32 {
                disk.write(ctx, BlockAddr::new(i), &vec![i as u8; 1024])
                    .unwrap();
            }
            for i in 0..64u32 {
                assert_eq!(disk.read(ctx, BlockAddr::new(i)).unwrap()[0], i as u8);
            }
        });
    }

    #[test]
    fn sequential_reads_amortize_positioning_across_members() {
        // One miss buffers all members' tracks: a p·B-block stretch costs
        // one positioning delay.
        let (loads, hits) = on(|ctx, disk| {
            for i in 0..128u32 {
                disk.write_raw(BlockAddr::new(i), &vec![0u8; 1024]);
            }
            for i in 0..128u32 {
                disk.read(ctx, BlockAddr::new(i)).unwrap();
            }
            (disk.stats().track_loads, disk.stats().buffer_hits)
        });
        // 128 blocks = 4 members × 8-block tracks → a stripe-track of 32:
        // 4 misses, 124 hits.
        assert_eq!(loads, 4);
        assert_eq!(hits, 124);
    }

    #[test]
    fn write_does_not_phantom_buffer_the_member_track() {
        // Regression test mirroring SimDisk: a write validates only the
        // block it transferred, so the neighbor on the same member track
        // still pays a full miss.
        on(|ctx, disk| {
            // Blocks 0 and 4 both live on member 0, local track 0.
            disk.write_raw(BlockAddr::new(4), &vec![9u8; 1024]);
            disk.write(ctx, BlockAddr::new(0), &vec![1u8; 1024])
                .unwrap();
            let t0 = ctx.now();
            disk.read(ctx, BlockAddr::new(4)).unwrap();
            assert_eq!(ctx.now() - t0, SimDuration::from_millis(23));
            // Rereading the written block itself is a hit.
            let t1 = ctx.now();
            disk.read(ctx, BlockAddr::new(0)).unwrap();
            assert_eq!(ctx.now() - t1, SimDuration::from_millis(1));
        });
    }

    #[test]
    fn errors_match_single_disk_semantics() {
        on(|ctx, disk| {
            let cap = disk.capacity_blocks();
            assert!(matches!(
                disk.read(ctx, BlockAddr::new(cap)),
                Err(DiskError::OutOfRange { .. })
            ));
            assert!(matches!(
                disk.read(ctx, BlockAddr::new(0)),
                Err(DiskError::Unwritten { .. })
            ));
            assert!(matches!(
                disk.write(ctx, BlockAddr::new(0), &[0u8; 3]),
                Err(DiskError::WrongBlockSize { .. })
            ));
        });
    }
}
