//! Storage arrays — the other hardware baseline from the paper's
//! background: "storage arrays … assemble multiple drives into a single
//! logical device with enormous throughput. Unlike multiple-head drives,
//! storage arrays can be scaled to arbitrary levels of parallelism, though
//! they have the unfortunate tendency to maximize rotational latency: each
//! operation must wait for the most poorly positioned disk."

use parsim::SimDuration;
use simdisk::{DiskGeometry, DiskProfile, SimDisk};

/// Derives the logical device presented by an array of `platters` drives,
/// each with the given per-drive geometry and profile.
///
/// * Transfer is `platters`-way parallel: each logical block is spread
///   bit/byte-wise over all drives, so per-block transfer divides by p.
/// * Positioning *worsens*: the seek component is unchanged, but the
///   rotational component becomes the worst of p uniformly positioned
///   platters, `E[max] = R · p/(p+1)` for a full rotation of `R` versus
///   `R/2` on a single drive.
/// * Capacity multiplies by p.
///
/// The split of the base positioning delay into seek and (half-rotation)
/// latency is taken as 50/50, the usual balance for a Wren-class drive.
pub fn array_device(
    per_drive: DiskGeometry,
    per_drive_profile: DiskProfile,
    platters: u32,
) -> SimDisk {
    assert!(platters > 0, "an array needs at least one platter");
    let geometry = DiskGeometry {
        block_size: per_drive.block_size,
        blocks_per_track: per_drive.blocks_per_track,
        tracks: per_drive.tracks * platters,
    };
    let p = f64::from(platters);
    let base = per_drive_profile.positioning.as_secs_f64();
    let seek = base / 2.0;
    let half_rotation = base / 2.0;
    let full_rotation = 2.0 * half_rotation;
    let worst_rotation = full_rotation * p / (p + 1.0);
    let profile = DiskProfile {
        positioning: SimDuration::from_secs_f64(seek + worst_rotation),
        transfer_per_block: SimDuration::from_nanos(
            (per_drive_profile.transfer_per_block.as_nanos() as f64 / p).round() as u64,
        ),
        seek: per_drive_profile.seek,
    };
    SimDisk::new(geometry, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_trades_latency_for_bandwidth() {
        let base = DiskProfile::wren(); // 15 ms positioning, 1 ms transfer
        let array = array_device(DiskGeometry::default(), base, 8);
        let profile = array.profile();
        // Positioning worsens: 7.5 + 15·(8/9) ≈ 20.8 ms.
        assert!(profile.positioning > base.positioning);
        assert!(profile.positioning < SimDuration::from_millis(23));
        // Transfer improves 8×.
        assert_eq!(profile.transfer_per_block, SimDuration::from_micros(125));
        // Capacity scales.
        assert_eq!(
            array.capacity_blocks(),
            DiskGeometry::default().capacity_blocks() * 8
        );
    }

    #[test]
    fn single_platter_array_is_a_plain_disk() {
        let base = DiskProfile::wren();
        let array = array_device(DiskGeometry::default(), base, 1);
        // p = 1: worst rotation = half rotation → same positioning.
        assert_eq!(array.profile().positioning, base.positioning);
        assert_eq!(array.profile().transfer_per_block, base.transfer_per_block);
    }
}
