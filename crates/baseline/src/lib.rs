//! # bridge-baseline — the architectures Bridge argues against
//!
//! The paper's background (§2) surveys ways to add parallelism *below* the
//! file system: multi-head drives, storage arrays, and Salem /
//! Garcia-Molina disk striping. Its thesis: "a bottleneck remains … if the
//! file system itself uses sequential software or if interaction with the
//! file system is confined to only one process of a parallel application."
//!
//! This crate implements those baselines so the claim can be measured:
//!
//! * [`StripedDisk`] — `p` spindles joined block-interleaved under ONE
//!   file system, with parallel track prefetch: the device is nearly free
//!   for sequential access, the single FS process is not.
//! * [`array_device`] — a storage array as one logical device: transfer
//!   divides by `p`, capacity multiplies, but every operation "must wait
//!   for the most poorly positioned disk".
//! * [`BaselineMachine`] / [`SeqFile`] — one-node machines and a
//!   sequential-file helper so benchmarks read like their Bridge
//!   counterparts.
//!
//! The `baseline_compare` benchmark in `bridge-bench` pits these against
//! Bridge on the same workloads.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod machine;
mod striped;

pub use array::array_device;
pub use machine::{BaselineMachine, SeqFile};
pub use striped::StripedDisk;
