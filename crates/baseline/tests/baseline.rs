//! Integration tests: a full EFS over the baseline devices, and the
//! software-bottleneck effect the paper builds its case on.

use bridge_baseline::{array_device, BaselineMachine, SeqFile, StripedDisk};
use bridge_efs::{EfsConfig, LfsFileId};
use parsim::{SimConfig, SimDuration, Simulation};
use simdisk::{DiskGeometry, DiskProfile, SimDisk};

fn small_geometry() -> DiskGeometry {
    DiskGeometry {
        block_size: 1024,
        blocks_per_track: 8,
        tracks: 256,
    }
}

fn sequential_read_time<D: simdisk::BlockDevice + 'static>(device: D, blocks: u32) -> SimDuration {
    let mut sim = Simulation::new(SimConfig::default());
    let machine = BaselineMachine::build_with_device(&mut sim, device, EfsConfig::default());
    let lfs = machine.lfs;
    sim.block_on(machine.frontend, "app", move |ctx| {
        let mut f = SeqFile::create(ctx, lfs, LfsFileId(1)).unwrap();
        for i in 0..blocks {
            f.append(ctx, vec![i as u8; 100]).unwrap();
        }
        let mut f = SeqFile::open(ctx, lfs, LfsFileId(1)).unwrap();
        assert_eq!(f.size(), blocks);
        let t0 = ctx.now();
        let mut n = 0;
        while let Some(block) = f.read_next(ctx).unwrap() {
            assert_eq!(block[0], n as u8);
            n += 1;
        }
        assert_eq!(n, blocks);
        ctx.now() - t0
    })
}

#[test]
fn efs_works_over_striped_and_array_devices() {
    // Functional round trips; timing checked separately.
    let striped = StripedDisk::new(small_geometry(), DiskProfile::instant(), 4);
    sequential_read_time(striped, 200);
    let array = array_device(small_geometry(), DiskProfile::instant(), 4);
    sequential_read_time(array, 200);
}

#[test]
fn striping_speeds_the_device_but_cpu_remains() {
    let blocks = 512;
    let single = sequential_read_time(SimDisk::new(small_geometry(), DiskProfile::wren()), blocks);
    let striped = sequential_read_time(
        StripedDisk::new(small_geometry(), DiskProfile::wren(), 8),
        blocks,
    );
    assert!(
        striped < single,
        "striping must beat one spindle: {striped} vs {single}"
    );
    // But the per-block cost cannot drop below the FS CPU cost (5 ms) plus
    // messaging: the software bottleneck.
    let per_block = striped / u64::from(blocks);
    assert!(
        per_block >= SimDuration::from_millis(5),
        "no amount of device parallelism beats the single FS process: {per_block}"
    );
}

#[test]
fn array_has_bandwidth_but_worse_latency() {
    // Sequential: the array's parallel transfer wins.
    let blocks = 256;
    let single_seq =
        sequential_read_time(SimDisk::new(small_geometry(), DiskProfile::wren()), blocks);
    let array_seq = sequential_read_time(
        array_device(small_geometry(), DiskProfile::wren(), 8),
        blocks,
    );
    assert!(array_seq <= single_seq, "{array_seq} vs {single_seq}");

    // Writes: "each operation must wait for the most poorly positioned
    // disk" — every write pays the worst-of-p rotational delay, which the
    // p-way transfer cannot buy back (one block's transfer is tiny).
    let write_time = |device: SimDisk| -> SimDuration {
        let mut sim = Simulation::new(SimConfig::default());
        let machine = BaselineMachine::build_with_device(&mut sim, device, EfsConfig::default());
        let lfs = machine.lfs;
        sim.block_on(machine.frontend, "app", move |ctx| {
            let mut f = SeqFile::create(ctx, lfs, LfsFileId(1)).unwrap();
            let t0 = ctx.now();
            for i in 0..blocks {
                f.append(ctx, vec![i as u8; 100]).unwrap();
            }
            ctx.now() - t0
        })
    };
    let single_write = write_time(SimDisk::new(small_geometry(), DiskProfile::wren()));
    let array_write = write_time(array_device(small_geometry(), DiskProfile::wren(), 8));
    assert!(
        array_write > single_write,
        "array writes pay worst-of-p rotation: {array_write} vs {single_write}"
    );
}
