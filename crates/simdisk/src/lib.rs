//! # simdisk — simulated block storage for the Bridge reproduction
//!
//! The Bridge prototype had no real drives: "we have chosen in our
//! implementation to simulate the disks in memory … our device driver code
//! includes a variable-length sleep interval to simulate seek and rotational
//! delay", set to 15 ms to approximate a CDC Wren-class disk. This crate is
//! the same substitution, realized in virtual time on [`parsim`]:
//!
//! * a [`SimDisk`] stores real bytes in memory, one fixed-size block at a
//!   time, and charges the owning process's [`parsim::Ctx`] for positioning
//!   and transfer delays;
//! * an explicit [`DiskGeometry`] (blocks per track) plus a one-track read
//!   buffer reproduce the *full-track buffering* the paper credits for
//!   sequential reads being much cheaper than disk latency (Table 2:
//!   9 ms amortized reads vs 31 ms writes).
//!
//! ## Example
//!
//! ```
//! use parsim::{SimConfig, Simulation};
//! use simdisk::{DiskGeometry, DiskProfile, SimDisk};
//!
//! let mut sim = Simulation::new(SimConfig::default());
//! let node = sim.add_node("io0");
//! let elapsed = sim.block_on(node, "driver", |ctx| {
//!     let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
//!     let start = ctx.now();
//!     disk.write(ctx, simdisk::BlockAddr::new(0), &[7u8; 1024]).unwrap();
//!     let block = disk.read(ctx, simdisk::BlockAddr::new(0)).unwrap();
//!     assert_eq!(block[0], 7);
//!     ctx.now() - start
//! });
//! assert!(elapsed > parsim::SimDuration::from_millis(15));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod sched;

pub use sched::{RequestQueue, SchedConfig, SchedPolicy};

use bytes::Bytes;
use parsim::{mix64, splitmix64, Ctx, SimDuration};
use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Maximum failed attempts the simulated device driver absorbs per request
/// before giving up with [`DiskError::Transient`]. Fault plans whose
/// per-disk caps stay below this bound therefore never surface an error to
/// the file system — the faults show up purely as extra service time.
pub const DRIVER_RETRY_LIMIT: u32 = 16;

/// Live transient-fault state for one disk, derived from a
/// [`parsim::FaultPlan`]'s [`DiskFaults`](parsim::DiskFaults) section.
///
/// Failed attempts are absorbed by a bounded driver retry loop inside the
/// disk: each failure re-positions the head (charging the profile's
/// positioning cost) and tries again. Randomness comes from a splitmix64
/// stream stepped once per attempt, so runs are bit-reproducible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiskFaultState {
    rng: u64,
    error_per_mille: u16,
    max_consecutive: u32,
    /// (block, remaining failures) targeted rules for this disk.
    targets: Vec<(u32, u32)>,
    /// Consecutive random failures so far (capped by `max_consecutive`).
    consecutive: u32,
}

impl DiskFaultState {
    /// Builds the fault state for disk number `disk` from a plan's disk
    /// section, or `None` when no fault can ever hit this disk (so the
    /// fault-free fast path stays untouched).
    pub fn from_plan(plan: &parsim::DiskFaults, seed: u64, disk: u32) -> Option<DiskFaultState> {
        let targets: Vec<(u32, u32)> = plan
            .targets
            .iter()
            .filter(|t| t.disk == disk && t.fails > 0)
            .map(|t| (t.block, t.fails))
            .collect();
        let random_active = plan.error_per_mille > 0 && plan.max_consecutive > 0;
        if !random_active && targets.is_empty() {
            return None;
        }
        assert!(
            plan.error_per_mille <= 1000,
            "per-mille fault rates must be <= 1000"
        );
        Some(DiskFaultState {
            rng: mix64(seed, 0x6469_736b_0000_0000 | u64::from(disk)), // "disk" | index
            error_per_mille: if random_active {
                plan.error_per_mille
            } else {
                0
            },
            max_consecutive: plan.max_consecutive,
            targets,
            consecutive: 0,
        })
    }

    /// Number of failed attempts the driver must absorb for a request
    /// touching `blocks`, consuming targeted-rule budget and stepping the
    /// random stream until a success draw (or the consecutive cap).
    fn failures_for(&mut self, blocks: impl Iterator<Item = BlockAddr>) -> u32 {
        let mut failures = 0u32;
        for b in blocks {
            for t in self.targets.iter_mut() {
                if t.0 == b.index() && t.1 > 0 {
                    failures = failures.saturating_add(t.1);
                    t.1 = 0;
                }
            }
        }
        while self.error_per_mille > 0 {
            let x = splitmix64(&mut self.rng);
            if ((x % 1000) as u16) < self.error_per_mille && self.consecutive < self.max_consecutive
            {
                self.consecutive += 1;
                failures += 1;
            } else {
                self.consecutive = 0;
                break;
            }
        }
        failures
    }
}

/// Live crash schedule for one disk, derived from a
/// [`parsim::FaultPlan`]'s [`CrashAt`](parsim::CrashAt) section.
///
/// The disk counts every elementary block write it persists; when the
/// count reaches the next scheduled ordinal the disk goes *dead*: the
/// triggering write is durable, every later timed operation fails with
/// [`DiskError::Crashed`] (tearing multi-block operations mid-run), and
/// the embedding server is expected to observe the dead state, stay
/// silent for the schedule's `down` window, and then [`SimDisk::revive`]
/// the device and run recovery. Untimed raw access keeps working — that
/// is what recovery reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSchedule {
    /// Remaining `(after_writes, down)` triggers, ascending by ordinal.
    pending: Vec<(u64, SimDuration)>,
    /// Elementary block writes persisted over the disk's lifetime.
    persisted: u64,
}

impl CrashSchedule {
    /// Builds the crash schedule for disk number `disk` from a plan's
    /// crash section, or `None` when no kill targets this disk (so the
    /// fault-free fast path stays untouched).
    pub fn from_plan(crashes: &[parsim::CrashAt], disk: u32) -> Option<CrashSchedule> {
        let mut pending: Vec<(u64, SimDuration)> = crashes
            .iter()
            .filter(|c| c.disk == disk && c.after_writes > 0)
            .map(|c| (c.after_writes, c.down))
            .collect();
        if pending.is_empty() {
            return None;
        }
        pending.sort_by_key(|&(at, _)| at);
        pending.dedup_by_key(|&mut (at, _)| at);
        Some(CrashSchedule {
            pending,
            persisted: 0,
        })
    }
}

/// Live permanent-loss schedule for one disk, derived from a
/// [`parsim::FaultPlan`]'s [`DiskLost`](parsim::DiskLost) section.
///
/// Like [`CrashSchedule`] the trigger is keyed on the disk's cumulative
/// persisted-write ordinal, but the consequence is final: once the
/// ordinal passes, the medium is *lost*. Every operation — timed or raw —
/// fails or returns nothing, [`SimDisk::revive`] does not help, and the
/// only way forward is for the embedder to install a fresh spare device
/// and rebuild its contents from redundancy elsewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LossSchedule {
    /// Write ordinal after which the medium dies (0 = lost from the
    /// start, before anything persists).
    at: u64,
    /// Elementary block writes persisted over the disk's lifetime.
    persisted: u64,
}

impl LossSchedule {
    /// Builds the loss schedule for disk number `disk` from a plan's loss
    /// section, or `None` when no loss targets this disk (so the
    /// fault-free fast path stays untouched). Multiple entries for the
    /// same disk collapse to the earliest — loss is permanent, so later
    /// triggers can never fire.
    pub fn from_plan(losses: &[parsim::DiskLost], disk: u32) -> Option<LossSchedule> {
        losses
            .iter()
            .filter(|l| l.disk == disk)
            .map(|l| l.after_writes)
            .min()
            .map(|at| LossSchedule { at, persisted: 0 })
    }
}

/// The address of a block on one disk (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u32);

impl BlockAddr {
    /// Creates a block address.
    pub const fn new(index: u32) -> Self {
        BlockAddr(index)
    }

    /// The 0-based block index.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

impl From<u32> for BlockAddr {
    fn from(index: u32) -> Self {
        BlockAddr(index)
    }
}

/// Physical layout of a simulated disk.
///
/// The default is the reproduction's standard device: 1024-byte blocks,
/// 8 blocks per track, 8192 tracks — a 64 MB disk, the size the paper
/// carved out of the Butterfly's RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskGeometry {
    /// Bytes per block; all reads and writes are whole blocks.
    pub block_size: usize,
    /// Blocks per track; a track is the unit of read buffering.
    pub blocks_per_track: u32,
    /// Number of tracks.
    pub tracks: u32,
}

impl Default for DiskGeometry {
    fn default() -> Self {
        DiskGeometry {
            block_size: 1024,
            blocks_per_track: 8,
            tracks: 8192,
        }
    }
}

impl DiskGeometry {
    /// Total number of blocks on the disk.
    pub const fn capacity_blocks(self) -> u32 {
        self.blocks_per_track * self.tracks
    }

    /// Total capacity in bytes.
    pub const fn capacity_bytes(self) -> u64 {
        self.capacity_blocks() as u64 * self.block_size as u64
    }

    /// The track containing `addr`.
    pub const fn track_of(self, addr: BlockAddr) -> u32 {
        addr.0 / self.blocks_per_track
    }
}

/// Distance-dependent seek model: the cost of repositioning the head grows
/// with the number of tracks it must travel.
///
/// The paper's prototype charged a flat delay for every positioning; real
/// drives pay a fixed settle/rotation cost plus travel time, which is what
/// makes request *ordering* matter. A [`DiskProfile`] carries an optional
/// `SeekCurve`; when present, positioning an access on track `t` with the
/// head on track `h` costs `settle + per_track · |t − h|` instead of the
/// flat `positioning` figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeekCurve {
    /// Head settle plus average rotational delay, charged on every
    /// repositioning regardless of distance (including distance zero).
    pub settle: SimDuration,
    /// Additional travel time per track of head movement.
    pub per_track: SimDuration,
}

impl SeekCurve {
    /// Positioning cost for a head travel of `distance` tracks.
    pub fn cost(&self, distance: u32) -> SimDuration {
        self.settle + self.per_track * u64::from(distance)
    }
}

/// Timing model of a simulated drive.
///
/// Reads that miss the track buffer pay `positioning` and stream the whole
/// track in; subsequent reads of the same track pay only the per-block
/// transfer. Writes are write-through: every write pays positioning plus
/// one block transfer (rotation must come around to the sector).
///
/// The track buffer is *per-block precise*: a full-track load validates
/// every block of the track, while a write refreshes only the block it
/// transferred (and, if the head moved to a new track, invalidates the
/// rest of the buffer). A read of a block the buffer never earned —
/// e.g. the untouched neighbors after a partial-track write — therefore
/// pays positioning like any other miss.
///
/// With `seek: None` (the default, and the paper's model) every
/// positioning costs the flat `positioning` delay. With a [`SeekCurve`]
/// installed, positioning cost depends on how far the head travels, which
/// is what gives disk-aware request scheduling something to win.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskProfile {
    /// Seek plus rotational delay for an access that must position the
    /// head (used when `seek` is `None`).
    pub positioning: SimDuration,
    /// Media transfer time for one block.
    pub transfer_per_block: SimDuration,
    /// Optional distance-dependent seek curve; `None` charges the flat
    /// `positioning` figure, preserving the paper's timing bit-for-bit.
    pub seek: Option<SeekCurve>,
}

impl DiskProfile {
    /// The paper's device: a CDC Wren-class disk approximated by a 15 ms
    /// positioning delay.
    pub fn wren() -> Self {
        DiskProfile {
            positioning: SimDuration::from_millis(15),
            transfer_per_block: SimDuration::from_millis(1),
            seek: None,
        }
    }

    /// A Wren-class disk with a distance-dependent seek curve: 8 ms settle
    /// plus rotation, and travel calibrated so the average random seek
    /// (a third of the default geometry's 8192 tracks) lands near the flat
    /// profile's 15 ms — short seeks are much cheaper, full strokes cost
    /// about twice the average.
    pub fn wren_seek() -> Self {
        DiskProfile {
            seek: Some(SeekCurve {
                settle: SimDuration::from_millis(8),
                per_track: SimDuration::from_nanos(2_560),
            }),
            ..DiskProfile::wren()
        }
    }

    /// A free disk: zero delays. Useful for functional tests where timing
    /// is irrelevant.
    pub fn instant() -> Self {
        DiskProfile {
            positioning: SimDuration::ZERO,
            transfer_per_block: SimDuration::ZERO,
            seek: None,
        }
    }

    /// Positioning cost for an access on `to` with the head on `from`.
    pub fn positioning_cost(&self, from: u32, to: u32) -> SimDuration {
        match self.seek {
            None => self.positioning,
            Some(curve) => curve.cost(from.abs_diff(to)),
        }
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile::wren()
    }
}

/// Errors returned by [`SimDisk`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The block address is beyond the end of the disk.
    OutOfRange {
        /// The offending address.
        addr: BlockAddr,
        /// The disk's capacity in blocks.
        capacity: u32,
    },
    /// The block has never been written; reading it would return garbage.
    Unwritten {
        /// The offending address.
        addr: BlockAddr,
    },
    /// A write buffer whose length is not exactly one block.
    WrongBlockSize {
        /// Bytes provided by the caller.
        provided: usize,
        /// Bytes required (the geometry's block size).
        required: usize,
    },
    /// An injected transient fault outlasted the driver's bounded retry
    /// loop ([`DRIVER_RETRY_LIMIT`] attempts). Only reachable under a
    /// fault plan whose per-request failure budget exceeds the limit;
    /// nothing is charged and no data moves when the driver gives up.
    Transient {
        /// The (first) addressed block of the failed request.
        addr: BlockAddr,
        /// Failed attempts the request would have needed.
        attempts: u32,
    },
    /// The disk is dead under a [`CrashSchedule`] kill: the node crashed
    /// between two elementary writes. Timed operations fail until the
    /// embedder calls [`SimDisk::revive`]; a multi-block write that was
    /// in flight persisted only its pre-crash prefix (a torn run).
    Crashed,
    /// The medium is permanently gone under a [`LossSchedule`]: every
    /// operation fails forever, [`SimDisk::revive`] does not help, and
    /// the data is unrecoverable from this device. Only a redundancy
    /// layer can serve or rebuild its contents (onto a spare).
    Lost,
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::OutOfRange { addr, capacity } => {
                write!(f, "block {addr} out of range (capacity {capacity} blocks)")
            }
            DiskError::Unwritten { addr } => write!(f, "block {addr} has never been written"),
            DiskError::WrongBlockSize { provided, required } => {
                write!(f, "write of {provided} bytes, block size is {required}")
            }
            DiskError::Transient { addr, attempts } => {
                write!(
                    f,
                    "transient fault on block {addr} outlasted the driver \
                     ({attempts} failed attempts, limit {DRIVER_RETRY_LIMIT})"
                )
            }
            DiskError::Crashed => write!(f, "disk is down: its node crashed mid-operation"),
            DiskError::Lost => write!(f, "disk medium is permanently lost"),
        }
    }
}

impl Error for DiskError {}

/// Operation counters for one disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Block reads requested.
    pub reads: u64,
    /// Block writes requested.
    pub writes: u64,
    /// Reads satisfied from the track buffer.
    pub buffer_hits: u64,
    /// Full-track loads (read misses).
    pub track_loads: u64,
    /// Tracks of head travel accumulated by positionings (always zero
    /// under the flat profile, which does not model head distance).
    pub head_travel: u64,
    /// Injected transient failures absorbed by the driver's retry loop
    /// (always zero without a fault plan).
    pub transient_faults: u64,
    /// Total virtual time this disk spent servicing requests.
    pub busy: SimDuration,
}

/// Observer for one disk's live counters. The telemetry layer implements
/// this; `simdisk` defines only the trait and stays dependency-free. The
/// disk stores its own [`DiskStats`] through the sink at the end of every
/// timed operation and at loss transitions — idempotent stores of the
/// device's own counters, so the observer's view at quiescence equals
/// [`SimDisk::stats`] exactly, and recording is observation-only (no
/// virtual time, no scheduling change).
pub trait DiskTelemetrySink: Send + Sync {
    /// Stores the disk's current counters and permanent-loss flag.
    fn record(&self, stats: &DiskStats, lost: bool);
}

/// A block storage device usable by a local file system: fixed-size
/// blocks, timed reads/writes that charge the owning process's virtual
/// clock, and untimed raw access for formatting and inspection.
///
/// Implemented by [`SimDisk`] (one spindle) and by the baseline devices of
/// the `bridge-baseline` crate (striped sets, storage arrays).
pub trait BlockDevice: Send + std::fmt::Debug {
    /// The device's geometry.
    fn geometry(&self) -> DiskGeometry;

    /// Reads one block, charging virtual time.
    ///
    /// # Errors
    ///
    /// [`DiskError::OutOfRange`] or [`DiskError::Unwritten`].
    fn read(&mut self, ctx: &mut Ctx, addr: BlockAddr) -> Result<Bytes, DiskError>;

    /// Writes one block, charging virtual time.
    ///
    /// # Errors
    ///
    /// [`DiskError::OutOfRange`] or [`DiskError::WrongBlockSize`].
    fn write(&mut self, ctx: &mut Ctx, addr: BlockAddr, data: &[u8]) -> Result<(), DiskError>;

    /// Reads a run of blocks in one device request.
    ///
    /// The default implementation loops over [`read`](BlockDevice::read);
    /// devices with a smarter controller (see [`SimDisk::read_many`])
    /// override it to charge the whole run as one service interval.
    ///
    /// # Errors
    ///
    /// [`DiskError::OutOfRange`] or [`DiskError::Unwritten`].
    fn read_many(&mut self, ctx: &mut Ctx, addrs: &[BlockAddr]) -> Result<Vec<Bytes>, DiskError> {
        addrs.iter().map(|&a| self.read(ctx, a)).collect()
    }

    /// Writes a run of blocks in one device request.
    ///
    /// The default implementation loops over [`write`](BlockDevice::write);
    /// devices with a smarter controller (see [`SimDisk::write_many`])
    /// override it to pay positioning once per track instead of once per
    /// block.
    ///
    /// # Errors
    ///
    /// [`DiskError::OutOfRange`] or [`DiskError::WrongBlockSize`].
    fn write_many(
        &mut self,
        ctx: &mut Ctx,
        writes: &[(BlockAddr, Bytes)],
    ) -> Result<(), DiskError> {
        for (addr, data) in writes {
            self.write(ctx, *addr, data)?;
        }
        Ok(())
    }

    /// Forces every accepted write to durable media before returning — the
    /// write ordering point a write-ahead log commits through. Devices
    /// with a write-behind queue wait for it to drain (charging the wait);
    /// synchronous devices return immediately, so calling `flush` on an
    /// idle device never changes timing.
    ///
    /// # Errors
    ///
    /// [`DiskError::Crashed`] if the device is dead under a crash kill.
    fn flush(&mut self, ctx: &mut Ctx) -> Result<(), DiskError> {
        let _ = ctx;
        Ok(())
    }

    /// When the device is dead under a crash kill: how long its node
    /// stays down before recovery may run. `None` means alive (the
    /// default for devices that do not model crashes).
    fn crash_down(&self) -> Option<SimDuration> {
        None
    }

    /// Restarts a dead device: clears the crash state and every volatile
    /// buffer (track buffer, queued write-behind work). Durable blocks
    /// survive. A no-op on devices that do not model crashes — and on a
    /// *lost* medium, which no restart brings back.
    fn revive(&mut self) {}

    /// True once the device's medium is permanently lost (see
    /// [`DiskError::Lost`]). `false` forever on devices that do not model
    /// media loss.
    fn lost(&self) -> bool {
        false
    }

    /// A factory-fresh replacement device with the same geometry and
    /// timing profile but none of this device's contents or scheduled
    /// faults — what an operator racks in after a permanent media loss.
    /// `None` on devices that cannot be hot-swapped (the default).
    fn spare(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Reads a block without charging time (formatting, tests, recovery).
    fn read_raw(&self, addr: BlockAddr) -> Option<&[u8]>;

    /// Writes a block without charging time (formatting, tests).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `data` is not one block long.
    fn write_raw(&mut self, addr: BlockAddr, data: &[u8]);

    /// Marks a block as unwritten without charging time.
    fn clear_raw(&mut self, addr: BlockAddr);

    /// Aggregate operation counters.
    fn stats(&self) -> DiskStats;

    /// Capacity in blocks (defaults to the geometry's).
    fn capacity_blocks(&self) -> u32 {
        self.geometry().capacity_blocks()
    }

    /// The track the device's head is currently positioned over, for
    /// request scheduling. Devices without a meaningful single head
    /// (striped sets, arrays) report track 0, which degrades scheduling
    /// to policy order without affecting correctness.
    fn head_track(&self) -> u32 {
        0
    }
}

/// An in-memory simulated disk with virtual-time delays.
///
/// A `SimDisk` is a passive resource owned by exactly one simulated process
/// (the local file system of its node); timed operations take the owner's
/// `&mut Ctx` and advance the virtual clock.
pub struct SimDisk {
    geometry: DiskGeometry,
    profile: DiskProfile,
    blocks: Vec<Option<Bytes>>,
    buffered_track: Option<u32>,
    /// Which blocks of `buffered_track` actually hold media data: all of
    /// them after a full-track load, only the transferred ones after
    /// writes. Indexed by in-track offset.
    buffered_valid: Vec<bool>,
    /// Write-behind queue depth (`None` = synchronous write-through).
    write_behind: Option<u32>,
    /// Virtual time at which the device finishes its queued work.
    free_at: parsim::SimTime,
    /// Completion times of queued write-behind operations, oldest first;
    /// entries at or before the current clock are retired lazily.
    deferred: VecDeque<parsim::SimTime>,
    /// Track the head is currently positioned over (starts at track 0).
    head_track: u32,
    /// Injected transient-fault state (`None` = the fault-free fast path).
    faults: Option<DiskFaultState>,
    /// Scheduled crash kills (`None` = the crash-free fast path).
    crash: Option<CrashSchedule>,
    /// `Some(down)` while the disk is dead under a crash kill.
    dead: Option<SimDuration>,
    /// Scheduled permanent loss (`None` = the loss-free fast path).
    loss: Option<LossSchedule>,
    /// True once the medium is permanently gone. Never cleared — not even
    /// by [`SimDisk::revive`]; a lost disk can only be replaced.
    lost: bool,
    stats: DiskStats,
    /// Live-counter observer (`None` = no publishing, the fast path).
    telemetry: Option<Arc<dyn DiskTelemetrySink>>,
}

impl SimDisk {
    /// Creates a blank disk.
    pub fn new(geometry: DiskGeometry, profile: DiskProfile) -> Self {
        SimDisk {
            geometry,
            profile,
            blocks: vec![None; geometry.capacity_blocks() as usize],
            buffered_track: None,
            buffered_valid: vec![false; geometry.blocks_per_track as usize],
            write_behind: None,
            free_at: parsim::SimTime::ZERO,
            deferred: VecDeque::new(),
            head_track: 0,
            faults: None,
            crash: None,
            dead: None,
            loss: None,
            lost: false,
            stats: DiskStats::default(),
            telemetry: None,
        }
    }

    /// Attaches a live-counter observer: the disk stores its [`DiskStats`]
    /// through it after every timed operation (see [`DiskTelemetrySink`]).
    pub fn set_telemetry_sink(&mut self, sink: Arc<dyn DiskTelemetrySink>) {
        self.telemetry = Some(sink);
        self.publish();
    }

    /// Stores the current counters into the attached sink, if any.
    fn publish(&self) {
        if let Some(sink) = &self.telemetry {
            sink.record(&self.stats, self.lost);
        }
    }

    /// Installs (or clears) transient-fault injection for this disk.
    /// Passing `None` — or a state [`DiskFaultState::from_plan`] declined
    /// to build — keeps the exact fault-free code path.
    pub fn inject_faults(&mut self, faults: Option<DiskFaultState>) {
        self.faults = faults;
    }

    /// Installs (or clears) a crash-kill schedule for this disk. Passing
    /// `None` — or a schedule [`CrashSchedule::from_plan`] declined to
    /// build — keeps the exact crash-free code path: no write counting,
    /// no timing change, bit-identical [`DiskStats`].
    pub fn schedule_crashes(&mut self, crash: Option<CrashSchedule>) {
        self.crash = crash;
    }

    /// Installs (or clears) a permanent-loss schedule for this disk.
    /// Passing `None` — or a schedule [`LossSchedule::from_plan`] declined
    /// to build — keeps the exact loss-free code path. An ordinal of zero
    /// loses the medium immediately, before anything persists.
    pub fn schedule_loss(&mut self, loss: Option<LossSchedule>) {
        if let Some(ls) = &loss {
            if ls.at == 0 {
                self.lost = true;
            }
        }
        self.loss = loss;
    }

    /// `Err(Lost)` when the medium is permanently gone, `Err(Crashed)`
    /// when the disk is dead under a crash kill.
    fn check_alive(&self) -> Result<(), DiskError> {
        if self.lost {
            Err(DiskError::Lost)
        } else if self.dead.is_some() {
            Err(DiskError::Crashed)
        } else {
            Ok(())
        }
    }

    /// Counts one persisted elementary write against the crash schedule.
    /// Returns `true` when that write was the scheduled trigger: it is
    /// durable, but the disk is dead from this instant on.
    fn note_write_crash(&mut self) -> bool {
        let Some(cs) = self.crash.as_mut() else {
            return false;
        };
        cs.persisted += 1;
        if let Some(&(at, down)) = cs.pending.first() {
            if cs.persisted >= at {
                cs.pending.remove(0);
                self.dead = Some(down);
                return true;
            }
        }
        false
    }

    /// Counts one persisted elementary write against the loss schedule.
    /// Returns `true` when that write was the scheduled trigger: it is
    /// durable but unreadable — the medium is gone from this instant on.
    fn note_write_loss(&mut self) -> bool {
        if self.lost {
            return false;
        }
        let Some(ls) = self.loss.as_mut() else {
            return false;
        };
        ls.persisted += 1;
        if ls.persisted >= ls.at {
            self.lost = true;
            return true;
        }
        false
    }

    /// When the disk is dead under a crash kill: the scheduled down
    /// window its node must stay silent for. `None` means alive — and
    /// also when the medium is *lost*: loss supersedes any crash window,
    /// because no amount of downtime plus recovery brings the data back.
    pub fn crash_down(&self) -> Option<SimDuration> {
        if self.lost {
            None
        } else {
            self.dead
        }
    }

    /// True once the medium is permanently lost. Unlike a crash kill this
    /// never clears; the embedder must replace the device with a spare.
    pub fn lost(&self) -> bool {
        self.lost
    }

    /// Restarts a dead disk. Durable blocks survive; everything volatile
    /// is gone: the track buffer is invalidated and queued write-behind
    /// completions are dropped (their data already persisted — the queue
    /// models timing, not durability). Crash triggers whose ordinal has
    /// already passed are discarded so a restart cannot re-fire them.
    /// A permanently [`lost`](SimDisk::lost) medium stays lost.
    pub fn revive(&mut self) {
        self.dead = None;
        self.buffered_track = None;
        self.buffered_valid.fill(false);
        self.deferred.clear();
        if let Some(cs) = self.crash.as_mut() {
            while cs
                .pending
                .first()
                .is_some_and(|&(at, _)| at <= cs.persisted)
            {
                cs.pending.remove(0);
            }
        }
    }

    /// Waits for every accepted write to reach durable media: the commit
    /// ordering point. With write-behind enabled this drains the queue
    /// (charging the wait); on a synchronous disk — or an idle queue — it
    /// is free, so flushing never perturbs timing on the fault-free path.
    ///
    /// # Errors
    ///
    /// [`DiskError::Crashed`] if the disk is dead under a crash kill.
    pub fn flush(&mut self, ctx: &mut Ctx) -> Result<(), DiskError> {
        self.check_alive()?;
        if self.write_behind.is_some() {
            let wake = self.free_at;
            if wake > ctx.now() {
                ctx.delay(wake.saturating_duration_since(ctx.now()));
            }
            self.retire_deferred(ctx.now());
        }
        Ok(())
    }

    /// Enables write-behind: writes return once buffered (paying only the
    /// transfer into the buffer) while the media work queues on the
    /// device, up to `depth` outstanding writes. Reads, and writes beyond
    /// the queue depth, wait for the queue to drain — "assuming that the
    /// local file systems perform read-ahead and write-behind, virtually
    /// any program that uses the naive interface will be compute- or
    /// communication-bound" (paper §6).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn enable_write_behind(&mut self, depth: u32) {
        assert!(depth > 0, "write-behind queue depth must be positive");
        self.write_behind = Some(depth);
    }

    /// The disk's geometry.
    pub fn geometry(&self) -> DiskGeometry {
        self.geometry
    }

    /// The disk's timing profile.
    pub fn profile(&self) -> DiskProfile {
        self.profile
    }

    /// Capacity in blocks.
    pub fn capacity_blocks(&self) -> u32 {
        self.geometry.capacity_blocks()
    }

    /// Operation counters so far.
    pub fn stats(&self) -> DiskStats {
        self.stats
    }

    fn check_addr(&self, addr: BlockAddr) -> Result<usize, DiskError> {
        let cap = self.geometry.capacity_blocks();
        if addr.0 < cap {
            Ok(addr.0 as usize)
        } else {
            Err(DiskError::OutOfRange {
                addr,
                capacity: cap,
            })
        }
    }

    /// True if `addr` can be served from the track buffer: the right track
    /// is buffered *and* this particular block's image is valid.
    fn buffer_hit(&self, addr: BlockAddr) -> bool {
        let track = self.geometry.track_of(addr);
        self.buffered_track == Some(track)
            && self.buffered_valid[(addr.0 % self.geometry.blocks_per_track) as usize]
    }

    /// Records a full-track load: every block of `track` is now buffered.
    fn buffer_load(&mut self, track: u32) {
        self.buffered_track = Some(track);
        self.buffered_valid.fill(true);
    }

    /// Records the buffer effect of writing one block. Writing refreshes
    /// only the block actually transferred: on the buffered track the
    /// block's image stays (or becomes) valid, while moving the head to a
    /// different track discards the old image and leaves just the written
    /// block valid.
    fn buffer_note_write(&mut self, addr: BlockAddr) {
        let track = self.geometry.track_of(addr);
        let offset = (addr.0 % self.geometry.blocks_per_track) as usize;
        if self.buffered_track != Some(track) {
            self.buffered_track = Some(track);
            self.buffered_valid.fill(false);
        }
        self.buffered_valid[offset] = true;
    }

    /// Moves the head to `track`, returning the positioning cost (flat
    /// under the paper profile, distance-dependent under a seek curve) and
    /// accounting the travel.
    fn seek_to(&mut self, track: u32) -> SimDuration {
        let d = self.profile.positioning_cost(self.head_track, track);
        if self.profile.seek.is_some() {
            self.stats.head_travel += u64::from(self.head_track.abs_diff(track));
        }
        self.head_track = track;
        d
    }

    /// The track the head is currently positioned over.
    pub fn head_track(&self) -> u32 {
        self.head_track
    }

    fn charge(&mut self, ctx: &mut Ctx, d: SimDuration) {
        self.stats.busy += d;
        if self.write_behind.is_some() {
            // Queue-aware service: the operation starts when the device is
            // free and the caller waits until it completes.
            let start = self.free_at.max(ctx.now());
            let done = start + d;
            self.free_at = done;
            ctx.delay(done.saturating_duration_since(ctx.now()));
        } else {
            ctx.delay(d);
        }
    }

    /// Queues device work without making the caller wait for it (beyond
    /// the queue-depth backpressure).
    fn charge_deferred(&mut self, ctx: &mut Ctx, d: SimDuration, immediate: SimDuration) {
        self.stats.busy += d;
        let depth = self.write_behind.expect("only called with write-behind on") as usize;
        let start = self.free_at.max(ctx.now());
        self.free_at = start + d;
        self.deferred.push_back(self.free_at);
        ctx.delay(immediate);
        // Backpressure: at most `depth` writes may be outstanding on the
        // device. Bounding by op count (not a worst-case time lead) keeps
        // the bound exact when queued writes cost less than the worst
        // case, e.g. short seeks under a seek curve.
        self.retire_deferred(ctx.now());
        if self.deferred.len() > depth {
            let wake = self.deferred[self.deferred.len() - 1 - depth];
            ctx.delay(wake.saturating_duration_since(ctx.now()));
            self.retire_deferred(ctx.now());
        }
    }

    /// Drops queued-write completion records that the clock has passed.
    fn retire_deferred(&mut self, now: parsim::SimTime) {
        while self.deferred.front().is_some_and(|&c| c <= now) {
            self.deferred.pop_front();
        }
    }

    /// Number of write-behind operations still outstanding on the device
    /// at `now` (always zero without write-behind).
    pub fn deferred_outstanding(&mut self, now: parsim::SimTime) -> usize {
        self.retire_deferred(now);
        self.deferred.len()
    }

    /// Consults the fault state for a request touching `addrs` and returns
    /// the extra service time the driver's bounded retry loop absorbed:
    /// each failed attempt re-positions the head over the target track and
    /// tries again, so a failure costs one positioning charge (full travel
    /// for the first, settle-only under a seek curve thereafter). With no
    /// fault state installed this is a single branch returning zero.
    ///
    /// # Errors
    ///
    /// [`DiskError::Transient`] when the request would need more than
    /// [`DRIVER_RETRY_LIMIT`] attempts; nothing is charged in that case.
    fn fault_penalty(
        &mut self,
        ctx: &mut Ctx,
        addrs: &[BlockAddr],
    ) -> Result<SimDuration, DiskError> {
        let failures = match self.faults.as_mut() {
            None => 0,
            Some(f) => f.failures_for(addrs.iter().copied()),
        };
        if failures == 0 {
            return Ok(SimDuration::ZERO);
        }
        self.stats.transient_faults += u64::from(failures);
        let addr = addrs[0];
        if ctx.trace_enabled() {
            ctx.trace_instant(
                "fault",
                "fault.disk_transient",
                &[
                    ("block", u64::from(addr.index())),
                    ("retries", u64::from(failures)),
                ],
            );
        }
        if failures > DRIVER_RETRY_LIMIT {
            return Err(DiskError::Transient {
                addr,
                attempts: failures,
            });
        }
        let track = self.geometry.track_of(addr);
        let mut extra = SimDuration::ZERO;
        for _ in 0..failures {
            extra += self.seek_to(track);
        }
        Ok(extra)
    }

    /// Reads one block, charging virtual time.
    ///
    /// A miss positions the head and streams the whole track into the track
    /// buffer; further reads of that track cost only the per-block transfer.
    ///
    /// # Errors
    ///
    /// [`DiskError::OutOfRange`], [`DiskError::Unwritten`], or
    /// [`DiskError::Transient`] under an unbounded fault rule.
    pub fn read(&mut self, ctx: &mut Ctx, addr: BlockAddr) -> Result<Bytes, DiskError> {
        self.check_alive()?;
        let idx = self.check_addr(addr)?;
        let extra = self.fault_penalty(ctx, &[addr])?;
        let track = self.geometry.track_of(addr);
        self.stats.reads += 1;
        let t0 = ctx.now();
        let hit = self.buffer_hit(addr);
        let (seek, xfer) = if hit {
            self.stats.buffer_hits += 1;
            (SimDuration::ZERO, self.profile.transfer_per_block)
        } else {
            self.stats.track_loads += 1;
            (
                self.seek_to(track),
                self.profile.transfer_per_block * u64::from(self.geometry.blocks_per_track),
            )
        };
        let position = extra + seek;
        let d = position + xfer;
        self.charge(ctx, d);
        if !hit {
            self.buffer_load(track);
        }
        if ctx.trace_enabled() {
            let name = if hit {
                "disk.read.hit"
            } else {
                "disk.read.load"
            };
            ctx.trace_span(
                "disk",
                name,
                t0,
                &[
                    ("busy", d.as_nanos()),
                    ("position", position.as_nanos()),
                    ("transfer", xfer.as_nanos()),
                ],
            );
        }
        self.publish();
        match &self.blocks[idx] {
            Some(data) => Ok(data.clone()),
            None => Err(DiskError::Unwritten { addr }),
        }
    }

    /// Reads a run of blocks as one device request: the same track-buffer
    /// economics as block-at-a-time reads (positioning once per distinct
    /// track, transfer per block), but charged as a single service interval
    /// — one queue pass, one clock event — instead of one per block.
    ///
    /// # Errors
    ///
    /// [`DiskError::OutOfRange`] if any address is bad (nothing is charged),
    /// [`DiskError::Unwritten`] on the first hole in the run (time for the
    /// whole run is still charged, as the media was read before checking).
    pub fn read_many(
        &mut self,
        ctx: &mut Ctx,
        addrs: &[BlockAddr],
    ) -> Result<Vec<Bytes>, DiskError> {
        self.check_alive()?;
        let mut idxs = Vec::with_capacity(addrs.len());
        for &addr in addrs {
            idxs.push(self.check_addr(addr)?);
        }
        let mut position = self.fault_penalty(ctx, addrs)?;
        let mut transfer = SimDuration::ZERO;
        let mut run_loads = 0u64;
        let mut run_hits = 0u64;
        for &addr in addrs {
            let track = self.geometry.track_of(addr);
            self.stats.reads += 1;
            if self.buffer_hit(addr) {
                self.stats.buffer_hits += 1;
                run_hits += 1;
                transfer += self.profile.transfer_per_block;
            } else {
                self.stats.track_loads += 1;
                run_loads += 1;
                position += self.seek_to(track);
                transfer +=
                    self.profile.transfer_per_block * u64::from(self.geometry.blocks_per_track);
                self.buffer_load(track);
            }
        }
        let total = position + transfer;
        let t0 = ctx.now();
        self.charge(ctx, total);
        if ctx.trace_enabled() {
            ctx.trace_span(
                "disk",
                "disk.read_run",
                t0,
                &[
                    ("blocks", addrs.len() as u64),
                    ("track_loads", run_loads),
                    ("hits", run_hits),
                    ("busy", total.as_nanos()),
                    ("position", position.as_nanos()),
                    ("transfer", transfer.as_nanos()),
                ],
            );
        }
        self.publish();
        idxs.iter()
            .zip(addrs)
            .map(|(&idx, &addr)| {
                self.blocks[idx]
                    .clone()
                    .ok_or(DiskError::Unwritten { addr })
            })
            .collect()
    }

    /// Writes a run of blocks as one device request: the controller sorts
    /// the queued run by track, so each *distinct* track pays positioning
    /// once (however the caller interleaved its blocks) and the remaining
    /// blocks on it stream at media rate — versus positioning per block
    /// for separate writes.
    ///
    /// Tracks are serviced in first-appearance order, preserving the
    /// caller's intra-track block order; a pre-existing buffered track
    /// does not discount its positioning charge, so a one-element run
    /// costs the same as [`write`](SimDisk::write).
    ///
    /// With write-behind enabled this falls back to block-at-a-time
    /// deferred writes, which already hide positioning behind the queue.
    ///
    /// # Errors
    ///
    /// [`DiskError::OutOfRange`] or [`DiskError::WrongBlockSize`] if any
    /// element is bad; nothing is written or charged in that case.
    pub fn write_many(
        &mut self,
        ctx: &mut Ctx,
        writes: &[(BlockAddr, Bytes)],
    ) -> Result<(), DiskError> {
        self.check_alive()?;
        for (addr, data) in writes {
            self.check_addr(*addr)?;
            if data.len() != self.geometry.block_size {
                return Err(DiskError::WrongBlockSize {
                    provided: data.len(),
                    required: self.geometry.block_size,
                });
            }
        }
        if self.write_behind.is_some() {
            for (addr, data) in writes {
                self.write(ctx, *addr, data)?;
            }
            return Ok(());
        }
        let extra = self.fault_penalty(ctx, &writes.iter().map(|(a, _)| *a).collect::<Vec<_>>())?;
        // Group the run per track, first-seen order, keeping each track's
        // blocks in caller order.
        let mut track_order: Vec<u32> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, (addr, _)) in writes.iter().enumerate() {
            let track = self.geometry.track_of(*addr);
            match track_order.iter().position(|&t| t == track) {
                Some(g) => groups[g].push(i),
                None => {
                    track_order.push(track);
                    groups.push(vec![i]);
                }
            }
        }
        let mut position = extra;
        let mut transfer = SimDuration::ZERO;
        for (group, &track) in groups.iter().zip(&track_order) {
            position += self.seek_to(track);
            transfer += self.profile.transfer_per_block * group.len() as u64;
            for &i in group {
                let (addr, data) = &writes[i];
                self.stats.writes += 1;
                self.blocks[addr.0 as usize] = Some(data.clone());
                self.buffer_note_write(*addr);
                if self.note_write_crash() {
                    // The run tore here: this block persisted, the rest of
                    // the run never reached media. The node is dead — no
                    // time is charged because no one is left to wait.
                    self.note_write_loss();
                    self.publish();
                    return Err(DiskError::Crashed);
                }
                if self.note_write_loss() {
                    // The run tore here and the medium is gone for good.
                    if ctx.trace_enabled() {
                        ctx.trace_instant("fault", "fault.disk_lost", &[]);
                    }
                    self.publish();
                    return Err(DiskError::Lost);
                }
            }
        }
        let total = position + transfer;
        let t0 = ctx.now();
        self.charge(ctx, total);
        if ctx.trace_enabled() {
            ctx.trace_span(
                "disk",
                "disk.write_run",
                t0,
                &[
                    ("blocks", writes.len() as u64),
                    ("tracks", groups.len() as u64),
                    ("busy", total.as_nanos()),
                    ("position", position.as_nanos()),
                    ("transfer", transfer.as_nanos()),
                ],
            );
        }
        self.publish();
        Ok(())
    }

    /// Writes one block (write-through), charging positioning plus one
    /// block transfer.
    ///
    /// # Errors
    ///
    /// [`DiskError::OutOfRange`] or [`DiskError::WrongBlockSize`].
    pub fn write(&mut self, ctx: &mut Ctx, addr: BlockAddr, data: &[u8]) -> Result<(), DiskError> {
        self.check_alive()?;
        let idx = self.check_addr(addr)?;
        if data.len() != self.geometry.block_size {
            return Err(DiskError::WrongBlockSize {
                provided: data.len(),
                required: self.geometry.block_size,
            });
        }
        let extra = self.fault_penalty(ctx, &[addr])?;
        self.stats.writes += 1;
        let position = extra + self.seek_to(self.geometry.track_of(addr));
        let d = position + self.profile.transfer_per_block;
        let t0 = ctx.now();
        if self.write_behind.is_some() {
            self.charge_deferred(ctx, d, self.profile.transfer_per_block);
        } else {
            self.charge(ctx, d);
        }
        if ctx.trace_enabled() {
            ctx.trace_span(
                "disk",
                "disk.write",
                t0,
                &[
                    ("busy", d.as_nanos()),
                    ("position", position.as_nanos()),
                    ("transfer", self.profile.transfer_per_block.as_nanos()),
                ],
            );
        }
        self.blocks[idx] = Some(Bytes::copy_from_slice(data));
        // The controller retains the image of the block it just transferred
        // — and only that block: the rest of the track was never read, so a
        // later read of a neighbor must still pay positioning. (A
        // read-modify-write of a block this process previously wrote or
        // loaded, e.g. the EFS tail-pointer fixup, still hits.)
        self.buffer_note_write(addr);
        // A scheduled kill after this write leaves it durable; the caller
        // sees Ok but the next timed operation — or the server's own
        // crash_down check before acknowledging — observes the dead disk.
        self.note_write_crash();
        if self.note_write_loss() && ctx.trace_enabled() {
            ctx.trace_instant("fault", "fault.disk_lost", &[]);
        }
        self.publish();
        Ok(())
    }

    /// Reads a block without charging time (formatting, tests, debugging).
    /// Returns `None` for every block once the medium is lost — raw access
    /// models inspecting the platters, and there are no platters left.
    pub fn read_raw(&self, addr: BlockAddr) -> Option<&[u8]> {
        if self.lost {
            return None;
        }
        self.blocks
            .get(addr.0 as usize)
            .and_then(|b| b.as_ref())
            .map(|b| b.as_ref())
    }

    /// Writes a block without charging time (formatting, tests).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range or `data` is not one block long.
    pub fn write_raw(&mut self, addr: BlockAddr, data: &[u8]) {
        let idx = self
            .check_addr(addr)
            .unwrap_or_else(|e| panic!("write_raw: {e}"));
        assert_eq!(
            data.len(),
            self.geometry.block_size,
            "write_raw: data must be exactly one block"
        );
        self.blocks[idx] = Some(Bytes::copy_from_slice(data));
    }

    /// Marks a block as unwritten without charging time.
    pub fn clear_raw(&mut self, addr: BlockAddr) {
        if let Ok(idx) = self.check_addr(addr) {
            self.blocks[idx] = None;
        }
    }

    /// Number of blocks currently holding data.
    pub fn blocks_in_use(&self) -> u32 {
        self.blocks.iter().filter(|b| b.is_some()).count() as u32
    }
}

impl BlockDevice for SimDisk {
    fn geometry(&self) -> DiskGeometry {
        SimDisk::geometry(self)
    }

    fn read(&mut self, ctx: &mut Ctx, addr: BlockAddr) -> Result<Bytes, DiskError> {
        SimDisk::read(self, ctx, addr)
    }

    fn write(&mut self, ctx: &mut Ctx, addr: BlockAddr, data: &[u8]) -> Result<(), DiskError> {
        SimDisk::write(self, ctx, addr, data)
    }

    fn read_many(&mut self, ctx: &mut Ctx, addrs: &[BlockAddr]) -> Result<Vec<Bytes>, DiskError> {
        SimDisk::read_many(self, ctx, addrs)
    }

    fn write_many(
        &mut self,
        ctx: &mut Ctx,
        writes: &[(BlockAddr, Bytes)],
    ) -> Result<(), DiskError> {
        SimDisk::write_many(self, ctx, writes)
    }

    fn flush(&mut self, ctx: &mut Ctx) -> Result<(), DiskError> {
        SimDisk::flush(self, ctx)
    }

    fn crash_down(&self) -> Option<SimDuration> {
        SimDisk::crash_down(self)
    }

    fn revive(&mut self) {
        SimDisk::revive(self);
    }

    fn lost(&self) -> bool {
        SimDisk::lost(self)
    }

    fn spare(&self) -> Option<Self> {
        let mut fresh = SimDisk::new(self.geometry, self.profile);
        // The observer watches the drive bay, not the medium: a racked-in
        // spare keeps reporting through the lost disk's sink (and resets
        // the observed counters to the fresh device's zeros).
        fresh.telemetry = self.telemetry.clone();
        fresh.publish();
        Some(fresh)
    }

    fn read_raw(&self, addr: BlockAddr) -> Option<&[u8]> {
        SimDisk::read_raw(self, addr)
    }

    fn write_raw(&mut self, addr: BlockAddr, data: &[u8]) {
        SimDisk::write_raw(self, addr, data);
    }

    fn clear_raw(&mut self, addr: BlockAddr) {
        SimDisk::clear_raw(self, addr);
    }

    fn stats(&self) -> DiskStats {
        SimDisk::stats(self)
    }

    fn head_track(&self) -> u32 {
        SimDisk::head_track(self)
    }
}

impl fmt::Debug for SimDisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimDisk")
            .field("geometry", &self.geometry)
            .field("profile", &self.profile)
            .field("buffered_track", &self.buffered_track)
            .field("head_track", &self.head_track)
            .field("dead", &self.dead)
            .field("lost", &self.lost)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim::{SimConfig, SimTime, Simulation};

    fn on_disk<R: Send + 'static>(
        profile: DiskProfile,
        f: impl FnOnce(&mut Ctx, &mut SimDisk) -> R + Send + 'static,
    ) -> R {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", move |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), profile);
            f(ctx, &mut disk)
        })
    }

    fn block_of(byte: u8) -> Vec<u8> {
        vec![byte; 1024]
    }

    #[test]
    fn geometry_defaults_match_paper_disk() {
        let g = DiskGeometry::default();
        assert_eq!(g.capacity_bytes(), 64 * 1024 * 1024, "64 MB simulated disk");
        assert_eq!(g.track_of(BlockAddr::new(0)), 0);
        assert_eq!(g.track_of(BlockAddr::new(7)), 0);
        assert_eq!(g.track_of(BlockAddr::new(8)), 1);
    }

    #[test]
    fn write_then_read_round_trips() {
        on_disk(DiskProfile::instant(), |ctx, disk| {
            for i in 0..20u32 {
                disk.write(ctx, BlockAddr::new(i), &block_of(i as u8))
                    .unwrap();
            }
            for i in 0..20u32 {
                assert_eq!(
                    disk.read(ctx, BlockAddr::new(i)).unwrap(),
                    block_of(i as u8)
                );
            }
        });
    }

    #[test]
    fn read_of_unwritten_block_errors() {
        on_disk(DiskProfile::instant(), |ctx, disk| {
            let err = disk.read(ctx, BlockAddr::new(5)).unwrap_err();
            assert_eq!(
                err,
                DiskError::Unwritten {
                    addr: BlockAddr::new(5)
                }
            );
        });
    }

    #[test]
    fn out_of_range_rejected() {
        on_disk(DiskProfile::instant(), |ctx, disk| {
            let cap = disk.capacity_blocks();
            let err = disk.read(ctx, BlockAddr::new(cap)).unwrap_err();
            assert!(matches!(err, DiskError::OutOfRange { .. }));
            let err = disk
                .write(ctx, BlockAddr::new(cap), &block_of(0))
                .unwrap_err();
            assert!(matches!(err, DiskError::OutOfRange { .. }));
        });
    }

    #[test]
    fn wrong_block_size_rejected() {
        on_disk(DiskProfile::instant(), |ctx, disk| {
            let err = disk.write(ctx, BlockAddr::new(0), &[0u8; 100]).unwrap_err();
            assert_eq!(
                err,
                DiskError::WrongBlockSize {
                    provided: 100,
                    required: 1024
                }
            );
        });
    }

    #[test]
    fn sequential_reads_hit_track_buffer() {
        let stats = on_disk(DiskProfile::wren(), |ctx, disk| {
            for i in 0..16u32 {
                disk.write(ctx, BlockAddr::new(i), &block_of(1)).unwrap();
            }
            for i in 0..16u32 {
                disk.read(ctx, BlockAddr::new(i)).unwrap();
            }
            disk.stats()
        });
        // 16 sequential reads over 2 tracks of 8: 2 track loads, 14 hits.
        assert_eq!(stats.reads, 16);
        assert_eq!(stats.track_loads, 2);
        assert_eq!(stats.buffer_hits, 14);
    }

    #[test]
    fn timing_matches_profile() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        let (t_miss, t_hit, t_write, t_after_write) = sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            for i in 0..8u32 {
                disk.write_raw(BlockAddr::new(i), &block_of(0));
            }
            let t0 = ctx.now();
            disk.read(ctx, BlockAddr::new(0)).unwrap(); // miss: 15 + 8*1
            let t1 = ctx.now();
            disk.read(ctx, BlockAddr::new(1)).unwrap(); // hit: 1
            let t2 = ctx.now();
            disk.write(ctx, BlockAddr::new(2), &block_of(9)).unwrap(); // 15 + 1
            let t3 = ctx.now();
            // Same track as the write: still buffered.
            disk.read(ctx, BlockAddr::new(3)).unwrap(); // hit: 1
            let t4 = ctx.now();
            (t1 - t0, t2 - t1, t3 - t2, t4 - t3)
        });
        assert_eq!(t_miss, SimDuration::from_millis(23));
        assert_eq!(t_hit, SimDuration::from_millis(1));
        assert_eq!(t_write, SimDuration::from_millis(16));
        assert_eq!(
            t_after_write,
            SimDuration::from_millis(1),
            "write retains track"
        );
    }

    #[test]
    fn amortized_sequential_read_is_well_below_positioning() {
        // The Table-2 effect: "average read time for typical files is
        // substantially less than disk latency because of full-track
        // buffering".
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        let per_block = sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            let n = 512u32;
            for i in 0..n {
                disk.write_raw(BlockAddr::new(i), &block_of(0));
            }
            let t0 = ctx.now();
            for i in 0..n {
                disk.read(ctx, BlockAddr::new(i)).unwrap();
            }
            (ctx.now() - t0) / u64::from(n)
        });
        assert!(
            per_block < SimDuration::from_millis(4),
            "amortized {per_block} should be far below 15ms positioning"
        );
    }

    #[test]
    fn busy_time_accumulates() {
        let stats = on_disk(DiskProfile::wren(), |ctx, disk| {
            disk.write(ctx, BlockAddr::new(0), &block_of(0)).unwrap();
            disk.read(ctx, BlockAddr::new(0)).unwrap();
            disk.stats()
        });
        // write 16ms + buffered read 1ms (the write retained the track)
        assert_eq!(stats.busy, SimDuration::from_millis(17));
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.reads, 1);
    }

    #[test]
    fn write_behind_hides_latency_until_the_queue_fills() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        let (first_writes, long_run_avg, read_after) = sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            disk.enable_write_behind(4);
            let t0 = ctx.now();
            for i in 0..4u32 {
                disk.write(ctx, BlockAddr::new(i), &block_of(i as u8))
                    .unwrap();
            }
            let first = (ctx.now() - t0) / 4;
            let t1 = ctx.now();
            for i in 4..64u32 {
                disk.write(ctx, BlockAddr::new(i), &block_of(i as u8))
                    .unwrap();
            }
            let sustained = (ctx.now() - t1) / 60;
            // A read queues behind the remaining writes.
            let t2 = ctx.now();
            disk.read(ctx, BlockAddr::new(0)).unwrap();
            let read_after = ctx.now() - t2;
            (first, sustained, read_after)
        });
        assert!(
            first_writes <= SimDuration::from_millis(1),
            "buffered writes return at transfer speed: {first_writes}"
        );
        // Sustained throughput converges to the media rate (16ms/write).
        assert!(
            long_run_avg >= SimDuration::from_millis(14)
                && long_run_avg <= SimDuration::from_millis(18),
            "backpressure enforces the media rate: {long_run_avg}"
        );
        assert!(
            read_after > SimDuration::from_millis(30),
            "reads wait for queued writes: {read_after}"
        );
    }

    #[test]
    fn write_behind_preserves_data() {
        on_disk(DiskProfile::wren(), |ctx, disk| {
            disk.enable_write_behind(8);
            for i in 0..32u32 {
                disk.write(ctx, BlockAddr::new(i), &block_of(i as u8))
                    .unwrap();
            }
            for i in 0..32u32 {
                assert_eq!(disk.read(ctx, BlockAddr::new(i)).unwrap()[0], i as u8);
            }
        });
    }

    #[test]
    fn crash_fires_after_the_scheduled_write_and_revive_restores() {
        use parsim::CrashAt;
        on_disk(DiskProfile::instant(), |ctx, disk| {
            let down = SimDuration::from_millis(100);
            disk.schedule_crashes(CrashSchedule::from_plan(
                &[CrashAt {
                    disk: 0,
                    after_writes: 3,
                    down,
                }],
                0,
            ));
            disk.write(ctx, BlockAddr::new(0), &block_of(1)).unwrap();
            disk.write(ctx, BlockAddr::new(1), &block_of(2)).unwrap();
            assert!(disk.crash_down().is_none());
            // The third write is durable, but the node dies right after it.
            disk.write(ctx, BlockAddr::new(2), &block_of(3)).unwrap();
            assert_eq!(disk.crash_down(), Some(down));
            assert_eq!(
                disk.read(ctx, BlockAddr::new(0)).unwrap_err(),
                DiskError::Crashed
            );
            assert_eq!(
                disk.write(ctx, BlockAddr::new(3), &block_of(4))
                    .unwrap_err(),
                DiskError::Crashed
            );
            assert_eq!(disk.flush(ctx).unwrap_err(), DiskError::Crashed);
            // Recovery still sees the durable image through raw access.
            assert_eq!(disk.read_raw(BlockAddr::new(2)).unwrap()[0], 3);
            disk.revive();
            assert!(disk.crash_down().is_none());
            assert_eq!(disk.read(ctx, BlockAddr::new(2)).unwrap()[0], 3);
        });
    }

    #[test]
    fn crash_tears_a_multi_block_run() {
        use parsim::CrashAt;
        on_disk(DiskProfile::instant(), |ctx, disk| {
            disk.schedule_crashes(CrashSchedule::from_plan(
                &[CrashAt {
                    disk: 0,
                    after_writes: 3,
                    down: SimDuration::from_millis(1),
                }],
                0,
            ));
            let writes: Vec<(BlockAddr, Bytes)> = (0..6u32)
                .map(|i| (BlockAddr::new(i), Bytes::from(block_of(i as u8 + 1))))
                .collect();
            assert_eq!(
                disk.write_many(ctx, &writes).unwrap_err(),
                DiskError::Crashed
            );
            // The pre-crash prefix persisted; the tail never reached media.
            for i in 0..3u32 {
                assert_eq!(disk.read_raw(BlockAddr::new(i)).unwrap()[0], i as u8 + 1);
            }
            for i in 3..6u32 {
                assert!(disk.read_raw(BlockAddr::new(i)).is_none());
            }
        });
    }

    #[test]
    fn crash_schedule_ignores_other_disks_and_stale_triggers() {
        use parsim::CrashAt;
        let kill = CrashAt {
            disk: 1,
            after_writes: 2,
            down: SimDuration::from_millis(1),
        };
        assert!(CrashSchedule::from_plan(&[kill], 0).is_none());
        assert!(CrashSchedule::from_plan(&[], 1).is_none());
        on_disk(DiskProfile::instant(), |ctx, disk| {
            // Two triggers; after the first fires and the disk revives,
            // the second (later ordinal) still arms, but a trigger whose
            // ordinal already passed is dropped at revive.
            disk.schedule_crashes(CrashSchedule::from_plan(
                &[
                    CrashAt {
                        disk: 0,
                        after_writes: 1,
                        down: SimDuration::from_millis(1),
                    },
                    CrashAt {
                        disk: 0,
                        after_writes: 2,
                        down: SimDuration::from_millis(2),
                    },
                ],
                0,
            ));
            disk.write(ctx, BlockAddr::new(0), &block_of(1)).unwrap();
            assert!(disk.crash_down().is_some());
            disk.revive();
            disk.write(ctx, BlockAddr::new(1), &block_of(2)).unwrap();
            assert_eq!(disk.crash_down(), Some(SimDuration::from_millis(2)));
            disk.revive();
            disk.write(ctx, BlockAddr::new(2), &block_of(3)).unwrap();
            assert!(disk.crash_down().is_none(), "no triggers left");
        });
    }

    #[test]
    fn flush_is_free_when_idle_and_drains_write_behind() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            let t0 = ctx.now();
            disk.flush(ctx).unwrap();
            assert_eq!(ctx.now(), t0, "flush on a synchronous disk is free");
            disk.enable_write_behind(8);
            for i in 0..4u32 {
                disk.write(ctx, BlockAddr::new(i), &block_of(i as u8))
                    .unwrap();
            }
            let t1 = ctx.now();
            disk.flush(ctx).unwrap();
            assert!(
                ctx.now() - t1 > SimDuration::from_millis(30),
                "flush waits for the queued media work"
            );
            assert_eq!(disk.deferred_outstanding(ctx.now()), 0);
            let t2 = ctx.now();
            disk.flush(ctx).unwrap();
            assert_eq!(ctx.now(), t2, "flush on a drained queue is free");
        });
    }

    #[test]
    fn read_many_matches_block_at_a_time_cost() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        let (run, single) = sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            let addrs: Vec<BlockAddr> = (0..16u32).map(BlockAddr::new).collect();
            for &a in &addrs {
                disk.write_raw(a, &block_of(a.index() as u8));
            }
            let t0 = ctx.now();
            let run_data = disk.read_many(ctx, &addrs).unwrap();
            let run = ctx.now() - t0;
            for (a, d) in addrs.iter().zip(&run_data) {
                assert_eq!(d[0], a.index() as u8);
            }

            let mut disk2 = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            for &a in &addrs {
                disk2.write_raw(a, &block_of(0));
            }
            let t1 = ctx.now();
            for &a in &addrs {
                disk2.read(ctx, a).unwrap();
            }
            (run, ctx.now() - t1)
        });
        // Same track-buffer economics either way: 2 track loads + 14 hits.
        assert_eq!(run, single);
        assert_eq!(run, SimDuration::from_millis(2 * 23 + 14));
    }

    #[test]
    fn write_many_pays_positioning_once_per_track() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        let (run, single) = sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            let writes: Vec<(BlockAddr, Bytes)> = (0..8u32)
                .map(|i| (BlockAddr::new(i), Bytes::from(block_of(i as u8))))
                .collect();
            let t0 = ctx.now();
            disk.write_many(ctx, &writes).unwrap();
            let run = ctx.now() - t0;
            for i in 0..8u32 {
                assert_eq!(disk.read_raw(BlockAddr::new(i)).unwrap()[0], i as u8);
            }

            let mut disk2 = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            let t1 = ctx.now();
            for (a, d) in &writes {
                disk2.write(ctx, *a, d).unwrap();
            }
            (run, ctx.now() - t1)
        });
        // One track: 15 ms positioning + 8 x 1 ms transfer = 23 ms,
        // versus 8 x 16 ms block-at-a-time.
        assert_eq!(run, SimDuration::from_millis(23));
        assert_eq!(single, SimDuration::from_millis(8 * 16));
    }

    #[test]
    fn single_element_runs_cost_the_same_as_single_ops() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            let t0 = ctx.now();
            disk.write_many(ctx, &[(BlockAddr::new(0), Bytes::from(block_of(1)))])
                .unwrap();
            assert_eq!(ctx.now() - t0, SimDuration::from_millis(16));
            // The run buffered the block it wrote, exactly like `write`
            // would: rereading it is a hit ...
            let t1 = ctx.now();
            disk.read_many(ctx, &[BlockAddr::new(0)]).unwrap();
            assert_eq!(ctx.now() - t1, SimDuration::from_millis(1));
            // ... but its untouched neighbor was never transferred, so
            // reading it is a full-track miss, not a phantom hit.
            let t2 = ctx.now();
            let got = disk.read_many(ctx, &[BlockAddr::new(1)]);
            assert_eq!(ctx.now() - t2, SimDuration::from_millis(23));
            assert!(matches!(got, Err(DiskError::Unwritten { .. })));
        });
    }

    #[test]
    fn read_after_partial_write_pays_positioning() {
        // Regression test: `write` used to mark the whole track buffered
        // after transferring a single block, so reads of the track's other
        // blocks were phantom hits that skipped positioning.
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        let stats = sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            disk.write_raw(BlockAddr::new(3), &block_of(3));
            disk.write(ctx, BlockAddr::new(2), &block_of(2)).unwrap(); // 16ms
                                                                       // Same track, but block 3 was never transferred: full miss.
            let t0 = ctx.now();
            disk.read(ctx, BlockAddr::new(3)).unwrap();
            assert_eq!(ctx.now() - t0, SimDuration::from_millis(23));
            // The miss loaded the whole track; now everything hits.
            let t1 = ctx.now();
            disk.read(ctx, BlockAddr::new(2)).unwrap();
            assert_eq!(ctx.now() - t1, SimDuration::from_millis(1));
            disk.stats()
        });
        assert_eq!(stats.track_loads, 1);
        assert_eq!(stats.buffer_hits, 1);
    }

    #[test]
    fn rereading_own_write_still_hits() {
        // The block the write actually transferred stays valid — the EFS
        // tail-pointer read-modify-write pattern must not regress.
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            disk.write(ctx, BlockAddr::new(5), &block_of(5)).unwrap();
            let t0 = ctx.now();
            disk.read(ctx, BlockAddr::new(5)).unwrap();
            assert_eq!(ctx.now() - t0, SimDuration::from_millis(1));
        });
    }

    #[test]
    fn write_many_groups_alternating_tracks() {
        // Regression test: `write_many` documented "each distinct track
        // pays positioning once" but charged positioning on every track
        // *switch*. An alternating run must cost 2 positionings, not 6.
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            let blocks = [0u32, 8, 1, 9, 2, 10]; // track 0 / track 1 interleaved
            let writes: Vec<(BlockAddr, Bytes)> = blocks
                .iter()
                .map(|&i| (BlockAddr::new(i), Bytes::from(block_of(i as u8))))
                .collect();
            let t0 = ctx.now();
            disk.write_many(ctx, &writes).unwrap();
            // 2 tracks x 15ms positioning + 6 x 1ms transfer.
            assert_eq!(ctx.now() - t0, SimDuration::from_millis(2 * 15 + 6));
            for &i in &blocks {
                assert_eq!(disk.read_raw(BlockAddr::new(i)).unwrap()[0], i as u8);
            }
            // Track 1 was serviced last; its written blocks are buffered.
            let t1 = ctx.now();
            disk.read(ctx, BlockAddr::new(9)).unwrap();
            assert_eq!(ctx.now() - t1, SimDuration::from_millis(1));
            // Track 0's image was displaced: full miss.
            let t2 = ctx.now();
            disk.read(ctx, BlockAddr::new(0)).unwrap();
            assert_eq!(ctx.now() - t2, SimDuration::from_millis(23));
            assert_eq!(disk.stats().writes, 6);
        });
    }

    #[test]
    fn write_many_rejects_bad_runs_without_charging() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            let cap = disk.capacity_blocks();
            let err = disk
                .write_many(
                    ctx,
                    &[
                        (BlockAddr::new(0), Bytes::from(block_of(0))),
                        (BlockAddr::new(cap), Bytes::from(block_of(0))),
                    ],
                )
                .unwrap_err();
            assert!(matches!(err, DiskError::OutOfRange { .. }));
            let err = disk
                .write_many(ctx, &[(BlockAddr::new(0), Bytes::from(vec![0u8; 10]))])
                .unwrap_err();
            assert!(matches!(err, DiskError::WrongBlockSize { .. }));
            assert_eq!(ctx.now(), SimTime::ZERO, "failed runs charge nothing");
            assert_eq!(disk.blocks_in_use(), 0, "failed runs write nothing");
        });
    }

    #[test]
    fn seek_curve_charges_by_distance() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        let stats = sim.block_on(node, "driver", |ctx| {
            let profile = DiskProfile {
                positioning: SimDuration::from_millis(15),
                transfer_per_block: SimDuration::from_millis(1),
                seek: Some(SeekCurve {
                    settle: SimDuration::from_millis(4),
                    per_track: SimDuration::from_micros(10),
                }),
            };
            let mut disk = SimDisk::new(DiskGeometry::default(), profile);
            // Head starts at track 0: a same-track write costs settle only.
            let t0 = ctx.now();
            disk.write(ctx, BlockAddr::new(0), &block_of(0)).unwrap();
            assert_eq!(ctx.now() - t0, SimDuration::from_millis(5), "4 settle + 1");
            // 100 tracks away: 4 ms settle + 100 × 10 µs travel + 1 transfer.
            let t1 = ctx.now();
            disk.write(ctx, BlockAddr::new(800), &block_of(1)).unwrap();
            assert_eq!(ctx.now() - t1, SimDuration::from_millis(6));
            // Coming back costs the same distance again.
            let t2 = ctx.now();
            disk.write(ctx, BlockAddr::new(1), &block_of(2)).unwrap();
            assert_eq!(ctx.now() - t2, SimDuration::from_millis(6));
            // A read miss seeks too: head at 0, target track 100.
            disk.write_raw(BlockAddr::new(801), &block_of(3));
            let t3 = ctx.now();
            disk.read(ctx, BlockAddr::new(801)).unwrap();
            assert_eq!(
                ctx.now() - t3,
                SimDuration::from_millis(4 + 1 + 8),
                "settle + travel + full-track transfer"
            );
            disk.stats()
        });
        assert_eq!(stats.head_travel, 300, "0→100→0→100 tracks");
    }

    #[test]
    fn flat_profile_reports_no_head_travel() {
        let stats = on_disk(DiskProfile::wren(), |ctx, disk| {
            disk.write(ctx, BlockAddr::new(0), &block_of(0)).unwrap();
            disk.write(ctx, BlockAddr::new(4000), &block_of(1)).unwrap();
            disk.stats()
        });
        assert_eq!(stats.head_travel, 0);
    }

    #[test]
    fn wren_seek_average_matches_flat_wren() {
        // The calibrated curve: an average-distance random seek (a third
        // of the stroke) costs about the flat profile's 15 ms.
        let p = DiskProfile::wren_seek();
        let avg = DiskGeometry::default().tracks / 3;
        let cost = p.positioning_cost(0, avg);
        assert!(
            cost >= SimDuration::from_millis(14) && cost <= SimDuration::from_millis(16),
            "average seek {cost} should be near 15 ms"
        );
        assert!(p.positioning_cost(0, 0) < SimDuration::from_millis(9));
    }

    #[test]
    fn write_behind_backpressure_bounds_outstanding_ops_not_worst_case_time() {
        // Regression test: backpressure used to bound the queue by a
        // worst-case `positioning + transfer` time lead, so writes that
        // cost less than the worst case (short seeks under a curve) were
        // mis-throttled. The bound is the queued-op *count*.
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", |ctx| {
            let profile = DiskProfile {
                positioning: SimDuration::from_millis(15),
                transfer_per_block: SimDuration::from_millis(1),
                seek: Some(SeekCurve {
                    settle: SimDuration::from_millis(4),
                    per_track: SimDuration::from_micros(10),
                }),
            };
            let mut disk = SimDisk::new(DiskGeometry::default(), profile);
            disk.enable_write_behind(4);
            // Same-track writes cost 5 ms each on the device but return at
            // the 1 ms transfer rate until `depth` are outstanding.
            let t0 = ctx.now();
            for i in 0..4u32 {
                disk.write(ctx, BlockAddr::new(i), &block_of(i as u8))
                    .unwrap();
            }
            assert_eq!(
                ctx.now() - t0,
                SimDuration::from_millis(4),
                "first `depth` writes pay only the buffer transfer"
            );
            assert_eq!(disk.deferred_outstanding(ctx.now()), 4);
            // The fifth write's transfer ends at t = 5 ms, exactly when the
            // first queued write completes on the device — the slot frees
            // just in time, so no extra stall.
            let t1 = ctx.now();
            disk.write(ctx, BlockAddr::new(4), &block_of(4)).unwrap();
            assert_eq!(ctx.now() - t1, SimDuration::from_millis(1));
            assert_eq!(disk.deferred_outstanding(ctx.now()), 4);
            // The sixth write (queued at t = 5 ms) must wait for the write
            // completing at t = 10 ms before a slot opens: 1 ms transfer
            // plus 4 ms stall. The old time-lead bound allowed a lead of
            // depth × (positioning + transfer) = 64 ms and would not have
            // stalled here at all, letting far more than `depth` of these
            // cheap writes pile up outstanding.
            let t2 = ctx.now();
            disk.write(ctx, BlockAddr::new(5), &block_of(5)).unwrap();
            assert_eq!(
                ctx.now() - t2,
                SimDuration::from_millis(5),
                "1 ms transfer + 4 ms waiting for a queue slot"
            );
            assert_eq!(disk.deferred_outstanding(ctx.now()), 4);
        });
    }

    #[test]
    fn raw_access_bypasses_clock() {
        let mut sim = Simulation::new(SimConfig::default());
        let node = sim.add_node("io");
        sim.block_on(node, "driver", |ctx| {
            let mut disk = SimDisk::new(DiskGeometry::default(), DiskProfile::wren());
            disk.write_raw(BlockAddr::new(3), &block_of(3));
            assert_eq!(disk.read_raw(BlockAddr::new(3)).unwrap()[0], 3);
            assert_eq!(disk.read_raw(BlockAddr::new(4)), None);
            assert_eq!(ctx.now(), SimTime::ZERO, "raw access is free");
            assert_eq!(disk.blocks_in_use(), 1);
            disk.clear_raw(BlockAddr::new(3));
            assert_eq!(disk.blocks_in_use(), 0);
        });
    }

    fn targeted(disk: u32, block: u32, fails: u32) -> parsim::DiskFaults {
        parsim::DiskFaults {
            targets: vec![parsim::BlockFaultRule { disk, block, fails }],
            ..parsim::DiskFaults::default()
        }
    }

    #[test]
    fn inert_plans_install_no_fault_state() {
        assert!(DiskFaultState::from_plan(&parsim::DiskFaults::default(), 7, 0).is_none());
        // Rules for a different disk index are equally inert here.
        assert!(DiskFaultState::from_plan(&targeted(3, 0, 2), 7, 0).is_none());
        // A rate without a consecutive cap can never fire.
        let uncapped = parsim::DiskFaults {
            error_per_mille: 500,
            max_consecutive: 0,
            ..parsim::DiskFaults::default()
        };
        assert!(DiskFaultState::from_plan(&uncapped, 7, 0).is_none());
    }

    #[test]
    fn targeted_rule_charges_positioning_per_failure_then_heals() {
        let (t_faulted, t_healed, stats) = on_disk(DiskProfile::wren(), |ctx, disk| {
            for i in 0..8u32 {
                disk.write_raw(BlockAddr::new(i), &block_of(0));
            }
            disk.inject_faults(DiskFaultState::from_plan(&targeted(0, 0, 2), 7, 0));
            let t0 = ctx.now();
            // Two absorbed failures (15ms positioning each) + normal miss.
            let data = disk.read(ctx, BlockAddr::new(0)).unwrap();
            assert_eq!(data, block_of(0), "retried read still returns the data");
            let t1 = ctx.now();
            disk.read(ctx, BlockAddr::new(1)).unwrap(); // healed: plain hit
            (t1 - t0, ctx.now() - t1, disk.stats())
        });
        assert_eq!(t_faulted, SimDuration::from_millis(2 * 15 + 23));
        assert_eq!(t_healed, SimDuration::from_millis(1));
        assert_eq!(stats.transient_faults, 2);
    }

    #[test]
    fn random_failures_are_capped_per_request() {
        let plan = parsim::DiskFaults {
            error_per_mille: 1000, // every attempt fails...
            max_consecutive: 2,    // ...but at most twice in a row
            ..parsim::DiskFaults::default()
        };
        let (t_read, stats) = on_disk(DiskProfile::wren(), move |ctx, disk| {
            for i in 0..8u32 {
                disk.write_raw(BlockAddr::new(i), &block_of(0));
            }
            disk.inject_faults(DiskFaultState::from_plan(&plan, 7, 0));
            let t0 = ctx.now();
            disk.read(ctx, BlockAddr::new(0)).unwrap();
            (ctx.now() - t0, disk.stats())
        });
        // Exactly the cap's worth of failures, then the forced success.
        assert_eq!(t_read, SimDuration::from_millis(2 * 15 + 23));
        assert_eq!(stats.transient_faults, 2);
    }

    #[test]
    fn fault_outlasting_the_driver_escapes_uncharged() {
        on_disk(DiskProfile::wren(), |ctx, disk| {
            for i in 0..8u32 {
                disk.write_raw(BlockAddr::new(i), &block_of(0));
            }
            let fails = DRIVER_RETRY_LIMIT + 4;
            disk.inject_faults(DiskFaultState::from_plan(&targeted(0, 0, fails), 7, 0));
            let t0 = ctx.now();
            let err = disk.read(ctx, BlockAddr::new(0)).unwrap_err();
            assert_eq!(
                err,
                DiskError::Transient {
                    addr: BlockAddr::new(0),
                    attempts: fails,
                }
            );
            assert_eq!(ctx.now(), t0, "a given-up request charges nothing");
            // The rule's budget is spent: the retried request succeeds.
            disk.read(ctx, BlockAddr::new(0)).unwrap();
            assert_eq!(disk.stats().transient_faults, u64::from(fails));
        });
    }

    #[test]
    fn run_requests_absorb_faults_once_per_request() {
        let (t_run, stats) = on_disk(DiskProfile::wren(), |ctx, disk| {
            disk.inject_faults(DiskFaultState::from_plan(&targeted(0, 9, 3), 7, 0));
            let writes: Vec<(BlockAddr, Bytes)> = (8..16u32)
                .map(|i| (BlockAddr::new(i), Bytes::from(block_of(i as u8))))
                .collect();
            let t0 = ctx.now();
            // One track, one positioning, 8 transfers + 3 absorbed failures.
            disk.write_many(ctx, &writes).unwrap();
            (ctx.now() - t0, disk.stats())
        });
        assert_eq!(t_run, SimDuration::from_millis(3 * 15 + 15 + 8));
        assert_eq!(stats.transient_faults, 3);
    }

    #[test]
    fn fault_streams_are_deterministic_per_seed() {
        let plan = parsim::DiskFaults {
            error_per_mille: 400,
            max_consecutive: 3,
            ..parsim::DiskFaults::default()
        };
        let run = |seed: u64| {
            let plan = plan.clone();
            on_disk(DiskProfile::wren(), move |ctx, disk| {
                disk.inject_faults(DiskFaultState::from_plan(&plan, seed, 2));
                for i in 0..64u32 {
                    disk.write(ctx, BlockAddr::new(i), &block_of(1)).unwrap();
                }
                (ctx.now(), disk.stats())
            })
        };
        assert_eq!(run(11), run(11), "same seed, same faults");
        assert_ne!(
            run(11).1.transient_faults,
            run(12).1.transient_faults,
            "different seeds draw different streams"
        );
    }
}
