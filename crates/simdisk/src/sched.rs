//! Disk request scheduling: policy-ordered queues with an aging bound.
//!
//! The paper's prototype serviced LFS requests strictly in arrival order,
//! which leaves nothing to win under concurrent load. Real disk stacks
//! reorder the pending queue to cut head travel (SSTF, scan variants);
//! this module provides the queue those servers drain into. The queue is
//! payload-generic so the LFS server can park whole requests in it while
//! the policy decides service order by target track.
//!
//! Starvation control: every pop that chooses a *younger* request over an
//! older queued one counts one "bypass" against each older entry. Once an
//! entry has been bypassed [`SchedConfig::aging_rounds`] times it becomes
//! *aged*, and every subsequent pop must serve the oldest aged entry —
//! so no request is ever overtaken by later arrivals more than
//! `aging_rounds` times, and a request queued behind `k` older entries is
//! always served within `k + aging_rounds + 1` service rounds.

use std::fmt;

/// Service-order policy for a [`RequestQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// Strict arrival order — the paper prototype's behaviour.
    #[default]
    Fifo,
    /// Shortest seek time first: serve the request whose target track is
    /// closest to the head (ties break to the oldest request).
    Sstf,
    /// Circular scan: the head sweeps toward higher tracks, serving the
    /// nearest request at or above it, then jumps back to the lowest
    /// pending track and sweeps again.
    CScan,
}

impl fmt::Display for SchedPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Sstf => "sstf",
            SchedPolicy::CScan => "cscan",
        })
    }
}

/// Policy plus starvation bound for a [`RequestQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedConfig {
    /// The service-order policy.
    pub policy: SchedPolicy,
    /// Maximum number of times a queued request may be overtaken by
    /// later arrivals before it is forced to the front. Irrelevant under
    /// [`SchedPolicy::Fifo`], which never overtakes.
    pub aging_rounds: u32,
}

impl SchedConfig {
    /// Arrival-order service: the default, matching the paper prototype.
    pub fn fifo() -> Self {
        SchedConfig {
            policy: SchedPolicy::Fifo,
            aging_rounds: 16,
        }
    }

    /// The given policy with the default aging bound.
    pub fn new(policy: SchedPolicy) -> Self {
        SchedConfig {
            policy,
            aging_rounds: 16,
        }
    }
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig::fifo()
    }
}

struct Entry<T> {
    seq: u64,
    track: u32,
    /// Times a pop chose a younger (later-arriving) entry over this one.
    bypassed: u32,
    item: T,
}

/// A pending-request queue whose pop order follows a [`SchedPolicy`],
/// with the aging bound described in the module docs.
///
/// Generic over the queued payload: the LFS server queues whole requests,
/// tests queue plain markers.
pub struct RequestQueue<T> {
    config: SchedConfig,
    entries: Vec<Entry<T>>,
    next_seq: u64,
}

impl<T> RequestQueue<T> {
    /// An empty queue with the given configuration.
    pub fn new(config: SchedConfig) -> Self {
        RequestQueue {
            config,
            entries: Vec::new(),
            next_seq: 0,
        }
    }

    /// The queue's configuration.
    pub fn config(&self) -> SchedConfig {
        self.config
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Queues a request targeting `track`.
    pub fn push(&mut self, track: u32, item: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Entry {
            seq,
            track,
            bypassed: 0,
            item,
        });
    }

    /// Index of the entry the policy would serve next with the head on
    /// `head_track`, ignoring aging.
    fn policy_choice(&self, head_track: u32) -> usize {
        let by_seq = |i: usize| self.entries[i].seq;
        match self.config.policy {
            SchedPolicy::Fifo => (0..self.entries.len())
                .min_by_key(|&i| by_seq(i))
                .expect("queue is non-empty"),
            SchedPolicy::Sstf => (0..self.entries.len())
                .min_by_key(|&i| (self.entries[i].track.abs_diff(head_track), by_seq(i)))
                .expect("queue is non-empty"),
            SchedPolicy::CScan => {
                let ahead = (0..self.entries.len())
                    .filter(|&i| self.entries[i].track >= head_track)
                    .min_by_key(|&i| (self.entries[i].track, by_seq(i)));
                ahead.unwrap_or_else(|| {
                    (0..self.entries.len())
                        .min_by_key(|&i| (self.entries[i].track, by_seq(i)))
                        .expect("queue is non-empty")
                })
            }
        }
    }

    /// Removes and returns the next request to service with the head on
    /// `head_track`, along with its target track, honouring the aging
    /// bound. Returns `None` when the queue is empty.
    pub fn pop(&mut self, head_track: u32) -> Option<(u32, T)> {
        if self.entries.is_empty() {
            return None;
        }
        // Aged entries pre-empt the policy, oldest first.
        let aged = (0..self.entries.len())
            .filter(|&i| self.entries[i].bypassed >= self.config.aging_rounds)
            .min_by_key(|&i| self.entries[i].seq);
        let idx = aged.unwrap_or_else(|| self.policy_choice(head_track));
        let chosen_seq = self.entries[idx].seq;
        let entry = self.entries.swap_remove(idx);
        for other in &mut self.entries {
            if other.seq < chosen_seq {
                other.bypassed += 1;
            }
        }
        Some((entry.track, entry.item))
    }
}

impl<T> fmt::Debug for RequestQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RequestQueue")
            .field("config", &self.config)
            .field("len", &self.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut RequestQueue<u32>, mut head: u32) -> Vec<u32> {
        let mut out = Vec::new();
        while let Some((track, item)) = q.pop(head) {
            head = track;
            out.push(item);
        }
        out
    }

    #[test]
    fn fifo_pops_in_arrival_order() {
        let mut q = RequestQueue::new(SchedConfig::fifo());
        for (i, track) in [90u32, 10, 50, 30].iter().enumerate() {
            q.push(*track, i as u32);
        }
        assert_eq!(drain(&mut q, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn sstf_follows_the_head() {
        let mut q = RequestQueue::new(SchedConfig::new(SchedPolicy::Sstf));
        for (i, track) in [90u32, 10, 50, 30].iter().enumerate() {
            q.push(*track, i as u32);
        }
        // Head at 0: nearest-first chain 10 → 30 → 50 → 90.
        assert_eq!(drain(&mut q, 0), vec![1, 3, 2, 0]);
    }

    #[test]
    fn sstf_breaks_ties_to_the_oldest() {
        let mut q = RequestQueue::new(SchedConfig::new(SchedPolicy::Sstf));
        q.push(40, 0);
        q.push(60, 1);
        q.push(60, 2);
        // 40 and 60 are equidistant from 50; the older (40) wins, then the
        // two at 60 go in arrival order.
        assert_eq!(drain(&mut q, 50), vec![0, 1, 2]);
    }

    #[test]
    fn cscan_sweeps_upward_then_wraps() {
        let mut q = RequestQueue::new(SchedConfig::new(SchedPolicy::CScan));
        for (i, track) in [90u32, 10, 50, 30].iter().enumerate() {
            q.push(*track, i as u32);
        }
        // Head at 40: sweep up 50 → 90, wrap to 10 → 30.
        assert_eq!(drain(&mut q, 40), vec![2, 0, 1, 3]);
    }

    #[test]
    fn aging_forces_a_starved_request_through() {
        let mut q = RequestQueue::new(SchedConfig {
            policy: SchedPolicy::Sstf,
            aging_rounds: 2,
        });
        // A lone far request, then a stream of near ones that SSTF would
        // otherwise serve forever.
        q.push(1000, 99);
        for i in 0..10u32 {
            q.push(i, i);
        }
        let mut head = 0;
        let mut served = Vec::new();
        for _ in 0..4 {
            let (track, item) = q.pop(head).unwrap();
            head = track;
            served.push(item);
        }
        // Two bypasses are allowed; the third pop must serve the aged one.
        assert_eq!(
            served[2], 99,
            "aged request pre-empts the policy: {served:?}"
        );
    }

    #[test]
    fn pop_on_empty_returns_none() {
        let mut q: RequestQueue<u32> = RequestQueue::new(SchedConfig::fifo());
        assert!(q.pop(0).is_none());
        assert!(q.is_empty());
        q.push(5, 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(0), Some((5, 1)));
        assert!(q.pop(0).is_none());
    }
}
