//! Property tests for the SimDisk timing model.
//!
//! The batched entry points must be pure batching: `read_many` charges
//! exactly what the equivalent block-at-a-time sequence would, and
//! `write_many` on a single-track run charges one positioning plus one
//! transfer per block. The track buffer must never produce phantom hits —
//! a block the device never transferred can never be served at hit cost.

use bytes::Bytes;
use parsim::{Ctx, SimConfig, SimDuration, Simulation};
use proptest::prelude::*;
use simdisk::{BlockAddr, DiskGeometry, DiskProfile, SimDisk};

/// A small disk keeps the generated address space dense: 16 tracks of
/// 8 blocks, 16-byte blocks.
const GEO: DiskGeometry = DiskGeometry {
    block_size: 16,
    blocks_per_track: 8,
    tracks: 16,
};

const CAP: u32 = 16 * 8;

fn on_disk<R: Send + 'static>(f: impl FnOnce(&mut Ctx) -> R + Send + 'static) -> R {
    let mut sim = Simulation::new(SimConfig::default());
    let node = sim.add_node("io");
    sim.block_on(node, "driver", f)
}

fn block_of(byte: u8) -> Vec<u8> {
    vec![byte; GEO.block_size]
}

proptest! {
    /// `read_many` over an arbitrary (possibly repetitive, track-hopping)
    /// run charges exactly the block-at-a-time cost, returns the same
    /// data, and lands on the same counters.
    #[test]
    fn read_many_charges_like_block_at_a_time(
        raw in proptest::collection::vec(0u32..CAP, 1..24),
    ) {
        let (run, single, same_data, batched, looped) = on_disk(move |ctx| {
            let mut a = SimDisk::new(GEO, DiskProfile::wren());
            let mut b = SimDisk::new(GEO, DiskProfile::wren());
            for i in 0..CAP {
                a.write_raw(BlockAddr::new(i), &block_of(i as u8));
                b.write_raw(BlockAddr::new(i), &block_of(i as u8));
            }
            let addrs: Vec<BlockAddr> = raw.into_iter().map(BlockAddr::new).collect();
            let t0 = ctx.now();
            let run_data = a.read_many(ctx, &addrs).unwrap();
            let run = ctx.now() - t0;
            let t1 = ctx.now();
            let single_data: Vec<Bytes> = addrs
                .iter()
                .map(|&addr| b.read(ctx, addr).unwrap())
                .collect();
            let single = ctx.now() - t1;
            (run, single, run_data == single_data, a.stats(), b.stats())
        });
        prop_assert_eq!(run, single);
        prop_assert!(same_data);
        prop_assert_eq!(batched.reads, looped.reads);
        prop_assert_eq!(batched.buffer_hits, looped.buffer_hits);
        prop_assert_eq!(batched.track_loads, looped.track_loads);
        prop_assert_eq!(batched.busy, looped.busy);
    }

    /// A single-track `write_many` pays positioning once plus a transfer
    /// per block — the documented run economics — while the equivalent
    /// block-at-a-time sequence pays positioning on every write.
    #[test]
    fn write_many_single_track_pays_one_positioning(
        track in 0u32..GEO.tracks,
        offsets in proptest::collection::vec(0u32..8, 1..8),
    ) {
        let n = offsets.len() as u64;
        let (run, single) = on_disk(move |ctx| {
            let writes: Vec<(BlockAddr, Bytes)> = offsets
                .iter()
                .map(|&o| {
                    (
                        BlockAddr::new(track * GEO.blocks_per_track + o),
                        Bytes::from(block_of(o as u8)),
                    )
                })
                .collect();
            let mut a = SimDisk::new(GEO, DiskProfile::wren());
            let t0 = ctx.now();
            a.write_many(ctx, &writes).unwrap();
            let run = ctx.now() - t0;
            for (addr, data) in &writes {
                assert_eq!(a.read_raw(*addr).unwrap(), data.as_ref());
            }
            let mut b = SimDisk::new(GEO, DiskProfile::wren());
            let t1 = ctx.now();
            for (addr, data) in &writes {
                b.write(ctx, *addr, data).unwrap();
            }
            (run, ctx.now() - t1)
        });
        let wren = DiskProfile::wren();
        prop_assert_eq!(run, wren.positioning + wren.transfer_per_block * n);
        prop_assert_eq!(single, (wren.positioning + wren.transfer_per_block) * n);
    }

    /// One-element runs are indistinguishable from the single-block ops,
    /// wherever the run lands and whatever was buffered before.
    #[test]
    fn single_element_runs_match_single_ops(
        warm in 0u32..CAP,
        addr in 0u32..CAP,
    ) {
        let (run_w, one_w, run_r, one_r) = on_disk(move |ctx| {
            let mut a = SimDisk::new(GEO, DiskProfile::wren());
            let mut b = SimDisk::new(GEO, DiskProfile::wren());
            // Warm both buffers identically before measuring.
            a.write_raw(BlockAddr::new(warm), &block_of(1));
            b.write_raw(BlockAddr::new(warm), &block_of(1));
            a.read(ctx, BlockAddr::new(warm)).unwrap();
            b.read(ctx, BlockAddr::new(warm)).unwrap();

            let t0 = ctx.now();
            a.write_many(ctx, &[(BlockAddr::new(addr), Bytes::from(block_of(2)))])
                .unwrap();
            let run_w = ctx.now() - t0;
            let t1 = ctx.now();
            b.write(ctx, BlockAddr::new(addr), &block_of(2)).unwrap();
            let one_w = ctx.now() - t1;

            let t2 = ctx.now();
            a.read_many(ctx, &[BlockAddr::new(addr)]).unwrap();
            let run_r = ctx.now() - t2;
            let t3 = ctx.now();
            b.read(ctx, BlockAddr::new(addr)).unwrap();
            let one_r = ctx.now() - t3;
            (run_w, one_w, run_r, one_r)
        });
        prop_assert_eq!(run_w, one_w);
        prop_assert_eq!(run_r, one_r);
    }

    /// After any single-track batched write, a same-track block the run
    /// did not touch is a full-price miss (the phantom-hit regression),
    /// while the written blocks themselves still hit.
    #[test]
    fn unwritten_neighbors_never_phantom_hit(
        track in 0u32..GEO.tracks,
        written_raw in proptest::collection::vec(0u32..8, 1..7),
    ) {
        let mut written: Vec<u32> = written_raw;
        written.sort_unstable();
        written.dedup();
        let probe = (0..8u32)
            .find(|o| !written.contains(o))
            .expect("at most 6 of 8 offsets are written");
        let reread = written[0];
        let base = track * GEO.blocks_per_track;
        let (hit_cost, miss_cost) = on_disk(move |ctx| {
            let mut disk = SimDisk::new(GEO, DiskProfile::wren());
            disk.write_raw(BlockAddr::new(base + probe), &block_of(0xEE));
            let writes: Vec<(BlockAddr, Bytes)> = written
                .iter()
                .map(|&o| (BlockAddr::new(base + o), Bytes::from(block_of(o as u8))))
                .collect();
            disk.write_many(ctx, &writes).unwrap();
            // A block the run transferred is buffered...
            let t0 = ctx.now();
            disk.read(ctx, BlockAddr::new(base + reread)).unwrap();
            let hit_cost = ctx.now() - t0;
            // ...but the probe block was never transferred: full miss.
            let t1 = ctx.now();
            disk.read(ctx, BlockAddr::new(base + probe)).unwrap();
            (hit_cost, ctx.now() - t1)
        });
        let wren = DiskProfile::wren();
        prop_assert_eq!(hit_cost, wren.transfer_per_block);
        prop_assert_eq!(
            miss_cost,
            wren.positioning + wren.transfer_per_block * u64::from(GEO.blocks_per_track)
        );
    }

    /// Multi-track batched writes round-trip their data and cost one
    /// positioning per distinct track regardless of interleaving.
    #[test]
    fn write_many_data_survives_and_tracks_amortize(
        raw in proptest::collection::vec(0u32..CAP, 1..24),
    ) {
        // Deduplicate addresses (last write wins would also hold, but a
        // duplicate-free run makes the cost formula exact).
        let mut addrs: Vec<u32> = Vec::new();
        for a in raw {
            if !addrs.contains(&a) {
                addrs.push(a);
            }
        }
        let distinct_tracks = {
            let mut tracks: Vec<u32> = addrs.iter().map(|a| a / GEO.blocks_per_track).collect();
            tracks.sort_unstable();
            tracks.dedup();
            tracks.len() as u64
        };
        let blocks = addrs.len() as u64;
        let elapsed = on_disk(move |ctx| {
            let mut disk = SimDisk::new(GEO, DiskProfile::wren());
            let writes: Vec<(BlockAddr, Bytes)> = addrs
                .iter()
                .map(|&a| (BlockAddr::new(a), Bytes::from(block_of(a as u8))))
                .collect();
            let t0 = ctx.now();
            disk.write_many(ctx, &writes).unwrap();
            let elapsed = ctx.now() - t0;
            for (addr, data) in &writes {
                assert_eq!(disk.read_raw(*addr).unwrap(), data.as_ref());
            }
            elapsed
        });
        let wren = DiskProfile::wren();
        prop_assert_eq!(
            elapsed,
            wren.positioning * distinct_tracks + wren.transfer_per_block * blocks
        );
    }
}

/// The proptest strategies above never charge zero time for a miss; pin
/// the base costs once so the formulas in the properties stay honest.
#[test]
fn wren_base_costs() {
    assert_eq!(
        DiskProfile::wren().positioning,
        SimDuration::from_millis(15)
    );
    assert_eq!(
        DiskProfile::wren().transfer_per_block,
        SimDuration::from_millis(1)
    );
}
