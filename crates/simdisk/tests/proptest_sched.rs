//! Property tests for the request scheduler's starvation bound.
//!
//! Whatever the policy and workload, the aging rule must guarantee that
//! (1) no queued request is ever overtaken by later arrivals more than
//! `aging_rounds` times, and (2) a request queued behind `k` older
//! entries is served within `k + aging_rounds + 1` pops of its arrival.

use proptest::prelude::*;
use simdisk::{RequestQueue, SchedConfig, SchedPolicy};
use std::collections::HashMap;

const TRACKS: u32 = 64;

/// External model of one waiting request.
struct Waiting {
    bypassed: u32,
    pops_seen: u32,
    older_at_arrival: u32,
}

fn policy_of(raw: u8) -> SchedPolicy {
    match raw % 3 {
        0 => SchedPolicy::Fifo,
        1 => SchedPolicy::Sstf,
        _ => SchedPolicy::CScan,
    }
}

/// Replays `script` against a queue, checking both bounds at every pop.
/// Script values below `TRACKS` push a request to that track; anything
/// else pops. The tail drains the queue so every request is served.
fn check_bounds(policy: SchedPolicy, aging_rounds: u32, script: Vec<u32>) -> Result<(), String> {
    let mut q: RequestQueue<u64> = RequestQueue::new(SchedConfig {
        policy,
        aging_rounds,
    });
    let mut model: HashMap<u64, Waiting> = HashMap::new();
    let mut next = 0u64;
    let mut head = 0u32;
    let drain = vec![TRACKS; script.len() + 4];
    for v in script.into_iter().chain(drain) {
        if v < TRACKS {
            model.insert(
                next,
                Waiting {
                    bypassed: 0,
                    pops_seen: 0,
                    older_at_arrival: model.len() as u32,
                },
            );
            q.push(v, next);
            next += 1;
        } else if let Some((track, seq)) = q.pop(head) {
            head = track;
            let w = model.remove(&seq).expect("popped request was waiting");
            if w.bypassed > aging_rounds {
                return Err(format!(
                    "request {seq} bypassed {} times (bound {aging_rounds})",
                    w.bypassed
                ));
            }
            let bound = w.older_at_arrival + aging_rounds + 1;
            if w.pops_seen + 1 > bound {
                return Err(format!(
                    "request {seq} served on pop {} after arrival (bound {bound})",
                    w.pops_seen + 1
                ));
            }
            for (&other, w) in model.iter_mut() {
                w.pops_seen += 1;
                if other < seq {
                    w.bypassed += 1;
                }
            }
        }
    }
    if !model.is_empty() {
        return Err(format!("{} requests never served", model.len()));
    }
    Ok(())
}

proptest! {
    /// The starvation bounds hold for arbitrary push/pop interleavings
    /// under every policy and aging limit.
    #[test]
    fn aging_bound_holds(
        raw_policy in 0u8..3,
        aging_rounds in 1u32..6,
        script in proptest::collection::vec(0u32..(TRACKS + 32), 1..80),
    ) {
        let policy = policy_of(raw_policy);
        if let Err(msg) = check_bounds(policy, aging_rounds, script) {
            prop_assert!(false, "{policy}: {msg}");
        }
    }
}

/// The pathological SSTF workload — a stream of near-track requests that
/// would starve a far request forever — is exactly bounded by aging.
#[test]
fn sstf_starvation_is_bounded_not_eliminated() {
    let mut script = vec![TRACKS - 1]; // one far request…
    script.extend(std::iter::repeat_n([0, TRACKS], 40).flatten()); // …vs push-pop pairs at track 0
    check_bounds(SchedPolicy::Sstf, 4, script).unwrap();
}
