//! `bridge-top` — the live machine-health dashboard.
//!
//! Operators of a production storage system work from live signals, not
//! post-mortem traces: a degraded column must be visible *while* reads
//! are being reconstructed, not after the run ends. `bridge-top` drives
//! a Bridge machine through a workload while polling its telemetry
//! registry on a fixed virtual-time cadence (the parsim sampler — the
//! same observation-only hook the kernel counters use, so polling
//! leaves the run bit-identical), collecting one [`HealthSnapshot`]
//! per boundary plus the final quiescence frame.
//!
//! Two canned scenarios ship with the binary:
//!
//! * [`TopScenario::Faulted`] — a parity-protected write/read workload
//!   with a seeded [`DiskLost`] mid-stream: the dashboard walks the
//!   whole operational arc (healthy → column lost → degraded reads →
//!   spare racks in → paced online rebuild → healthy again).
//! * [`TopScenario::Control`] — the identical workload with no fault
//!   plan; every frame's alert list must stay empty.
//!
//! The CLI (`cargo run -p bridge-tools --bin bridgetop`) renders the
//! frames through [`bridge_trace::render_snapshot`] or exports them as
//! a schema-validated JSON document — the artifact the `telemetry-smoke`
//! CI job asserts against.

use bridge_core::{
    BridgeClient, BridgeConfig, BridgeMachine, CreateSpec, DiskLost, FaultPlan, HealthSnapshot,
    Redundancy,
};
use parsim::SimDuration;
use std::cell::RefCell;
use std::rc::Rc;

/// Which canned workload a [`run_scenario`] call drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopScenario {
    /// Seeded single-disk loss mid-write-stream, then degraded reads, a
    /// spare, and a paced online rebuild.
    Faulted,
    /// The same workload with no fault plan (and no spare/rebuild —
    /// nothing to repair). Expected alert list: empty in every frame.
    Control,
}

impl TopScenario {
    /// Parses the CLI spelling (`faulted` / `control`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "faulted" => Some(TopScenario::Faulted),
            "control" => Some(TopScenario::Control),
            _ => None,
        }
    }
}

/// Knobs for a [`run_scenario`] run.
#[derive(Debug, Clone, Copy)]
pub struct TopOptions {
    /// Which canned workload to drive.
    pub scenario: TopScenario,
    /// Machine breadth (LFS instances).
    pub breadth: u32,
    /// Blocks appended to the parity-protected file.
    pub blocks: u64,
    /// Virtual-time polling cadence (one dashboard frame per boundary).
    pub interval: SimDuration,
    /// Fault-plan seed (faulted scenario only; also the machine seed's
    /// perturbation, so different seeds give different interleavings).
    pub seed: u64,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions {
            scenario: TopScenario::Faulted,
            breadth: 4,
            blocks: 64,
            interval: SimDuration::from_millis(20),
            seed: 0xB7_10_75,
        }
    }
}

/// The machine both scenarios run: paper-profile disks (so busy% and
/// latency frames carry real numbers), machine-wide atomicity, and
/// parity redundancy by default.
fn top_config(opts: &TopOptions) -> BridgeConfig {
    let mut config = BridgeConfig::paper(opts.breadth)
        .with_2pc()
        .with_redundancy(Redundancy::parity());
    if opts.scenario == TopScenario::Faulted {
        // Lose one column for good partway through the write stream —
        // late enough that real data is on the medium, early enough
        // that plenty of traffic runs degraded.
        let victim = (opts.seed % u64::from(opts.breadth)) as u32;
        config = config.with_faults(FaultPlan {
            seed: opts.seed,
            losses: vec![DiskLost {
                disk: victim,
                after_writes: opts.blocks / 2,
            }],
            ..FaultPlan::none()
        });
    }
    config
}

/// Drives the scenario and returns the sampled dashboard frames, oldest
/// first. The last frame is the quiescence sample: its `kernel` counters
/// are bit-identical to the run's returned `RunStats`, and its gauges
/// are the machine's end-of-run state.
///
/// # Panics
///
/// Panics if the machine was built with telemetry disarmed, or if the
/// faulted scenario's spare fails to rack in.
pub fn run_scenario(opts: &TopOptions) -> Vec<HealthSnapshot> {
    let config = top_config(opts);
    let (mut sim, machine) = BridgeMachine::build(&config);
    let registry = machine
        .telemetry
        .clone()
        .expect("bridge-top needs an armed machine (BridgeConfig::telemetry)");
    let frames: Rc<RefCell<Vec<HealthSnapshot>>> = Rc::new(RefCell::new(Vec::new()));
    {
        let frames = Rc::clone(&frames);
        sim.set_sampler(opts.interval, move |at, stats| {
            // The columns-lost gauge is normally refreshed by the server
            // when it answers `GetHealth`; a host-side poll derives it
            // the same way so sampled frames agree with in-band ones.
            let lost = (0..registry.breadth())
                .filter(|&i| registry.lfs(i).snapshot().media_lost)
                .count() as u64;
            registry.server().set_columns_lost(lost);
            frames
                .borrow_mut()
                .push(registry.snapshot(at, Some(*stats)));
        });
    }

    let server = machine.server;
    let victim = (opts.seed % u64::from(opts.breadth)) as usize;
    let spare = (opts.scenario == TopScenario::Faulted).then(|| machine.lfs[victim]);
    let retry = config.server.lfs_retry;
    let blocks = opts.blocks;
    sim.block_on(machine.frontend, "bridge-top", move |ctx| {
        let mut bridge = BridgeClient::with_retry(server, retry);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..blocks {
            bridge
                .seq_write(ctx, file, format!("bridgetop record {i:05}").into_bytes())
                .expect("append");
        }
        // Read everything back. Past the loss point these reads serve
        // the dead column reconstructed from its surviving stripe peers
        // — the degraded phase the dashboard is watching for.
        bridge.open(ctx, file).expect("open");
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        if let Some(victim) = spare {
            assert!(
                bridge_efs::install_spare(ctx, victim),
                "device produced a spare medium"
            );
            bridge
                .rebuild_paced(ctx, file, 8, SimDuration::from_micros(200))
                .expect("rebuild onto the spare");
        }
        // Final verification pass over the (possibly rebuilt) file.
        bridge.open(ctx, file).expect("reopen");
        while bridge.seq_read(ctx, file).expect("final read").is_some() {}
    });
    sim.clear_sampler();
    frames.take()
}
