//! `bridgetop` — live machine-health dashboard for a Bridge machine.
//!
//! Runs a canned scenario (a parity-protected workload, optionally with
//! a seeded mid-stream disk loss) while polling the machine's telemetry
//! on a virtual-time cadence, then renders each dashboard frame — or
//! exports the whole poll series as a schema-validated JSON document.
//!
//! ```text
//! cargo run -p bridge-tools --bin bridgetop -- [options]
//!   --scenario faulted|control   workload to drive (default faulted)
//!   --breadth N                  LFS instances (default 4)
//!   --blocks N                   blocks appended (default 64)
//!   --interval-us N              poll cadence in virtual µs (default 20000)
//!   --seed N                     fault-plan seed (default 0xB71075)
//!   --json PATH                  write the poll series as JSON ("-" = stdout)
//!   --check                      validate the JSON export against the schema
//!   --expect-alerts              exit 1 unless the loss→degraded→rebuild arc
//!                                and a degraded-service alert appear
//!   --expect-quiet               exit 1 if any frame carries an alert
//!   --last                       render only the final (quiescence) frame
//! ```
//!
//! The `telemetry-smoke` CI job runs `--scenario faulted --expect-alerts`
//! and `--scenario control --expect-quiet` with `--json --check`.

use bridge_tools::{run_scenario, TopOptions, TopScenario};
use bridge_trace::{render_snapshot, snapshots_to_json, validate_health_json};
use parsim::SimDuration;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bridgetop: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut opts = TopOptions::default();
    let mut json_path: Option<String> = None;
    let mut check = false;
    let mut expect_alerts = false;
    let mut expect_quiet = false;
    let mut last_only = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Option<String> {
            *i += 1;
            args.get(*i).cloned()
        };
        match args[i].as_str() {
            "--scenario" => match value(&mut i).as_deref().and_then(TopScenario::parse) {
                Some(s) => opts.scenario = s,
                None => return fail("--scenario takes 'faulted' or 'control'"),
            },
            "--breadth" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) if n >= 3 => opts.breadth = n,
                _ => return fail("--breadth takes an integer >= 3 (parity needs 3 columns)"),
            },
            "--blocks" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(n) => opts.blocks = n,
                None => return fail("--blocks takes an integer"),
            },
            "--interval-us" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(us) if us > 0 => opts.interval = SimDuration::from_micros(us),
                _ => return fail("--interval-us takes a positive integer"),
            },
            "--seed" => match value(&mut i).and_then(|v| v.parse().ok()) {
                Some(s) => opts.seed = s,
                None => return fail("--seed takes an integer"),
            },
            "--json" => match value(&mut i) {
                Some(path) => json_path = Some(path),
                None => return fail("--json takes a path (or '-')"),
            },
            "--check" => check = true,
            "--expect-alerts" => expect_alerts = true,
            "--expect-quiet" => expect_quiet = true,
            "--last" => last_only = true,
            other => return fail(&format!("unknown option {other:?} (see --help in the doc)")),
        }
        i += 1;
    }

    let frames = run_scenario(&opts);
    let Some(final_frame) = frames.last() else {
        return fail("scenario produced no frames");
    };

    if let Some(path) = &json_path {
        let doc = snapshots_to_json(&frames);
        if check {
            if let Err(e) = validate_health_json(&doc) {
                return fail(&format!("JSON export failed schema validation: {e}"));
            }
        }
        if path == "-" {
            print!("{doc}");
        } else if let Err(e) = std::fs::write(path, &doc) {
            return fail(&format!("writing {path}: {e}"));
        }
    } else {
        let shown: Box<dyn Iterator<Item = _>> = if last_only {
            Box::new(frames.iter().rev().take(1))
        } else {
            Box::new(frames.iter())
        };
        for (n, frame) in shown.enumerate() {
            if n > 0 {
                println!();
            }
            print!("{}", render_snapshot(frame));
        }
    }

    if expect_alerts {
        let arc_ok = final_frame.has_event("disk.lost")
            && final_frame.has_event("redundancy.degraded_onset")
            && final_frame.has_event("disk.spare_installed")
            && final_frame.has_event("rebuild.start")
            && final_frame.has_event("rebuild.done");
        if !arc_ok {
            return fail("expected the disk.lost → degraded → spare → rebuild event arc");
        }
        let degraded_alerted = frames
            .iter()
            .any(|f| f.alerts.iter().any(|a| a.rule.name() == "degraded-service"));
        if !degraded_alerted {
            return fail("no frame carried a degraded-service alert");
        }
        if final_frame.lfs.iter().any(|l| l.media_lost) {
            return fail("final frame still shows a lost column after the rebuild");
        }
        eprintln!(
            "bridgetop: alert arc verified across {} frames ({} events, {} degraded reads)",
            frames.len(),
            final_frame.events.len(),
            final_frame.server.degraded_reads
        );
    }
    if expect_quiet {
        for (n, frame) in frames.iter().enumerate() {
            if let Some(a) = frame.alerts.first() {
                return fail(&format!(
                    "control run raised [{}] in frame {n}: {}",
                    a.rule.name(),
                    a.detail
                ));
            }
        }
        if !final_frame.events.is_empty() {
            return fail("control run journaled unexpected health events");
        }
        eprintln!(
            "bridgetop: control run quiet across {} frames",
            frames.len()
        );
    }
    ExitCode::SUCCESS
}
