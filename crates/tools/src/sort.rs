//! The merge sort tool (paper §5.2).
//!
//! Two phases:
//!
//! 1. **Local sort** — each node sorts its column with a classic external
//!    merge sort: in-core runs of `c` records (the paper uses c = 512),
//!    then 2-way merge passes over scratch LFS files. "Consider the
//!    resulting files to be 'interleaved' across only one processor."
//! 2. **Parallel merge** — log(p) passes; pass `k` merges pairs of
//!    2^(k-1)-way interleaved files into 2^k-way interleaved files using
//!    the token-passing algorithm of the paper's Figure 4, with `t/2`
//!    reader processes per input file and `t` writer processes for the
//!    destination. Old files are discarded in parallel after each pass.
//!
//! Records are block-sized ("we assume that the records to be sorted are
//! the same size as a disk block") and ordered by their leading
//! [`KEY_LEN`]-byte key, compared lexicographically.
//!
//! The paper notes that "special cases are required to deal with
//! termination"; we resolve the one it leaves open — telling the *other*
//! processes the merge has ended — with a controller-mediated completion
//! broadcast.

use crate::column::{ColumnReader, ColumnWriter};
use crate::error::ToolError;
use crate::options::ToolOptions;
use crate::toolkit::{run_workers, WorkerSpec};
use bridge_core::{
    BatchPolicy, BridgeClient, BridgeError, BridgeFileId, BridgeHeader, CreateSpec, GlobalPtr,
    LfsSlice, PlacementKind, PlacementSpec,
};
use bridge_efs::{LfsClient, LfsFileId, LfsOp};
use bytes::Bytes;
use parsim::{Ctx, ProcId, SimDuration};

/// Bytes of each record's sort key (its leading bytes).
pub const KEY_LEN: usize = 8;

/// A scratch-run column stream with its buffered head record.
type RunHead = (ColumnReader, Option<([u8; KEY_LEN], Vec<u8>)>);

/// Record sink fed by the streaming merge passes.
type EmitFn<'a> = dyn FnMut(&mut Ctx, &mut LfsClient, &[u8]) -> Result<(), ToolError> + 'a;

/// Extracts a record's key.
pub fn key_of(data: &[u8]) -> [u8; KEY_LEN] {
    let mut key = [0u8; KEY_LEN];
    let n = KEY_LEN.min(data.len());
    key[..n].copy_from_slice(&data[..n]);
    key
}

/// Arity of the local merge passes (the paper suggests that "with a faster
/// (e.g. multi-way) local merge" the sort's super-linear speedup anomaly
/// should disappear — the `ablate_multiway` benchmark tests that claim).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LocalMergeArity {
    /// Classic 2-way merge passes (the paper's prototype).
    #[default]
    Binary,
    /// One multi-way (heap) merge pass over all runs.
    MultiWay,
}

/// Sort tool tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortOptions {
    /// In-core buffer size in records (the paper's c = 512).
    pub in_core_records: u32,
    /// Local merge arity.
    pub local_merge: LocalMergeArity,
    /// Worker startup options.
    pub tool: ToolOptions,
    /// CPU time to handle one merge token.
    pub token_cpu: SimDuration,
    /// CPU time per record of in-core sorting/merging work.
    pub compare_cpu: SimDuration,
}

impl Default for SortOptions {
    fn default() -> Self {
        SortOptions {
            in_core_records: 512,
            local_merge: LocalMergeArity::Binary,
            tool: ToolOptions::default(),
            token_cpu: SimDuration::from_micros(100),
            compare_cpu: SimDuration::from_micros(30),
        }
    }
}

/// What the sort accomplished, phase by phase (the paper's Table 4
/// columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortStats {
    /// Records sorted.
    pub records: u64,
    /// Duration of the local sort phase (barrier to barrier).
    pub local_sort: SimDuration,
    /// Duration of the parallel merge phase.
    pub merge: SimDuration,
    /// Whole-tool duration (includes setup).
    pub total: SimDuration,
    /// Local merge passes performed (max over nodes).
    pub local_merge_passes: u32,
    /// Global merge passes (⌈log2 p⌉).
    pub merge_passes: u32,
}

/// Base of the LFS file-id range reserved for tool scratch files, outside
/// the Bridge Server's assignment sequence.
const SCRATCH_BASE: u32 = 0x8000_0000;

// ---------------------------------------------------------------------
// Merge-network messages (private protocol).

#[derive(Debug, Clone, Copy)]
struct Token {
    tag: u32,
    start: bool,
    end: bool,
    key: [u8; KEY_LEN],
    originator: ProcId,
    seq: u64,
}

#[derive(Debug)]
struct WriteRec {
    tag: u32,
    seq: u64,
    data: Bytes,
}

#[derive(Debug, Clone, Copy)]
struct WriterStop {
    tag: u32,
}

#[derive(Debug, Clone, Copy)]
struct WriterDone {
    tag: u32,
    widx: u32,
    count: u32,
}

#[derive(Debug, Clone, Copy)]
struct MergeDone {
    tag: u32,
    records: u64,
}

#[derive(Debug, Clone, Copy)]
struct ReaderStop {
    tag: u32,
}

// ---------------------------------------------------------------------

/// Sorts `src` into a fresh interleaved file; returns it with phase
/// timings. `src` is left intact.
///
/// # Errors
///
/// Propagates server and LFS errors; rejects linked files.
pub fn sort(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    src: BridgeFileId,
    opts: &SortOptions,
) -> Result<(BridgeFileId, SortStats), ToolError> {
    let t0 = ctx.now();
    let open = bridge.open(ctx, src)?;
    if matches!(open.placement, PlacementKind::Linked) {
        return Err(ToolError::Bridge(BridgeError::LinkedUnsupported {
            op: "sort tool",
        }));
    }
    let p = open.nodes.len();

    // Create the phase-1 output files: one per node, "interleaved across
    // only one processor". All Bridge files come from the server — it is
    // the monitor around directory operations.
    let mut phase1_files = Vec::with_capacity(p);
    for slice in &open.nodes {
        let id = bridge.create(
            ctx,
            CreateSpec {
                placement: PlacementSpec::RoundRobinAt { start: 0 },
                nodes: Some(vec![slice.index.0]),
                ..CreateSpec::default()
            },
        )?;
        phase1_files.push(id);
    }

    // Phase 1: local external sorts, one worker per node.
    let t_local = ctx.now();
    let specs: Vec<WorkerSpec<(u32, u32)>> = open
        .nodes
        .iter()
        .enumerate()
        .map(|(i, slice)| {
            let params = LocalSortParams {
                worker: i as u32,
                lfs: slice.proc,
                src_file: open.lfs_file,
                src_size: slice.local_size,
                out_bridge: phase1_files[i],
                out_file: LfsFileId(phase1_files[i].0),
                lfs_index: slice.index.0,
                in_core: *opts,
            };
            WorkerSpec {
                node: slice.node,
                name: format!("esort{i}"),
                run: Box::new(move |c: &mut Ctx| local_sort(c, params)),
            }
        })
        .collect();
    let local_results = run_workers(ctx, &opts.tool, specs)?;
    let local_sort_time = ctx.now() - t_local;
    if ctx.trace_enabled() {
        ctx.trace_span(
            "tool",
            "tool.sort.local",
            t_local,
            &[("nodes", open.nodes.len() as u64)],
        );
    }
    let records: u64 = local_results.iter().map(|&(n, _)| u64::from(n)).sum();
    let local_merge_passes = local_results.iter().map(|&(_, p)| p).max().unwrap_or(0);

    // Phase 2: log(p) passes of pairwise token merges.
    let t_merge = ctx.now();
    let mut files: Vec<MergeFile> = open
        .nodes
        .iter()
        .zip(&phase1_files)
        .zip(&local_results)
        .map(|((slice, &id), &(count, _))| MergeFile {
            id,
            lfs_file: LfsFileId(id.0),
            slices: vec![LfsSlice {
                local_size: count,
                ..*slice
            }],
            size: u64::from(count),
        })
        .collect();

    let mut merge_passes = 0u32;
    let mut tag_base = 0u32;
    while files.len() > 1 {
        merge_passes += 1;
        let mut next_files = Vec::with_capacity(files.len().div_ceil(2));
        let mut pending = Vec::new();
        let mut inputs_to_delete = Vec::new();
        let mut iter = files.into_iter();
        while let Some(a) = iter.next() {
            match iter.next() {
                Some(b) => {
                    let tag = tag_base;
                    tag_base += 1;
                    let out = create_merge_output(ctx, bridge, &a, &b)?;
                    let network = spawn_merge_network(ctx, opts, tag, &a, &b, &out)?;
                    inputs_to_delete.push(a.id);
                    inputs_to_delete.push(b.id);
                    pending.push((tag, out, network));
                }
                None => next_files.push(a), // odd file gets a bye
            }
        }
        // Await every merge of this pass, then stop its processes.
        let mut finished = Vec::with_capacity(pending.len());
        for (tag, mut out, network) in pending {
            let env = ctx
                .recv_where(move |e| e.downcast_ref::<MergeDone>().is_some_and(|d| d.tag == tag));
            let done = env.downcast::<MergeDone>().expect("matched");
            out.size = done.records;
            finished.push((tag, out, network));
        }
        for (tag, mut out, network) in finished {
            for &r in &network.readers {
                ctx.send(r, ReaderStop { tag });
            }
            let mut counts = vec![0u32; network.writers.len()];
            for &w in &network.writers {
                ctx.send(w, WriterStop { tag });
            }
            for _ in 0..network.writers.len() {
                let env = ctx.recv_where(move |e| {
                    e.downcast_ref::<WriterDone>().is_some_and(|d| d.tag == tag)
                });
                let done = env.downcast::<WriterDone>().expect("matched");
                counts[done.widx as usize] = done.count;
            }
            for (slice, &count) in out.slices.iter_mut().zip(&counts) {
                slice.local_size = count;
            }
            debug_assert_eq!(
                out.size,
                counts.iter().map(|&c| u64::from(c)).sum::<u64>(),
                "writer counts agree with the token sequence"
            );
            next_files.push(out);
        }
        // "Discard the old files in parallel."
        if !inputs_to_delete.is_empty() {
            bridge.delete_many(ctx, inputs_to_delete)?;
        }
        files = next_files;
        if ctx.trace_enabled() {
            ctx.trace_instant(
                "tool",
                "tool.sort.pass_done",
                &[
                    ("pass", u64::from(merge_passes)),
                    ("files", files.len() as u64),
                ],
            );
        }
    }
    let merge_time = ctx.now() - t_merge;
    if ctx.trace_enabled() {
        ctx.trace_span(
            "tool",
            "tool.sort.merge",
            t_merge,
            &[("passes", u64::from(merge_passes))],
        );
    }

    let result = files.pop().expect("at least one file");
    // Refresh the server's size view of the output.
    bridge.open(ctx, result.id)?;
    Ok((
        result.id,
        SortStats {
            records,
            local_sort: local_sort_time,
            merge: merge_time,
            total: ctx.now() - t0,
            local_merge_passes,
            merge_passes,
        },
    ))
}

/// A file between merge passes: identity plus per-node layout.
#[derive(Debug, Clone)]
struct MergeFile {
    id: BridgeFileId,
    lfs_file: LfsFileId,
    slices: Vec<LfsSlice>,
    size: u64,
}

fn create_merge_output(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    a: &MergeFile,
    b: &MergeFile,
) -> Result<MergeFile, ToolError> {
    let nodes: Vec<u32> = a
        .slices
        .iter()
        .chain(&b.slices)
        .map(|s| s.index.0)
        .collect();
    let id = bridge.create(
        ctx,
        CreateSpec {
            placement: PlacementSpec::RoundRobinAt { start: 0 },
            nodes: Some(nodes),
            ..CreateSpec::default()
        },
    )?;
    let open = bridge.open(ctx, id)?;
    Ok(MergeFile {
        id,
        lfs_file: open.lfs_file,
        slices: open.nodes,
        size: 0,
    })
}

struct MergeNetwork {
    readers: Vec<ProcId>,
    writers: Vec<ProcId>,
}

/// Spawns the Figure-4 process network for one pairwise merge: readers
/// over both input files' columns, writers for every output column, and
/// the start token.
fn spawn_merge_network(
    ctx: &mut Ctx,
    opts: &SortOptions,
    tag: u32,
    a: &MergeFile,
    b: &MergeFile,
    out: &MergeFile,
) -> Result<MergeNetwork, ToolError> {
    let controller = ctx.me();
    let t = out.slices.len() as u64;

    // Writers first, so readers can be given their addresses.
    let mut writers = Vec::with_capacity(out.slices.len());
    for (w, slice) in out.slices.iter().enumerate() {
        ctx.delay(opts.tool.spawn_cost);
        let params = WriterParams {
            tag,
            widx: w as u32,
            t,
            lfs: slice.proc,
            lfs_index: slice.index.0,
            file: out.id,
            lfs_file: out.lfs_file,
            batch: opts.tool.batch,
        };
        writers.push(
            ctx.spawn(slice.node, format!("m{tag}w{w}"), move |c: &mut Ctx| {
                merge_writer(c, params)
            }),
        );
    }

    // Reader rings: positions of each input file, in order.
    let mut readers = Vec::new();
    let mut ring_a = Vec::with_capacity(a.slices.len());
    let mut ring_b = Vec::with_capacity(b.slices.len());
    for (which, (file, ring)) in [(a, &mut ring_a), (b, &mut ring_b)].into_iter().enumerate() {
        for (i, slice) in file.slices.iter().enumerate() {
            ctx.delay(opts.tool.spawn_cost);
            let params = ReaderParams {
                tag,
                controller,
                lfs: slice.proc,
                lfs_file: file.lfs_file,
                local_size: slice.local_size,
                token_cpu: opts.token_cpu,
                batch: opts.tool.batch,
            };
            let pid = ctx.spawn(
                slice.node,
                format!("m{tag}r{which}_{i}"),
                move |c: &mut Ctx| merge_reader(c, params),
            );
            ring.push(pid);
            readers.push(pid);
        }
    }

    // Tell each reader its ring successor, the other file's first process
    // (Figure 4 needs both), and the writer addresses; then fire the start
    // token at the first process of file A.
    for (i, &r) in ring_a.iter().enumerate() {
        let next = ring_a[(i + 1) % ring_a.len()];
        ctx.send(
            r,
            RingSetup {
                next,
                other_first: ring_b[0],
            },
        );
        ctx.send(r, WriterList(writers.clone()));
    }
    for (i, &r) in ring_b.iter().enumerate() {
        let next = ring_b[(i + 1) % ring_b.len()];
        ctx.send(
            r,
            RingSetup {
                next,
                other_first: ring_a[0],
            },
        );
        ctx.send(r, WriterList(writers.clone()));
    }
    ctx.send(
        ring_a[0],
        Token {
            tag,
            start: true,
            end: false,
            key: [0; KEY_LEN],
            originator: controller,
            seq: 0,
        },
    );
    Ok(MergeNetwork { readers, writers })
}

#[derive(Debug, Clone, Copy)]
struct RingSetup {
    next: ProcId,
    other_first: ProcId,
}

#[derive(Debug, Clone, Copy)]
struct ReaderParams {
    tag: u32,
    controller: ProcId,
    lfs: ProcId,
    lfs_file: LfsFileId,
    local_size: u32,
    token_cpu: SimDuration,
    batch: BatchPolicy,
    // The writer list travels separately as a `WriterList` message.
}

#[derive(Debug, Clone, Copy)]
struct WriterParams {
    tag: u32,
    widx: u32,
    t: u64,
    lfs: ProcId,
    lfs_index: u32,
    file: BridgeFileId,
    lfs_file: LfsFileId,
    batch: BatchPolicy,
}

/// One merge writer: appends records it is sent, in arrival order (the
/// token discipline guarantees its sequence numbers ascend by t).
fn merge_writer(ctx: &mut Ctx, params: WriterParams) {
    let mut client = LfsClient::new();
    let mut writer = ColumnWriter::new(params.lfs, params.lfs_file, 0).with_batch(params.batch);
    let tag = params.tag;
    loop {
        let env = ctx.recv_where(|e| {
            e.downcast_ref::<WriteRec>().is_some_and(|r| r.tag == tag)
                || e.downcast_ref::<WriterStop>().is_some_and(|s| s.tag == tag)
        });
        if env.is::<WriterStop>() {
            if let Err(e) = writer.flush(ctx, &mut client) {
                panic!("merge writer {tag}/{}: {e}", params.widx);
            }
            let from = env.from();
            ctx.send(
                from,
                WriterDone {
                    tag,
                    widx: params.widx,
                    count: writer.position(),
                },
            );
            return;
        }
        let rec = env.downcast::<WriteRec>().expect("matched");
        debug_assert_eq!(
            rec.seq % params.t,
            u64::from(params.widx),
            "stripe discipline"
        );
        let header = BridgeHeader {
            file: params.file,
            global_block: rec.seq,
            breadth: params.t as u32,
            next: GlobalPtr::new(params.lfs_index, writer.position() + 1),
            prev: GlobalPtr::new(params.lfs_index, writer.position().saturating_sub(1)),
        };
        if let Err(e) = writer.append_block(ctx, &mut client, &header, &rec.data) {
            panic!("merge writer {tag}/{}: {e}", params.widx);
        }
    }
}

/// One merge reader: the paper's Figure 4, verbatim in structure.
fn merge_reader(ctx: &mut Ctx, params: ReaderParams) {
    // First the controller's ring setup, then the token loop.
    let setup = {
        let env = ctx.recv_where(|e| e.is::<RingSetup>());
        *env.downcast_ref::<RingSetup>().expect("matched")
    };
    let tag = params.tag;
    let mut client = LfsClient::new();
    let mut reader =
        ColumnReader::new(params.lfs, params.lfs_file, params.local_size).with_batch(params.batch);
    let mut read_record = |c: &mut Ctx, client: &mut LfsClient| -> Option<([u8; KEY_LEN], Bytes)> {
        match reader.next_block(c, client) {
            Ok(Some((_, data))) => Some((key_of(&data), data)),
            Ok(None) => None,
            Err(e) => panic!("merge reader {tag}: {e}"),
        }
    };

    let writers = {
        let env = ctx.recv_where(|e| e.is::<WriterList>());
        env.downcast::<WriterList>().expect("matched").0
    };
    // "Read a record."
    let mut current = read_record(ctx, &mut client);

    loop {
        let env = ctx.recv_where(|e| {
            e.downcast_ref::<Token>().is_some_and(|t| t.tag == tag)
                || e.downcast_ref::<ReaderStop>().is_some_and(|s| s.tag == tag)
        });
        if env.is::<ReaderStop>() {
            return;
        }
        let token = *env.downcast_ref::<Token>().expect("matched");
        ctx.delay(params.token_cpu);

        if token.start {
            match &current {
                Some((key, _)) => ctx.send(
                    setup.other_first,
                    Token {
                        tag,
                        start: false,
                        end: false,
                        key: *key,
                        originator: ctx.me(),
                        seq: 0,
                    },
                ),
                // Empty file at the very start: hand an end token to the
                // other file so it can drain itself.
                None => ctx.send(
                    setup.other_first,
                    Token {
                        tag,
                        start: false,
                        end: true,
                        key: [0; KEY_LEN],
                        originator: ctx.me(),
                        seq: 0,
                    },
                ),
            }
        } else if token.end {
            match current.take() {
                None => {
                    // DONE: the merge is complete; report and await Stop.
                    ctx.send(
                        params.controller,
                        MergeDone {
                            tag,
                            records: token.seq,
                        },
                    );
                }
                Some((_, data)) => {
                    let seq = token.seq;
                    let dest = writers[(seq % writers.len() as u64) as usize];
                    ctx.send_sized(dest, WriteRec { tag, seq, data }, 1024);
                    ctx.send(
                        setup.next,
                        Token {
                            seq: seq + 1,
                            ..token
                        },
                    );
                    current = read_record(ctx, &mut client);
                }
            }
        } else {
            match &current {
                None => {
                    // End of file: tell the other side to drain.
                    ctx.send(
                        token.originator,
                        Token {
                            tag,
                            start: false,
                            end: true,
                            key: [0; KEY_LEN],
                            originator: ctx.me(),
                            seq: token.seq,
                        },
                    );
                }
                Some((key, _)) if *key <= token.key => {
                    let (_, data) = current.take().expect("checked Some");
                    let seq = token.seq;
                    let dest = writers[(seq % writers.len() as u64) as usize];
                    ctx.send_sized(dest, WriteRec { tag, seq, data }, 1024);
                    ctx.send(
                        setup.next,
                        Token {
                            seq: seq + 1,
                            ..token
                        },
                    );
                    current = read_record(ctx, &mut client);
                }
                Some((key, _)) => {
                    ctx.send(
                        token.originator,
                        Token {
                            tag,
                            start: false,
                            end: false,
                            key: *key,
                            originator: ctx.me(),
                            seq: token.seq,
                        },
                    );
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct WriterList(Vec<ProcId>);

// ---------------------------------------------------------------------
// Phase 1: local external sort.

#[derive(Debug, Clone, Copy)]
struct LocalSortParams {
    worker: u32,
    lfs: ProcId,
    src_file: LfsFileId,
    src_size: u32,
    out_bridge: BridgeFileId,
    out_file: LfsFileId,
    lfs_index: u32,
    in_core: SortOptions,
}

/// Sorts one column into the worker's phase-1 output file. Returns
/// (records, local merge passes).
fn local_sort(ctx: &mut Ctx, params: LocalSortParams) -> Result<(u32, u32), ToolError> {
    let mut client = LfsClient::new();
    let opts = params.in_core;
    let policy = opts.tool.batch;
    let c = opts.in_core_records.max(1);

    let mut reader =
        ColumnReader::new(params.lfs, params.src_file, params.src_size).with_batch(policy);
    let mut out = OutputColumn::new(&params);

    // Run formation.
    let mut runs: Vec<(LfsFileId, u32)> = Vec::new();
    let mut run_counter = 0u32;
    loop {
        let mut batch: Vec<Bytes> = Vec::with_capacity(c as usize);
        while (batch.len() as u32) < c {
            match reader.next_block(ctx, &mut client)? {
                Some((_, data)) => batch.push(data),
                None => break,
            }
        }
        if batch.is_empty() {
            break;
        }
        charge_sort_cpu(ctx, &opts, batch.len());
        batch.sort_by_key(|d| key_of(d));
        let exhausted = reader.remaining() == 0;
        if runs.is_empty() && exhausted {
            // The whole column fits in core: write straight to the output.
            for data in batch {
                out.append(ctx, &mut client, &data)?;
            }
            out.flush(ctx, &mut client)?;
            return Ok((out.count(), 0));
        }
        // Spill a scratch run.
        let run_file = scratch_file_id(params.out_bridge, params.worker, run_counter);
        run_counter += 1;
        client.call(ctx, params.lfs, LfsOp::Create { file: run_file })?;
        let mut w = ColumnWriter::new(params.lfs, run_file, 0).with_batch(policy);
        let len = batch.len() as u32;
        for data in batch {
            let mut payload = data.to_vec();
            payload.resize(bridge_efs::EFS_PAYLOAD, 0);
            w.append_raw(ctx, &mut client, payload)?;
        }
        w.flush(ctx, &mut client)?;
        runs.push((run_file, len));
        if exhausted {
            break;
        }
    }

    if runs.is_empty() {
        return Ok((0, 0));
    }

    let mut passes = 0u32;
    match opts.local_merge {
        LocalMergeArity::Binary => {
            // 2-way merge passes; the final merge streams into the output.
            while runs.len() > 2 {
                passes += 1;
                let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
                let mut iter = runs.into_iter();
                while let Some(a) = iter.next() {
                    match iter.next() {
                        Some(b) => {
                            let dst =
                                scratch_file_id(params.out_bridge, params.worker, run_counter);
                            run_counter += 1;
                            client.call(ctx, params.lfs, LfsOp::Create { file: dst })?;
                            let mut w = ColumnWriter::new(params.lfs, dst, 0).with_batch(policy);
                            let merged = merge_two_runs(
                                ctx,
                                &mut client,
                                &params,
                                a,
                                b,
                                &mut |ctx, client, data| {
                                    let mut payload = data.to_vec();
                                    payload.resize(bridge_efs::EFS_PAYLOAD, 0);
                                    w.append_raw(ctx, client, payload)
                                },
                                &opts,
                            )?;
                            w.flush(ctx, &mut client)?;
                            next_runs.push((dst, merged));
                        }
                        None => next_runs.push(a),
                    }
                }
                runs = next_runs;
            }
            passes += 1;
            if runs.len() == 2 {
                let b = runs.pop().expect("two runs");
                let a = runs.pop().expect("two runs");
                merge_two_runs(
                    ctx,
                    &mut client,
                    &params,
                    a,
                    b,
                    &mut |ctx, client, data| out.append_ref(ctx, client, data),
                    &opts,
                )?;
            } else {
                // Single run: stream it into the output.
                let (run, len) = runs.pop().expect("one run");
                let mut r = ColumnReader::new(params.lfs, run, len).with_batch(policy);
                while let Some(payload) = r.next_raw(ctx, &mut client)? {
                    out.append(ctx, &mut client, &payload[..bridge_core::BRIDGE_DATA])?;
                }
                client.call(ctx, params.lfs, LfsOp::Delete { file: run })?;
            }
        }
        LocalMergeArity::MultiWay => {
            passes = 1;
            // One heap-based k-way pass over all runs.
            let mut heads: Vec<RunHead> = Vec::new();
            for &(run, len) in &runs {
                let mut r = ColumnReader::new(params.lfs, run, len).with_batch(policy);
                let head = r
                    .next_raw(ctx, &mut client)?
                    .map(|p| (key_of(&p), p[..bridge_core::BRIDGE_DATA].to_vec()));
                heads.push((r, head));
            }
            loop {
                let min = heads
                    .iter()
                    .enumerate()
                    .filter_map(|(i, (_, h))| h.as_ref().map(|(k, _)| (i, *k)))
                    .min_by_key(|&(_, k)| k);
                let Some((i, _)) = min else { break };
                ctx.delay(opts.compare_cpu);
                let (_, data) = heads[i].1.take().expect("checked Some");
                out.append(ctx, &mut client, &data)?;
                let (r, slot) = &mut heads[i];
                *slot = r
                    .next_raw(ctx, &mut client)?
                    .map(|p| (key_of(&p), p[..bridge_core::BRIDGE_DATA].to_vec()));
            }
            for (run, _) in runs {
                client.call(ctx, params.lfs, LfsOp::Delete { file: run })?;
            }
        }
    }
    out.flush(ctx, &mut client)?;
    Ok((out.count(), passes))
}

fn scratch_file_id(out: BridgeFileId, worker: u32, run: u32) -> LfsFileId {
    LfsFileId(SCRATCH_BASE | (out.0 & 0xFFF) << 16 | (worker & 0x3F) << 10 | (run & 0x3FF))
}

fn charge_sort_cpu(ctx: &mut Ctx, opts: &SortOptions, records: usize) {
    let log = usize::BITS - records.next_power_of_two().leading_zeros();
    ctx.delay(opts.compare_cpu * (records as u64) * u64::from(log));
}

/// Streams the 2-way merge of two scratch runs into `emit`, deleting both
/// runs afterwards. Returns the merged length.
fn merge_two_runs(
    ctx: &mut Ctx,
    client: &mut LfsClient,
    params: &LocalSortParams,
    a: (LfsFileId, u32),
    b: (LfsFileId, u32),
    emit: &mut EmitFn<'_>,
    opts: &SortOptions,
) -> Result<u32, ToolError> {
    let mut ra = ColumnReader::new(params.lfs, a.0, a.1).with_batch(params.in_core.tool.batch);
    let mut rb = ColumnReader::new(params.lfs, b.0, b.1).with_batch(params.in_core.tool.batch);
    let next = |ctx: &mut Ctx, client: &mut LfsClient, r: &mut ColumnReader| {
        r.next_raw(ctx, client).map(|o| {
            o.map(|p| {
                let data = p[..bridge_core::BRIDGE_DATA].to_vec();
                (key_of(&data), data)
            })
        })
    };
    let mut ha = next(ctx, client, &mut ra)?;
    let mut hb = next(ctx, client, &mut rb)?;
    let mut count = 0u32;
    loop {
        ctx.delay(opts.compare_cpu);
        match (&ha, &hb) {
            (Some((ka, _)), Some((kb, _))) => {
                if ka <= kb {
                    let (_, data) = ha.take().expect("Some");
                    emit(ctx, client, &data)?;
                    ha = next(ctx, client, &mut ra)?;
                } else {
                    let (_, data) = hb.take().expect("Some");
                    emit(ctx, client, &data)?;
                    hb = next(ctx, client, &mut rb)?;
                }
            }
            (Some(_), None) => {
                let (_, data) = ha.take().expect("Some");
                emit(ctx, client, &data)?;
                ha = next(ctx, client, &mut ra)?;
            }
            (None, Some(_)) => {
                let (_, data) = hb.take().expect("Some");
                emit(ctx, client, &data)?;
                hb = next(ctx, client, &mut rb)?;
            }
            (None, None) => break,
        }
        count += 1;
    }
    client.call(ctx, params.lfs, LfsOp::Delete { file: a.0 })?;
    client.call(ctx, params.lfs, LfsOp::Delete { file: b.0 })?;
    Ok(count)
}

/// Appends Bridge-formatted blocks to a worker's phase-1 output column.
struct OutputColumn {
    writer: ColumnWriter,
    file: BridgeFileId,
    lfs_index: u32,
}

impl OutputColumn {
    fn new(params: &LocalSortParams) -> Self {
        OutputColumn {
            writer: ColumnWriter::new(params.lfs, params.out_file, 0)
                .with_batch(params.in_core.tool.batch),
            file: params.out_bridge,
            lfs_index: params.lfs_index,
        }
    }

    fn count(&self) -> u32 {
        self.writer.position()
    }

    fn flush(&mut self, ctx: &mut Ctx, client: &mut LfsClient) -> Result<(), ToolError> {
        self.writer.flush(ctx, client)
    }

    fn append(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
        data: &[u8],
    ) -> Result<(), ToolError> {
        self.append_ref(ctx, client, data)
    }

    fn append_ref(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
        data: &[u8],
    ) -> Result<(), ToolError> {
        let local = self.writer.position();
        let header = BridgeHeader {
            file: self.file,
            global_block: u64::from(local),
            breadth: 1,
            next: GlobalPtr::new(self.lfs_index, local + 1),
            prev: GlobalPtr::new(self.lfs_index, local.saturating_sub(1)),
        };
        self.writer.append_block(ctx, client, &header, data)
    }
}
