//! Worker orchestration: starting one subprocess per LFS node and joining
//! their results, serially or through a binary fan-out tree.
//!
//! "Typical interaction between tools and the other components of the
//! system involves (1) a brief phase of communication with the Bridge
//! Server …, (2) the creation of subprocesses on all the LFS nodes, and
//! (3) a lengthy series of interactions between the subprocesses and the
//! instances of LFS." This module is phase (2), with completion handled by
//! the same topology.
//!
//! Completion is delivered with an at-least-once protocol: each worker
//! tags its result batch with a sender-unique id, resends it on a capped
//! exponential backoff until the collector acknowledges, and collectors
//! merge batches idempotently by worker index. A fault plan that drops,
//! duplicates, or delays messages therefore cannot strand the join — the
//! property pfsck relies on when it audits a machine whose interconnect
//! is still under an armed [`FaultPlan`](parsim::FaultPlan). Only node
//! outages that kill a worker process outright are out of scope; tools
//! start their workers after forming a plan and assume the nodes they
//! picked stay up for the (short) completion exchange.

use crate::error::ToolError;
use crate::options::{Fanout, ToolOptions};
use parsim::{Ctx, NodeId, ProcId, SimDuration};
use std::collections::BTreeSet;

/// The boxed body a worker runs on its node.
pub type WorkerBody<R> = Box<dyn FnOnce(&mut Ctx) -> Result<R, ToolError> + Send>;

/// One worker to start: where, what to call it, and what it runs.
pub struct WorkerSpec<R> {
    /// Node to start the worker on (tools place workers on the LFS nodes
    /// that hold their data).
    pub node: NodeId,
    /// Process name (debugging).
    pub name: String,
    /// The worker body.
    pub run: WorkerBody<R>,
}

impl<R> std::fmt::Debug for WorkerSpec<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSpec")
            .field("node", &self.node)
            .field("name", &self.name)
            .finish()
    }
}

type Batch<R> = Vec<(usize, Result<R, ToolError>)>;

/// Wire form of a completion batch: the results plus a sender-unique tag
/// the collector echoes back in its [`BatchAck`]. Sent cloneable so
/// duplicate-delivery faults exercise the collectors' dedup.
#[derive(Debug, Clone)]
struct TaggedBatch<R> {
    delivery: u64,
    batch: Batch<R>,
}

/// Collector → worker acknowledgement of a [`TaggedBatch`].
#[derive(Debug, Clone, Copy)]
struct BatchAck {
    delivery: u64,
}

/// First ack wait; doubles per resend up to [`DELIVERY_BACKOFF_CAP_MS`].
const DELIVERY_TIMEOUT_MS: u64 = 250;
const DELIVERY_BACKOFF_CAP_MS: u64 = 4_000;
/// Send attempts before a worker stops waiting for its ack. Far above any
/// bounded fault plan's consecutive-drop cap, so the batch itself always
/// lands; only the terminal ack can be abandoned, and an unacked worker
/// exits instead of resending forever.
const DELIVERY_ATTEMPTS: u32 = 32;

/// Sends `batch` to `parent` until acknowledged (at-least-once). While
/// waiting for the ack, keeps re-acknowledging any child batch resends so
/// a relay's own children are never stranded by a lost ack.
fn deliver_batch<R: Clone + Send + 'static>(ctx: &mut Ctx, parent: ProcId, batch: Batch<R>) {
    let delivery = ctx.unique_id();
    let mut wait = SimDuration::from_millis(DELIVERY_TIMEOUT_MS);
    let cap = SimDuration::from_millis(DELIVERY_BACKOFF_CAP_MS);
    for _ in 0..DELIVERY_ATTEMPTS {
        ctx.send_sized_cloneable(
            parent,
            TaggedBatch {
                delivery,
                batch: batch.clone(),
            },
            0,
        );
        loop {
            let is_my_ack = |e: &parsim::Envelope| {
                e.from() == parent
                    && e.downcast_ref::<BatchAck>()
                        .is_some_and(|a| a.delivery == delivery)
            };
            let Some(env) =
                ctx.recv_where_timeout(|e| is_my_ack(e) || e.is::<TaggedBatch<R>>(), wait)
            else {
                break; // timed out: resend
            };
            if env.is::<TaggedBatch<R>>() {
                // A child's resend of a batch this relay already merged:
                // re-acknowledge so the child can stop.
                ack_batch::<R>(ctx, env);
            } else {
                ctx.discard_stashed(is_my_ack);
                return;
            }
        }
        wait = SimDuration::from_nanos(wait.as_nanos().saturating_mul(2)).min(cap);
    }
    // The ack never arrived. Under a bounded fault plan the batch itself
    // has long since been delivered; give up on the receipt and exit.
}

/// Receives the next [`TaggedBatch`], acknowledges it, and returns it.
fn recv_batch<R: Send + 'static>(ctx: &mut Ctx) -> Batch<R> {
    let env = ctx.recv_where(|e| e.is::<TaggedBatch<R>>());
    ack_batch::<R>(ctx, env)
}

/// Acknowledges a received batch envelope and unwraps its payload.
fn ack_batch<R: Send + 'static>(ctx: &mut Ctx, env: parsim::Envelope) -> Batch<R> {
    let from = env.from();
    let tb = env
        .downcast::<TaggedBatch<R>>()
        .expect("caller matched the type");
    ctx.send_sized_cloneable(
        from,
        BatchAck {
            delivery: tb.delivery,
        },
        0,
    );
    tb.batch
}

/// Starts every worker, waits for all of them, and returns their results
/// in spec order.
///
/// With [`Fanout::Serial`] the controller pays `spawn_cost` per worker;
/// with [`Fanout::Tree`] workers start their own subtrees and completions
/// aggregate back up, making startup and completion O(log p).
///
/// # Errors
///
/// Returns the first failing worker's error (by spec order).
pub fn run_workers<R: Clone + Send + 'static>(
    ctx: &mut Ctx,
    opts: &ToolOptions,
    specs: Vec<WorkerSpec<R>>,
) -> Result<Vec<R>, ToolError> {
    if specs.is_empty() {
        return Ok(Vec::new());
    }
    let me = ctx.me();
    let n = specs.len();
    let mut collected: Vec<Option<Result<R, ToolError>>> = Vec::new();
    collected.resize_with(n, || None);

    match opts.fanout {
        Fanout::Serial => {
            for (idx, spec) in specs.into_iter().enumerate() {
                ctx.delay(opts.spawn_cost);
                ctx.spawn(spec.node, spec.name, move |c: &mut Ctx| {
                    let r = (spec.run)(c);
                    deliver_batch(c, me, vec![(idx, r)]);
                });
            }
        }
        Fanout::Tree => {
            let indexed: Vec<(usize, WorkerSpec<R>)> = specs.into_iter().enumerate().collect();
            let spawn_cost = opts.spawn_cost;
            spawn_subtree(ctx, me, indexed, spawn_cost);
        }
    }

    // Merge until every worker index has reported; duplicates re-deliver
    // indices that are already filled and are ignored.
    let mut remaining = n;
    while remaining > 0 {
        for (idx, r) in recv_batch::<R>(ctx) {
            let slot = &mut collected[idx];
            if slot.is_none() {
                *slot = Some(r);
                remaining -= 1;
            }
        }
    }
    // Late resends may still be parked in the stash; they are merged
    // already, so drop them rather than leak them to later receives.
    ctx.discard_stashed(|e| e.is::<TaggedBatch<R>>());

    let mut out = Vec::with_capacity(n);
    for (idx, slot) in collected.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => return Err(ToolError::Protocol(format!("worker {idx} never reported"))),
        }
    }
    Ok(out)
}

/// Spawns the head of `specs` as a relay worker that starts the two halves
/// of the remainder, runs its own body, collects its subtree's batches,
/// and delivers the aggregate to `parent`.
fn spawn_subtree<R: Clone + Send + 'static>(
    ctx: &mut Ctx,
    parent: ProcId,
    mut specs: Vec<(usize, WorkerSpec<R>)>,
    spawn_cost: parsim::SimDuration,
) {
    debug_assert!(!specs.is_empty());
    let rest = specs.split_off(1);
    let (idx, spec) = specs.pop().expect("head exists");
    ctx.delay(spawn_cost);
    ctx.spawn(spec.node, spec.name, move |c: &mut Ctx| {
        let me = c.me();
        let below = rest.len();
        let mid = below / 2;
        let mut rest = rest;
        let right = rest.split_off(mid);
        let left = rest;
        if !left.is_empty() {
            spawn_subtree(c, me, left, spawn_cost);
        }
        if !right.is_empty() {
            spawn_subtree(c, me, right, spawn_cost);
        }
        let mine = (spec.run)(c);
        let mut batch: Batch<R> = vec![(idx, mine)];
        let mut have: BTreeSet<usize> = BTreeSet::new();
        while have.len() < below {
            for (i, r) in recv_batch::<R>(c) {
                if have.insert(i) {
                    batch.push((i, r));
                }
            }
        }
        deliver_batch(c, parent, batch);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim::{FaultPlan, MsgFaults, SimConfig, SimDuration, SimTime, Simulation};

    fn run_with(fanout: Fanout, workers: usize) -> (Vec<u32>, SimDuration) {
        let mut sim = Simulation::new(SimConfig::default());
        let nodes: Vec<NodeId> = (0..workers)
            .map(|i| sim.add_node(format!("n{i}")))
            .collect();
        let ctrl = sim.add_node("ctrl");
        let opts = ToolOptions {
            spawn_cost: SimDuration::from_millis(10),
            fanout,
            ..ToolOptions::default()
        };
        sim.block_on(ctrl, "controller", move |ctx| {
            let specs: Vec<WorkerSpec<u32>> = nodes
                .iter()
                .enumerate()
                .map(|(i, &node)| WorkerSpec {
                    node,
                    name: format!("w{i}"),
                    run: Box::new(move |_c: &mut Ctx| Ok(i as u32 * 10)),
                })
                .collect();
            let t0 = ctx.now();
            let results = run_workers(ctx, &opts, specs).unwrap();
            (results, ctx.now() - t0)
        })
    }

    #[test]
    fn results_come_back_in_order_both_modes() {
        for fanout in [Fanout::Serial, Fanout::Tree] {
            let (results, _) = run_with(fanout, 9);
            assert_eq!(results, (0..9).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tree_startup_is_logarithmic() {
        let (_, serial64) = run_with(Fanout::Serial, 64);
        let (_, tree64) = run_with(Fanout::Tree, 64);
        assert!(
            tree64 < serial64 / 3,
            "tree {tree64} should beat serial {serial64} clearly at p=64"
        );
        // And the gap widens with p (logarithmic vs linear).
        let (_, serial16) = run_with(Fanout::Serial, 16);
        let (_, tree16) = run_with(Fanout::Tree, 16);
        let gain16 = serial16.as_secs_f64() / tree16.as_secs_f64();
        let gain64 = serial64.as_secs_f64() / tree64.as_secs_f64();
        assert!(
            gain64 > gain16,
            "advantage grows: {gain16:.2} → {gain64:.2}"
        );
    }

    #[test]
    fn worker_errors_propagate() {
        let mut sim = Simulation::new(SimConfig::default());
        let n = sim.add_node("n");
        let err = sim.block_on(n, "controller", move |ctx| {
            let specs: Vec<WorkerSpec<()>> = (0..3)
                .map(|i| WorkerSpec {
                    node: n,
                    name: format!("w{i}"),
                    run: Box::new(move |_c: &mut Ctx| {
                        if i == 1 {
                            Err(ToolError::Protocol("worker 1 failed".into()))
                        } else {
                            Ok(())
                        }
                    }),
                })
                .collect();
            run_workers(ctx, &ToolOptions::default(), specs).unwrap_err()
        });
        assert_eq!(err, ToolError::Protocol("worker 1 failed".into()));
    }

    #[test]
    fn empty_spec_list_is_fine() {
        let mut sim = Simulation::new(SimConfig::default());
        let n = sim.add_node("n");
        let out = sim.block_on(n, "controller", move |ctx| {
            run_workers::<u8>(ctx, &ToolOptions::default(), vec![]).unwrap()
        });
        assert!(out.is_empty());
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    /// The join must survive an interconnect that drops, duplicates, and
    /// delays completion traffic — the regression that stranded pfsck
    /// under crash-era chaos plans.
    #[test]
    fn join_survives_message_faults_both_modes() {
        for fanout in [Fanout::Serial, Fanout::Tree] {
            for seed in 1..=8u64 {
                let config = SimConfig {
                    faults: FaultPlan {
                        seed,
                        msg: MsgFaults {
                            drop_per_mille: 300,
                            dup_per_mille: 250,
                            delay_per_mille: 300,
                            delay_max: SimDuration::from_millis(80),
                            max_consecutive_drops: 4,
                        },
                        ..FaultPlan::default()
                    },
                    ..SimConfig::default()
                };
                let mut sim = Simulation::new(config);
                let nodes: Vec<NodeId> = (0..9).map(|i| sim.add_node(format!("n{i}"))).collect();
                let ctrl = sim.add_node("ctrl");
                let opts = ToolOptions {
                    spawn_cost: SimDuration::from_millis(10),
                    fanout,
                    ..ToolOptions::default()
                };
                let results = sim.block_on(ctrl, "controller", move |ctx| {
                    let specs: Vec<WorkerSpec<u32>> = nodes
                        .iter()
                        .enumerate()
                        .map(|(i, &node)| WorkerSpec {
                            node,
                            name: format!("w{i}"),
                            run: Box::new(move |_c: &mut Ctx| Ok(i as u32 * 10)),
                        })
                        .collect();
                    run_workers(ctx, &opts, specs).unwrap()
                });
                assert_eq!(
                    results,
                    (0..9).map(|i| i * 10).collect::<Vec<_>>(),
                    "fanout {fanout:?} seed {seed}"
                );
            }
        }
    }
}
