//! Worker orchestration: starting one subprocess per LFS node and joining
//! their results, serially or through a binary fan-out tree.
//!
//! "Typical interaction between tools and the other components of the
//! system involves (1) a brief phase of communication with the Bridge
//! Server …, (2) the creation of subprocesses on all the LFS nodes, and
//! (3) a lengthy series of interactions between the subprocesses and the
//! instances of LFS." This module is phase (2), with completion handled by
//! the same topology.

use crate::error::ToolError;
use crate::options::{Fanout, ToolOptions};
use parsim::{Ctx, NodeId, ProcId};

/// The boxed body a worker runs on its node.
pub type WorkerBody<R> = Box<dyn FnOnce(&mut Ctx) -> Result<R, ToolError> + Send>;

/// One worker to start: where, what to call it, and what it runs.
pub struct WorkerSpec<R> {
    /// Node to start the worker on (tools place workers on the LFS nodes
    /// that hold their data).
    pub node: NodeId,
    /// Process name (debugging).
    pub name: String,
    /// The worker body.
    pub run: WorkerBody<R>,
}

impl<R> std::fmt::Debug for WorkerSpec<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerSpec")
            .field("node", &self.node)
            .field("name", &self.name)
            .finish()
    }
}

type Batch<R> = Vec<(usize, Result<R, ToolError>)>;

/// Starts every worker, waits for all of them, and returns their results
/// in spec order.
///
/// With [`Fanout::Serial`] the controller pays `spawn_cost` per worker;
/// with [`Fanout::Tree`] workers start their own subtrees and completions
/// aggregate back up, making startup and completion O(log p).
///
/// # Errors
///
/// Returns the first failing worker's error (by spec order).
pub fn run_workers<R: Send + 'static>(
    ctx: &mut Ctx,
    opts: &ToolOptions,
    specs: Vec<WorkerSpec<R>>,
) -> Result<Vec<R>, ToolError> {
    if specs.is_empty() {
        return Ok(Vec::new());
    }
    let me = ctx.me();
    let n = specs.len();
    let mut collected: Vec<Option<Result<R, ToolError>>> = Vec::new();
    collected.resize_with(n, || None);

    match opts.fanout {
        Fanout::Serial => {
            for (idx, spec) in specs.into_iter().enumerate() {
                ctx.delay(opts.spawn_cost);
                ctx.spawn(spec.node, spec.name, move |c: &mut Ctx| {
                    let r = (spec.run)(c);
                    c.send(me, vec![(idx, r)] as Batch<R>);
                });
            }
            for _ in 0..n {
                let (_, batch) = ctx.recv_as::<Batch<R>>();
                for (idx, r) in batch {
                    collected[idx] = Some(r);
                }
            }
        }
        Fanout::Tree => {
            let indexed: Vec<(usize, WorkerSpec<R>)> = specs.into_iter().enumerate().collect();
            let spawn_cost = opts.spawn_cost;
            spawn_subtree(ctx, me, indexed, spawn_cost);
            let (_, batch) = ctx.recv_as::<Batch<R>>();
            for (idx, r) in batch {
                collected[idx] = Some(r);
            }
        }
    }

    let mut out = Vec::with_capacity(n);
    for (idx, slot) in collected.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            None => return Err(ToolError::Protocol(format!("worker {idx} never reported"))),
        }
    }
    Ok(out)
}

/// Spawns the head of `specs` as a relay worker that starts the two halves
/// of the remainder, runs its own body, and sends the aggregated batch to
/// `parent`.
fn spawn_subtree<R: Send + 'static>(
    ctx: &mut Ctx,
    parent: ProcId,
    mut specs: Vec<(usize, WorkerSpec<R>)>,
    spawn_cost: parsim::SimDuration,
) {
    debug_assert!(!specs.is_empty());
    let rest = specs.split_off(1);
    let (idx, spec) = specs.pop().expect("head exists");
    ctx.delay(spawn_cost);
    ctx.spawn(spec.node, spec.name, move |c: &mut Ctx| {
        let me = c.me();
        let mid = rest.len() / 2;
        let mut rest = rest;
        let right = rest.split_off(mid);
        let left = rest;
        let mut children = 0;
        if !left.is_empty() {
            spawn_subtree(c, me, left, spawn_cost);
            children += 1;
        }
        if !right.is_empty() {
            spawn_subtree(c, me, right, spawn_cost);
            children += 1;
        }
        let mine = (spec.run)(c);
        let mut batch: Batch<R> = vec![(idx, mine)];
        for _ in 0..children {
            let (_, sub) = c.recv_as::<Batch<R>>();
            batch.extend(sub);
        }
        c.send(parent, batch);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim::{SimConfig, SimDuration, SimTime, Simulation};

    fn run_with(fanout: Fanout, workers: usize) -> (Vec<u32>, SimDuration) {
        let mut sim = Simulation::new(SimConfig::default());
        let nodes: Vec<NodeId> = (0..workers)
            .map(|i| sim.add_node(format!("n{i}")))
            .collect();
        let ctrl = sim.add_node("ctrl");
        let opts = ToolOptions {
            spawn_cost: SimDuration::from_millis(10),
            fanout,
            ..ToolOptions::default()
        };
        sim.block_on(ctrl, "controller", move |ctx| {
            let specs: Vec<WorkerSpec<u32>> = nodes
                .iter()
                .enumerate()
                .map(|(i, &node)| WorkerSpec {
                    node,
                    name: format!("w{i}"),
                    run: Box::new(move |_c: &mut Ctx| Ok(i as u32 * 10)),
                })
                .collect();
            let t0 = ctx.now();
            let results = run_workers(ctx, &opts, specs).unwrap();
            (results, ctx.now() - t0)
        })
    }

    #[test]
    fn results_come_back_in_order_both_modes() {
        for fanout in [Fanout::Serial, Fanout::Tree] {
            let (results, _) = run_with(fanout, 9);
            assert_eq!(results, (0..9).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn tree_startup_is_logarithmic() {
        let (_, serial64) = run_with(Fanout::Serial, 64);
        let (_, tree64) = run_with(Fanout::Tree, 64);
        assert!(
            tree64 < serial64 / 3,
            "tree {tree64} should beat serial {serial64} clearly at p=64"
        );
        // And the gap widens with p (logarithmic vs linear).
        let (_, serial16) = run_with(Fanout::Serial, 16);
        let (_, tree16) = run_with(Fanout::Tree, 16);
        let gain16 = serial16.as_secs_f64() / tree16.as_secs_f64();
        let gain64 = serial64.as_secs_f64() / tree64.as_secs_f64();
        assert!(
            gain64 > gain16,
            "advantage grows: {gain16:.2} → {gain64:.2}"
        );
    }

    #[test]
    fn worker_errors_propagate() {
        let mut sim = Simulation::new(SimConfig::default());
        let n = sim.add_node("n");
        let err = sim.block_on(n, "controller", move |ctx| {
            let specs: Vec<WorkerSpec<()>> = (0..3)
                .map(|i| WorkerSpec {
                    node: n,
                    name: format!("w{i}"),
                    run: Box::new(move |_c: &mut Ctx| {
                        if i == 1 {
                            Err(ToolError::Protocol("worker 1 failed".into()))
                        } else {
                            Ok(())
                        }
                    }),
                })
                .collect();
            run_workers(ctx, &ToolOptions::default(), specs).unwrap_err()
        });
        assert_eq!(err, ToolError::Protocol("worker 1 failed".into()));
    }

    #[test]
    fn empty_spec_list_is_fine() {
        let mut sim = Simulation::new(SimConfig::default());
        let n = sim.add_node("n");
        let out = sim.block_on(n, "controller", move |ctx| {
            run_workers::<u8>(ctx, &ToolOptions::default(), vec![]).unwrap()
        });
        assert!(out.is_empty());
        assert_eq!(sim.now(), SimTime::ZERO);
    }
}
