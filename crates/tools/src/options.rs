//! Options shared by all tools: worker start-up/completion topology.
//!
//! The copy tool runs in O(n/p) "plus O(log(p)) for startup and
//! completion" — achieved by fanning worker creation out through a binary
//! tree instead of having the controller start every worker itself
//! (the improvement the paper also suggests for Create's sequential
//! initiation). Both topologies are provided; the ablation benchmark
//! `ablate_tree_start` compares them.

use bridge_core::BatchPolicy;
use parsim::SimDuration;

/// How a controller starts (and joins) its per-node workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Fanout {
    /// Workers are started one by one by the controller: O(p) startup.
    Serial,
    /// Workers start their subtree's workers: O(log p) startup, and
    /// completions aggregate up the same tree.
    #[default]
    Tree,
}

/// Tool tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToolOptions {
    /// CPU cost of creating one remote worker process (a late-1980s
    /// operating system starting a process on another node).
    pub spawn_cost: SimDuration,
    /// Startup/completion topology.
    pub fanout: Fanout,
    /// Run batching for the column streams: with [`BatchPolicy::Runs`]
    /// every reader prefetches and every writer flushes runs of up to
    /// `depth` consecutive local blocks in one LFS round trip, cutting the
    /// per-block message traffic. [`BatchPolicy::Off`] (the default)
    /// reproduces the paper's block-at-a-time protocol exactly.
    pub batch: BatchPolicy,
}

impl Default for ToolOptions {
    fn default() -> Self {
        ToolOptions {
            spawn_cost: SimDuration::from_millis(3),
            fanout: Fanout::Tree,
            batch: BatchPolicy::Off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_use_tree_fanout() {
        let opts = ToolOptions::default();
        assert_eq!(opts.fanout, Fanout::Tree);
        assert!(!opts.spawn_cost.is_zero());
        assert_eq!(opts.batch, BatchPolicy::Off);
        assert_eq!(opts.batch.depth(), 1);
    }
}
