//! # bridge-tools — applications that become part of the file system
//!
//! "Bridge tools are applications that become part of the file system. A
//! standard set of tools (copy, sort, grep, ...) can be viewed as part of
//! the top layer of the file system." Tools obtain a file's structure from
//! the Bridge Server (`Get Info` / `Open`), create subprocesses on the LFS
//! nodes that hold the data, and then talk to the LFS instances directly —
//! moving the computation to the data instead of the data to the
//! computation.
//!
//! Provided tools:
//!
//! * [`copy`] / [`copy_with`] — the §5.1 copy tool and its one-to-one
//!   filter family ([`transforms`]): O(n/p + log p).
//! * [`grep`] / [`summarize`] — sequential search and summary tools that
//!   return "a small amount of information at completion time".
//! * [`sort`] — the §5.2 two-phase merge sort: local external sorts, then
//!   log(p) passes of the Figure-4 token-passing parallel merge.
//! * [`pfsck`] — whole-machine consistency check and repair, auditing all
//!   `p` LFS instances in parallel (with a serial baseline mode).
//! * [`run_scenario`] / the `bridgetop` binary — the live machine-health
//!   dashboard: polls a running machine's telemetry on a virtual-time
//!   cadence and renders or exports the frames.
//!
//! ## Example
//!
//! ```
//! use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec};
//! use bridge_tools::{copy, summarize, ToolOptions};
//!
//! let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(4));
//! let server = machine.server;
//! sim.block_on(machine.frontend, "tool", move |ctx| {
//!     let mut bridge = BridgeClient::new(server);
//!     let src = bridge.create(ctx, CreateSpec::default())?;
//!     for i in 0..12u64 {
//!         bridge.seq_write(ctx, src, i.to_be_bytes().to_vec())?;
//!     }
//!     let (dst, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default())?;
//!     assert_eq!(stats.blocks, 12);
//!     let a = summarize(ctx, &mut bridge, src, &ToolOptions::default())?;
//!     let b = summarize(ctx, &mut bridge, dst, &ToolOptions::default())?;
//!     assert_eq!(a.checksum, b.checksum);
//!     Ok::<_, bridge_tools::ToolError>(())
//! }).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bridgetop;
mod column;
mod copy;
mod error;
mod fsck;
mod options;
mod scan;
mod sort;
mod toolkit;

pub use bridgetop::{run_scenario, TopOptions, TopScenario};
pub use column::{ColumnReader, ColumnWriter};
pub use copy::{copy, copy_with, transforms, BlockTransform, CopyStats};
pub use error::ToolError;
pub use fsck::{
    machine_check, pfsck, FsckMode, FsckOptions, FsckVerdict, MachineFinding, MachineReport,
};
pub use options::{Fanout, ToolOptions};
pub use scan::{grep, summarize, Match, Summary};
pub use sort::{key_of, sort, LocalMergeArity, SortOptions, SortStats, KEY_LEN};
pub use toolkit::{run_workers, WorkerSpec};
