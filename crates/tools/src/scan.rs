//! Scan tools: sequential search (grep) and summary information.
//!
//! "By returning a small amount of information at completion time, we can
//! also perform sequential searches or produce summary information" — the
//! whole point being that the data is filtered *at the node that holds it*
//! and only the small result crosses the interconnect.

use crate::column::ColumnReader;
use crate::error::ToolError;
use crate::options::ToolOptions;
use crate::toolkit::{run_workers, WorkerSpec};
use bridge_core::{BridgeClient, BridgeError, BridgeFileId, PlacementKind};
use bridge_efs::LfsClient;
use parsim::Ctx;

/// One grep hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Match {
    /// Global block containing the hit.
    pub global_block: u64,
    /// Byte offset of the hit within the block's 960 data bytes.
    pub offset: u32,
}

/// Searches every block of `file` for `pattern`, scanning each column on
/// its own node; returns matches sorted by (block, offset).
///
/// Matches are found *within* blocks: Bridge records are block-aligned
/// (the paper's filters work "on fixed-length lines"), and globally
/// consecutive blocks live on different nodes, so cross-block spans are
/// not a per-column concept.
///
/// # Errors
///
/// Propagates server and LFS errors; rejects an empty pattern and linked
/// files.
pub fn grep(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    file: BridgeFileId,
    pattern: Vec<u8>,
    opts: &ToolOptions,
) -> Result<Vec<Match>, ToolError> {
    if pattern.is_empty() {
        return Err(ToolError::Protocol("empty grep pattern".into()));
    }
    let open = bridge.open(ctx, file)?;
    if matches!(open.placement, PlacementKind::Linked) {
        return Err(ToolError::Bridge(BridgeError::LinkedUnsupported {
            op: "grep tool",
        }));
    }
    let batch = opts.batch;
    let specs: Vec<WorkerSpec<Vec<Match>>> = open
        .nodes
        .iter()
        .enumerate()
        .map(|(i, slice)| {
            let proc = slice.proc;
            let lfs_file = open.lfs_file;
            let local_size = slice.local_size;
            let pattern = pattern.clone();
            WorkerSpec {
                node: slice.node,
                name: format!("egrep{i}"),
                run: Box::new(move |c: &mut Ctx| {
                    let mut client = LfsClient::new();
                    let mut reader =
                        ColumnReader::new(proc, lfs_file, local_size).with_batch(batch);
                    let mut hits = Vec::new();
                    while let Some((header, data)) = reader.next_block(c, &mut client)? {
                        let mut start = 0usize;
                        while start + pattern.len() <= data.len() {
                            match find(&data[start..], &pattern) {
                                Some(off) => {
                                    hits.push(Match {
                                        global_block: header.global_block,
                                        offset: (start + off) as u32,
                                    });
                                    start += off + 1;
                                }
                                None => break,
                            }
                        }
                    }
                    Ok(hits)
                }),
            }
        })
        .collect();
    let mut all: Vec<Match> = run_workers(ctx, opts, specs)?
        .into_iter()
        .flatten()
        .collect();
    all.sort_unstable();
    Ok(all)
}

fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Aggregate facts about a file, computed in one pass per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Summary {
    /// Blocks examined.
    pub blocks: u64,
    /// Data bytes examined (blocks × 960).
    pub data_bytes: u64,
    /// Zero bytes seen (padding and sparsity).
    pub zero_bytes: u64,
    /// Multiset checksum of all block contents: invariant under any
    /// permutation of blocks (so a sort preserves it) but sensitive to any
    /// byte change and to duplicate counts.
    pub checksum: u64,
    /// Smallest leading 8-byte record key.
    pub min_key: [u8; 8],
    /// Largest leading 8-byte record key.
    pub max_key: [u8; 8],
}

impl Summary {
    fn absorb_block(&mut self, data: &[u8]) {
        if self.blocks == 0 {
            self.min_key = [0xff; 8];
            self.max_key = [0; 8];
        }
        self.blocks += 1;
        self.data_bytes += data.len() as u64;
        let mut block_hash = 0xcbf2_9ce4_8422_2325u64; // FNV-ish fold
        for &b in data {
            if b == 0 {
                self.zero_bytes += 1;
            }
            block_hash ^= u64::from(b);
            block_hash = block_hash.wrapping_mul(0x1000_0000_01b3);
        }
        self.checksum = self.checksum.wrapping_add(block_hash);
        let mut key = [0u8; 8];
        key.copy_from_slice(&data[..8.min(data.len())]);
        if key < self.min_key {
            self.min_key = key;
        }
        if key > self.max_key {
            self.max_key = key;
        }
    }

    fn merge(mut self, other: Summary) -> Summary {
        if other.blocks == 0 {
            return self;
        }
        if self.blocks == 0 {
            return other;
        }
        self.blocks += other.blocks;
        self.data_bytes += other.data_bytes;
        self.zero_bytes += other.zero_bytes;
        self.checksum = self.checksum.wrapping_add(other.checksum);
        self.min_key = self.min_key.min(other.min_key);
        self.max_key = self.max_key.max(other.max_key);
        self
    }
}

/// Produces a [`Summary`] of `file` with one scanning worker per node.
///
/// The checksum treats the file as a *multiset of blocks*: a copy or a
/// sort preserves it, any byte change breaks it — a cheap equality oracle
/// for the other tools.
///
/// # Errors
///
/// Propagates server and LFS errors; rejects linked files.
pub fn summarize(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    file: BridgeFileId,
    opts: &ToolOptions,
) -> Result<Summary, ToolError> {
    let open = bridge.open(ctx, file)?;
    if matches!(open.placement, PlacementKind::Linked) {
        return Err(ToolError::Bridge(BridgeError::LinkedUnsupported {
            op: "summary tool",
        }));
    }
    let batch = opts.batch;
    let specs: Vec<WorkerSpec<Summary>> = open
        .nodes
        .iter()
        .enumerate()
        .map(|(i, slice)| {
            let proc = slice.proc;
            let lfs_file = open.lfs_file;
            let local_size = slice.local_size;
            WorkerSpec {
                node: slice.node,
                name: format!("esum{i}"),
                run: Box::new(move |c: &mut Ctx| {
                    let mut client = LfsClient::new();
                    let mut reader =
                        ColumnReader::new(proc, lfs_file, local_size).with_batch(batch);
                    let mut summary = Summary::default();
                    while let Some((_, data)) = reader.next_block(c, &mut client)? {
                        summary.absorb_block(&data);
                    }
                    Ok(summary)
                }),
            }
        })
        .collect();
    Ok(run_workers(ctx, opts, specs)?
        .into_iter()
        .fold(Summary::default(), Summary::merge))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_locates_patterns() {
        assert_eq!(find(b"hello world", b"world"), Some(6));
        assert_eq!(find(b"hello", b"x"), None);
        assert_eq!(find(b"aaa", b"aa"), Some(0));
    }

    #[test]
    fn summary_merge_is_commutative_and_tracks_extremes() {
        let mut a = Summary::default();
        a.absorb_block(&[1u8; 960]);
        let mut b = Summary::default();
        b.absorb_block(&[9u8; 960]);
        b.absorb_block(&[0u8; 960]);
        let ab = a.merge(b);
        let ba = b.merge(a);
        assert_eq!(ab, ba);
        assert_eq!(ab.blocks, 3);
        assert_eq!(ab.zero_bytes, 960);
        assert_eq!(ab.min_key, [0u8; 8]);
        assert_eq!(ab.max_key, [9u8; 8]);
    }

    #[test]
    fn empty_summary_is_identity() {
        let mut a = Summary::default();
        a.absorb_block(&[5u8; 100]);
        assert_eq!(a.merge(Summary::default()), a);
        assert_eq!(Summary::default().merge(a), a);
    }
}
