//! pfsck — whole-machine consistency checking, one checker per LFS.
//!
//! A Bridge file is striped over every instance, so a "file system check"
//! is really `p` independent checks: each LFS audits its own directory,
//! chains, and allocator ([`Efs::fsck_timed`](bridge_efs::Efs)). pfsck is
//! the tool that runs them — in parallel, one worker per node, the same
//! move-the-computation shape as the copy and scan tools — and folds the
//! per-instance [`FsckReport`]s into a single machine-wide verdict. The
//! serial mode visits instances one at a time from the controller and
//! exists as the baseline the `fsck_speedup` bench measures against.

use crate::error::ToolError;
use crate::options::ToolOptions;
use crate::toolkit::{run_workers, WorkerSpec};
use bridge_efs::{FsckReport, LfsClient, LfsData, LfsOp, RetryPolicy};
use parsim::{Ctx, NodeId, ProcId, SimDuration};

/// How pfsck visits the instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsckMode {
    /// One checking worker per LFS node, all instances audited
    /// concurrently — the tool's point.
    #[default]
    Parallel,
    /// The controller checks instances one at a time: the serial baseline
    /// the parallel speedup is measured against.
    Serial,
}

/// pfsck tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsckOptions {
    /// Repair what can be repaired (truncate torn tails, drop dangling
    /// entries, rebuild the allocator); `false` is check-only.
    pub repair: bool,
    /// Parallel or serial visit order.
    pub mode: FsckMode,
    /// Worker startup topology and costs (parallel mode).
    pub tool: ToolOptions,
    /// Retry policy for the per-instance Fsck calls. The default
    /// ([`RetryPolicy::none`]) waits indefinitely; checks run against a
    /// machine with crash faults armed should use
    /// [`RetryPolicy::standard`] so a kill mid-check is ridden out.
    pub retry: RetryPolicy,
}

/// The machine-wide outcome of a pfsck run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckVerdict {
    /// Per-instance reports, by LFS ordinal.
    pub reports: Vec<FsckReport>,
    /// Total inconsistencies repaired across all instances.
    pub repaired: u32,
    /// Virtual time the whole check took.
    pub elapsed: SimDuration,
}

impl FsckVerdict {
    /// True when no instance found any inconsistency.
    pub fn clean(&self) -> bool {
        self.reports.iter().all(|r| r.errors.is_empty())
    }

    /// Every inconsistency message, prefixed with its LFS ordinal.
    pub fn errors(&self) -> Vec<String> {
        self.reports
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.errors.iter().map(move |e| format!("lfs{i}: {e}")))
            .collect()
    }
}

/// Checks (and with [`FsckOptions::repair`], repairs) every LFS instance
/// of a machine. `lfs` pairs each instance's server process with the node
/// it runs on, by LFS ordinal — zip a
/// [`BridgeMachine`](bridge_core::BridgeMachine)'s `lfs` and `lfs_nodes`.
///
/// Emits a `fsck.pfsck` span covering the whole run; each instance's
/// passes emit their own `fsck.*` spans server-side.
///
/// # Errors
///
/// Propagates LFS errors and worker protocol failures.
pub fn pfsck(
    ctx: &mut Ctx,
    lfs: &[(ProcId, NodeId)],
    opts: &FsckOptions,
) -> Result<FsckVerdict, ToolError> {
    let t0 = ctx.now();
    let repair = opts.repair;
    let reports = match opts.mode {
        FsckMode::Serial => {
            let mut client = LfsClient::with_retry(opts.retry);
            let mut reports = Vec::with_capacity(lfs.len());
            for &(proc, _) in lfs {
                reports.push(expect_report(client.call(
                    ctx,
                    proc,
                    LfsOp::Fsck { repair },
                )?)?);
            }
            reports
        }
        FsckMode::Parallel => {
            let specs: Vec<WorkerSpec<FsckReport>> = lfs
                .iter()
                .enumerate()
                .map(|(i, &(proc, node))| {
                    let retry = opts.retry;
                    WorkerSpec {
                        node,
                        name: format!("pfsck{i}"),
                        run: Box::new(move |c: &mut Ctx| {
                            let mut client = LfsClient::with_retry(retry);
                            expect_report(client.call(c, proc, LfsOp::Fsck { repair })?)
                        }),
                    }
                })
                .collect();
            run_workers(ctx, &opts.tool, specs)?
        }
    };
    let repaired = reports.iter().map(|r| r.repaired).sum();
    let verdict = FsckVerdict {
        repaired,
        elapsed: ctx.now().duration_since(t0),
        reports,
    };
    if ctx.trace_enabled() {
        ctx.trace_span(
            "fsck",
            "fsck.pfsck",
            t0,
            &[
                ("instances", lfs.len() as u64),
                ("repaired", u64::from(verdict.repaired)),
                ("errors", verdict.errors().len() as u64),
                ("clean", u64::from(verdict.clean())),
            ],
        );
    }
    Ok(verdict)
}

fn expect_report(data: LfsData) -> Result<FsckReport, ToolError> {
    match data {
        LfsData::Fsck(report) => Ok(report),
        other => Err(ToolError::Protocol(format!(
            "unexpected fsck reply: {other:?}"
        ))),
    }
}
