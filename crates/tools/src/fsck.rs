//! pfsck — whole-machine consistency checking, one checker per LFS.
//!
//! A Bridge file is striped over every instance, so a "file system check"
//! is really `p` independent checks: each LFS audits its own directory,
//! chains, and allocator ([`Efs::fsck_timed`](bridge_efs::Efs)). pfsck is
//! the tool that runs them — in parallel, one worker per node, the same
//! move-the-computation shape as the copy and scan tools — and folds the
//! per-instance [`FsckReport`]s into a single machine-wide verdict. The
//! serial mode visits instances one at a time from the controller and
//! exists as the baseline the `fsck_speedup` bench measures against.
//!
//! With [`FsckOptions::server`] set, a fourth, *machine-wide* pass runs
//! after the per-instance checks: it fetches the Bridge Server's
//! directory manifest (plus the 2PC coordinator's logged decisions) and a
//! file listing from every instance, then cross-checks the two — a file
//! must exist on all of its placement nodes ([`MachineFinding::
//! MissingColumn`]) and nothing else may exist
//! ([`MachineFinding::OrphanColumn`]). Directory entries naming a node
//! index beyond the machine's breadth (a stale placement spec) are
//! *reported*, never chased ([`MachineFinding::NodeOutOfRange`]). Under
//! `repair`, an orphaned column whose fate a logged decision settles — a
//! committed delete or an aborted create that a dead-at-decision-time
//! node never heard about — is resolved the way the decision says:
//! the column is deleted.

use crate::error::ToolError;
use crate::options::ToolOptions;
use crate::toolkit::{run_workers, WorkerSpec};
use bridge_core::{BridgeClient, BridgeFileId, LoggedDecision, MachineManifest};
use bridge_efs::{
    FileInfo, FsckReport, LfsClient, LfsData, LfsFileId, LfsOp, PrepareIntent, RetryPolicy,
};
use parsim::{Ctx, NodeId, ProcId, SimDuration};
use std::collections::BTreeSet;

/// How pfsck visits the instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsckMode {
    /// One checking worker per LFS node, all instances audited
    /// concurrently — the tool's point.
    #[default]
    Parallel,
    /// The controller checks instances one at a time: the serial baseline
    /// the parallel speedup is measured against.
    Serial,
}

/// pfsck tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsckOptions {
    /// Repair what can be repaired (truncate torn tails, drop dangling
    /// entries, rebuild the allocator); `false` is check-only.
    pub repair: bool,
    /// Parallel or serial visit order.
    pub mode: FsckMode,
    /// Worker startup topology and costs (parallel mode).
    pub tool: ToolOptions,
    /// Retry policy for the per-instance Fsck calls. The default
    /// ([`RetryPolicy::none`]) waits indefinitely; checks run against a
    /// machine with crash faults armed should use
    /// [`RetryPolicy::standard`] so a kill mid-check is ridden out.
    pub retry: RetryPolicy,
    /// The Bridge Server, enabling the machine-wide cross-check pass
    /// (directory manifest vs per-instance listings, orphans resolved by
    /// the coordinator's logged decisions). `None` (the default) runs the
    /// per-instance passes only — the pre-2PC behaviour.
    pub server: Option<ProcId>,
}

/// One inconsistency found by the machine-wide pass: the server's
/// directory and the instances' actual holdings disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineFinding {
    /// The directory places `file` on `node`, but the instance holds no
    /// column named `lfs_file`. Not repaired by pfsck: a redundant file's
    /// column is rebuilt by the server's `Rebuild` command, and a
    /// non-redundant one is data loss to surface, not paper over.
    MissingColumn {
        /// The Bridge file missing a column.
        file: BridgeFileId,
        /// The machine index of the instance that should hold it.
        node: u32,
        /// The column's local name there.
        lfs_file: LfsFileId,
    },
    /// The instance holds a column no directory entry accounts for.
    /// Repairable when a logged 2PC decision settles its fate (a
    /// committed delete or an aborted create the node never applied):
    /// the column is deleted, finishing the decision's phase 2.
    OrphanColumn {
        /// The machine index of the instance holding the stray column.
        node: u32,
        /// The stray column's local name.
        lfs_file: LfsFileId,
        /// Whether a logged decision covers (and so can resolve) it.
        resolvable: bool,
    },
    /// The directory entry for `file` names a placement node that does
    /// not exist on this machine — a stale placement spec from a
    /// different breadth. Reported, never dereferenced.
    NodeOutOfRange {
        /// The file with the stale placement.
        file: BridgeFileId,
        /// The out-of-range machine index its entry names.
        node: u32,
        /// The machine's actual breadth.
        breadth: u32,
    },
}

impl MachineFinding {
    /// Human-readable description, matching the per-instance error style.
    pub fn describe(&self) -> String {
        match self {
            MachineFinding::MissingColumn {
                file,
                node,
                lfs_file,
            } => format!("file {file:?}: column {lfs_file:?} missing on node {node}"),
            MachineFinding::OrphanColumn {
                node,
                lfs_file,
                resolvable,
            } => format!(
                "node {node}: orphan column {lfs_file:?} ({})",
                if *resolvable {
                    "resolvable by logged decision"
                } else {
                    "no logged decision covers it"
                }
            ),
            MachineFinding::NodeOutOfRange {
                file,
                node,
                breadth,
            } => format!(
                "file {file:?}: directory names node {node} but machine breadth is {breadth}"
            ),
        }
    }
}

/// The outcome of the machine-wide cross-check pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineReport {
    /// Every disagreement between the directory and the instances.
    pub findings: Vec<MachineFinding>,
    /// Orphaned columns resolved (deleted) under `repair`.
    pub repaired: u32,
}

/// The machine-wide outcome of a pfsck run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckVerdict {
    /// Per-instance reports, by LFS ordinal.
    pub reports: Vec<FsckReport>,
    /// The machine-wide pass, when [`FsckOptions::server`] was given.
    pub machine: Option<MachineReport>,
    /// Total inconsistencies repaired across all instances (machine-wide
    /// resolutions included).
    pub repaired: u32,
    /// Virtual time the whole check took.
    pub elapsed: SimDuration,
}

impl FsckVerdict {
    /// True when no instance — and the machine-wide pass, if it ran —
    /// found any inconsistency.
    pub fn clean(&self) -> bool {
        self.reports.iter().all(|r| r.errors.is_empty())
            && self.machine.as_ref().is_none_or(|m| m.findings.is_empty())
    }

    /// Every inconsistency message, prefixed with its LFS ordinal (or
    /// `machine:` for the cross-check pass).
    pub fn errors(&self) -> Vec<String> {
        self.reports
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.errors.iter().map(move |e| format!("lfs{i}: {e}")))
            .chain(self.machine.iter().flat_map(|m| {
                m.findings
                    .iter()
                    .map(|f| format!("machine: {}", f.describe()))
            }))
            .collect()
    }
}

/// The pure cross-check at the heart of the machine-wide pass: the
/// server's `manifest` against one [`FileInfo`] listing per instance
/// (`listings[i]` is machine index `i`). Findings are ordered: stale
/// placements first, then missing columns in manifest order, then orphans
/// in (node, file) order.
pub fn machine_check(
    manifest: &MachineManifest,
    listings: &[Vec<FileInfo>],
) -> Vec<MachineFinding> {
    let breadth = listings.len() as u32;
    let mut findings = Vec::new();
    // What each instance *should* hold, per the directory.
    let mut expected: Vec<BTreeSet<LfsFileId>> = vec![BTreeSet::new(); listings.len()];
    for entry in &manifest.files {
        for &node in &entry.nodes {
            if node >= breadth {
                findings.push(MachineFinding::NodeOutOfRange {
                    file: entry.file,
                    node,
                    breadth,
                });
                continue;
            }
            expected[node as usize].insert(entry.lfs_file);
            if let Some(companion) = entry.companion {
                expected[node as usize].insert(companion);
            }
        }
    }
    for entry in &manifest.files {
        for &node in &entry.nodes {
            if node >= breadth {
                continue;
            }
            // Only the primary column is load-bearing here: a redundant
            // file's companion may legitimately lag (an empty mirror
            // column is tolerated even by Delete).
            if !listings[node as usize]
                .iter()
                .any(|f| f.file == entry.lfs_file)
            {
                findings.push(MachineFinding::MissingColumn {
                    file: entry.file,
                    node,
                    lfs_file: entry.lfs_file,
                });
            }
        }
    }
    for (node, listing) in listings.iter().enumerate() {
        let mut strays: Vec<LfsFileId> = listing
            .iter()
            .map(|f| f.file)
            .filter(|f| !expected[node].contains(f))
            .collect();
        strays.sort();
        for lfs_file in strays {
            findings.push(MachineFinding::OrphanColumn {
                node: node as u32,
                lfs_file,
                resolvable: decision_resolves(&manifest.decisions, node as u32, lfs_file),
            });
        }
    }
    findings
}

/// Whether the decision log settles the fate of a stray column: the
/// *latest* logged decision touching (`node`, `lfs_file`) must be one
/// whose outcome is "this column should not exist" — a committed delete,
/// or an aborted (presumed or explicit) create.
fn decision_resolves(decisions: &[LoggedDecision], node: u32, lfs_file: LfsFileId) -> bool {
    decisions
        .iter()
        .rev()
        .find_map(|d| {
            d.participants
                .iter()
                .find(|p| p.node == node && p.intent.files().contains(&lfs_file))
                .map(|p| match &p.intent {
                    PrepareIntent::DeleteFiles(_) => d.committed,
                    PrepareIntent::CreateFiles(_) => !d.committed,
                })
        })
        .unwrap_or(false)
}

/// Checks (and with [`FsckOptions::repair`], repairs) every LFS instance
/// of a machine. `lfs` pairs each instance's server process with the node
/// it runs on, by LFS ordinal — zip a
/// [`BridgeMachine`](bridge_core::BridgeMachine)'s `lfs` and `lfs_nodes`.
///
/// Emits a `fsck.pfsck` span covering the whole run; each instance's
/// passes emit their own `fsck.*` spans server-side.
///
/// # Errors
///
/// Propagates LFS errors and worker protocol failures.
pub fn pfsck(
    ctx: &mut Ctx,
    lfs: &[(ProcId, NodeId)],
    opts: &FsckOptions,
) -> Result<FsckVerdict, ToolError> {
    let t0 = ctx.now();
    let repair = opts.repair;
    let reports = match opts.mode {
        FsckMode::Serial => {
            let mut client = LfsClient::with_retry(opts.retry);
            let mut reports = Vec::with_capacity(lfs.len());
            for &(proc, _) in lfs {
                reports.push(expect_report(client.call(
                    ctx,
                    proc,
                    LfsOp::Fsck { repair },
                )?)?);
            }
            reports
        }
        FsckMode::Parallel => {
            let specs: Vec<WorkerSpec<FsckReport>> = lfs
                .iter()
                .enumerate()
                .map(|(i, &(proc, node))| {
                    let retry = opts.retry;
                    WorkerSpec {
                        node,
                        name: format!("pfsck{i}"),
                        run: Box::new(move |c: &mut Ctx| {
                            let mut client = LfsClient::with_retry(retry);
                            expect_report(client.call(c, proc, LfsOp::Fsck { repair })?)
                        }),
                    }
                })
                .collect();
            run_workers(ctx, &opts.tool, specs)?
        }
    };
    let machine = match opts.server {
        Some(server) => Some(machine_pass(ctx, server, lfs, opts)?),
        None => None,
    };
    let repaired = reports.iter().map(|r| r.repaired).sum::<u32>()
        + machine.as_ref().map_or(0, |m| m.repaired);
    let verdict = FsckVerdict {
        repaired,
        elapsed: ctx.now().duration_since(t0),
        reports,
        machine,
    };
    if ctx.trace_enabled() {
        ctx.trace_span(
            "fsck",
            "fsck.pfsck",
            t0,
            &[
                ("instances", lfs.len() as u64),
                ("repaired", u64::from(verdict.repaired)),
                ("errors", verdict.errors().len() as u64),
                ("clean", u64::from(verdict.clean())),
            ],
        );
    }
    Ok(verdict)
}

/// The machine-wide pass: manifest from the server, one listing per
/// instance (pipelined), the pure [`machine_check`], and — under
/// `repair` — deletion of every orphaned column a logged decision
/// resolves. An instance that answers `NodeFailed` contributes an empty
/// listing: its columns are unknowable, not missing — so nothing it
/// holds is reported, and nothing on it is repaired.
fn machine_pass(
    ctx: &mut Ctx,
    server: ProcId,
    lfs: &[(ProcId, NodeId)],
    opts: &FsckOptions,
) -> Result<MachineReport, ToolError> {
    let mut bridge = BridgeClient::with_retry(server, opts.retry);
    let manifest = bridge
        .get_manifest(ctx)
        .map_err(|e| ToolError::Protocol(format!("get_manifest failed: {e}")))?;
    let mut client = LfsClient::with_retry(opts.retry);
    let ids: Vec<(ProcId, u64)> = lfs
        .iter()
        .map(|&(proc, _)| (proc, client.send(ctx, proc, LfsOp::ListFiles)))
        .collect();
    let mut listings = Vec::with_capacity(lfs.len());
    let mut down = vec![false; lfs.len()];
    for (i, (proc, id)) in ids.into_iter().enumerate() {
        match client.wait(ctx, proc, id) {
            Ok(LfsData::Files(files)) => listings.push(files),
            Ok(other) => {
                return Err(ToolError::Protocol(format!(
                    "unexpected ListFiles reply: {other:?}"
                )))
            }
            Err(bridge_efs::EfsError::NodeFailed) => {
                down[i] = true;
                listings.push(Vec::new());
            }
            Err(e) => return Err(ToolError::Lfs(e)),
        }
    }
    let mut findings = machine_check(&manifest, &listings);
    // A failed node's columns look "missing" against the manifest; drop
    // those findings — they are unknowable until the node returns.
    findings.retain(|f| match f {
        MachineFinding::MissingColumn { node, .. } => !down[*node as usize],
        _ => true,
    });
    let mut repaired = 0u32;
    if opts.repair {
        let mut kept = Vec::with_capacity(findings.len());
        for finding in findings {
            if let MachineFinding::OrphanColumn {
                node,
                lfs_file,
                resolvable: true,
            } = finding
            {
                match client.call(ctx, lfs[node as usize].0, LfsOp::Delete { file: lfs_file }) {
                    Ok(_) => {
                        repaired += 1;
                        continue;
                    }
                    // Gone already (raced with the server's own phase-2
                    // redo): resolved all the same.
                    Err(bridge_efs::EfsError::UnknownFile(_)) => {
                        repaired += 1;
                        continue;
                    }
                    // Died since the listing: leave the finding standing.
                    Err(bridge_efs::EfsError::NodeFailed) => {}
                    Err(e) => return Err(ToolError::Lfs(e)),
                }
            }
            kept.push(finding);
        }
        findings = kept;
    }
    Ok(MachineReport { findings, repaired })
}

fn expect_report(data: LfsData) -> Result<FsckReport, ToolError> {
    match data {
        LfsData::Fsck(report) => Ok(report),
        other => Err(ToolError::Protocol(format!(
            "unexpected fsck reply: {other:?}"
        ))),
    }
}
