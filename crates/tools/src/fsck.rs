//! pfsck — whole-machine consistency checking, one checker per LFS.
//!
//! A Bridge file is striped over every instance, so a "file system check"
//! is really `p` independent checks: each LFS audits its own directory,
//! chains, and allocator ([`Efs::fsck_timed`](bridge_efs::Efs)). pfsck is
//! the tool that runs them — in parallel, one worker per node, the same
//! move-the-computation shape as the copy and scan tools — and folds the
//! per-instance [`FsckReport`]s into a single machine-wide verdict. The
//! serial mode visits instances one at a time from the controller and
//! exists as the baseline the `fsck_speedup` bench measures against.
//!
//! With [`FsckOptions::server`] set, a fourth, *machine-wide* pass runs
//! after the per-instance checks: it fetches the Bridge Server's
//! directory manifest (plus the 2PC coordinator's logged decisions) and a
//! file listing from every instance, then cross-checks the two — a file
//! must exist on all of its placement nodes ([`MachineFinding::
//! MissingColumn`]) and nothing else may exist
//! ([`MachineFinding::OrphanColumn`]). Directory entries naming a node
//! index beyond the machine's breadth (a stale placement spec) are
//! *reported*, never chased ([`MachineFinding::NodeOutOfRange`]). Under
//! `repair`, an orphaned column whose fate a logged decision settles — a
//! committed delete or an aborted create that a dead-at-decision-time
//! node never heard about — is resolved the way the decision says:
//! the column is deleted.
//!
//! The machine-wide pass also runs a **redundancy audit** over every
//! mirrored or parity-protected file: each stripe's parity is recomputed
//! from its data blocks and checked against the stored parity block
//! ([`MachineFinding::StaleParity`]; `repair` rewrites it), mirror copies
//! are compared ([`MachineFinding::MirrorMismatch`]; `repair` rewrites
//! the mirror from the primary), and a *down* node's columns — unknowable
//! for a plain file — are instead reconstructed from the surviving group
//! members and counted in [`MachineReport::reconstructed`]; only blocks
//! no surviving member can recover are reported
//! ([`MachineFinding::UnrecoverableBlock`]).

use crate::error::ToolError;
use crate::options::ToolOptions;
use crate::toolkit::{run_workers, WorkerSpec};
use bridge_core::{
    xor_into, BridgeClient, BridgeFileId, LoggedDecision, MachineManifest, ManifestEntry,
    ParityLayout, Redundancy,
};
use bridge_efs::{
    FileInfo, FsckReport, LfsClient, LfsData, LfsFileId, LfsOp, PrepareIntent, RetryPolicy,
};
use bytes::Bytes;
use parsim::{Ctx, NodeId, ProcId, SimDuration};
use std::collections::BTreeSet;

/// How pfsck visits the instances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsckMode {
    /// One checking worker per LFS node, all instances audited
    /// concurrently — the tool's point.
    #[default]
    Parallel,
    /// The controller checks instances one at a time: the serial baseline
    /// the parallel speedup is measured against.
    Serial,
}

/// pfsck tuning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FsckOptions {
    /// Repair what can be repaired (truncate torn tails, drop dangling
    /// entries, rebuild the allocator); `false` is check-only.
    pub repair: bool,
    /// Parallel or serial visit order.
    pub mode: FsckMode,
    /// Worker startup topology and costs (parallel mode).
    pub tool: ToolOptions,
    /// Retry policy for the per-instance Fsck calls. The default
    /// ([`RetryPolicy::none`]) waits indefinitely; checks run against a
    /// machine with crash faults armed should use
    /// [`RetryPolicy::standard`] so a kill mid-check is ridden out.
    pub retry: RetryPolicy,
    /// The Bridge Server, enabling the machine-wide cross-check pass
    /// (directory manifest vs per-instance listings, orphans resolved by
    /// the coordinator's logged decisions). `None` (the default) runs the
    /// per-instance passes only — the pre-2PC behaviour.
    pub server: Option<ProcId>,
}

/// One inconsistency found by the machine-wide pass: the server's
/// directory and the instances' actual holdings disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineFinding {
    /// The directory places `file` on `node`, but the instance holds no
    /// column named `lfs_file`. Not repaired by pfsck: a redundant file's
    /// column is rebuilt by the server's `Rebuild` command, and a
    /// non-redundant one is data loss to surface, not paper over.
    MissingColumn {
        /// The Bridge file missing a column.
        file: BridgeFileId,
        /// The machine index of the instance that should hold it.
        node: u32,
        /// The column's local name there.
        lfs_file: LfsFileId,
    },
    /// The instance holds a column no directory entry accounts for.
    /// Repairable when a logged 2PC decision settles its fate (a
    /// committed delete or an aborted create the node never applied):
    /// the column is deleted, finishing the decision's phase 2.
    OrphanColumn {
        /// The machine index of the instance holding the stray column.
        node: u32,
        /// The stray column's local name.
        lfs_file: LfsFileId,
        /// Whether a logged decision covers (and so can resolve) it.
        resolvable: bool,
    },
    /// The directory entry for `file` names a placement node that does
    /// not exist on this machine — a stale placement spec from a
    /// different breadth. Reported, never dereferenced.
    NodeOutOfRange {
        /// The file with the stale placement.
        file: BridgeFileId,
        /// The out-of-range machine index its entry names.
        node: u32,
        /// The machine's actual breadth.
        breadth: u32,
    },
    /// The parity audit recomputed a stripe's parity from its data blocks
    /// and the stored parity block disagrees. Repairable: under `repair`
    /// the recomputed parity is rewritten.
    StaleParity {
        /// The parity-protected file.
        file: BridgeFileId,
        /// The inconsistent stripe.
        stripe: u64,
        /// The machine index holding the stripe's parity block.
        node: u32,
    },
    /// A mirrored block whose two copies are both readable but disagree.
    /// Repairable: under `repair` the mirror is rewritten from the
    /// primary.
    MirrorMismatch {
        /// The mirrored file.
        file: BridgeFileId,
        /// The disagreeing global block.
        block: u64,
        /// The machine index holding the mirror copy.
        node: u32,
    },
    /// A block of a redundant file that the surviving group members
    /// cannot reconstruct — more than one column of its stripe (or both
    /// mirror copies) is unavailable. Data loss to surface, not repair.
    UnrecoverableBlock {
        /// The redundant file.
        file: BridgeFileId,
        /// The unreconstructable global block.
        block: u64,
    },
}

impl MachineFinding {
    /// Human-readable description, matching the per-instance error style.
    pub fn describe(&self) -> String {
        match self {
            MachineFinding::MissingColumn {
                file,
                node,
                lfs_file,
            } => format!("file {file:?}: column {lfs_file:?} missing on node {node}"),
            MachineFinding::OrphanColumn {
                node,
                lfs_file,
                resolvable,
            } => format!(
                "node {node}: orphan column {lfs_file:?} ({})",
                if *resolvable {
                    "resolvable by logged decision"
                } else {
                    "no logged decision covers it"
                }
            ),
            MachineFinding::NodeOutOfRange {
                file,
                node,
                breadth,
            } => format!(
                "file {file:?}: directory names node {node} but machine breadth is {breadth}"
            ),
            MachineFinding::StaleParity { file, stripe, node } => {
                format!("file {file:?}: stripe {stripe} parity on node {node} is stale")
            }
            MachineFinding::MirrorMismatch { file, block, node } => {
                format!("file {file:?}: block {block} mirror on node {node} disagrees")
            }
            MachineFinding::UnrecoverableBlock { file, block } => {
                format!("file {file:?}: block {block} is unreconstructable")
            }
        }
    }
}

/// The outcome of the machine-wide cross-check pass.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MachineReport {
    /// Every disagreement between the directory and the instances.
    pub findings: Vec<MachineFinding>,
    /// Orphaned columns resolved (deleted) and stale parity/mirror blocks
    /// rewritten under `repair`.
    pub repaired: u32,
    /// Blocks on unavailable columns that the redundancy audit
    /// reconstructed and verified from the surviving group members
    /// (instead of writing the whole column off as unknowable).
    pub reconstructed: u64,
}

/// The machine-wide outcome of a pfsck run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckVerdict {
    /// Per-instance reports, by LFS ordinal.
    pub reports: Vec<FsckReport>,
    /// The machine-wide pass, when [`FsckOptions::server`] was given.
    pub machine: Option<MachineReport>,
    /// Total inconsistencies repaired across all instances (machine-wide
    /// resolutions included).
    pub repaired: u32,
    /// Virtual time the whole check took.
    pub elapsed: SimDuration,
}

impl FsckVerdict {
    /// True when no instance — and the machine-wide pass, if it ran —
    /// found any inconsistency.
    pub fn clean(&self) -> bool {
        self.reports.iter().all(|r| r.errors.is_empty())
            && self.machine.as_ref().is_none_or(|m| m.findings.is_empty())
    }

    /// Every inconsistency message, prefixed with its LFS ordinal (or
    /// `machine:` for the cross-check pass).
    pub fn errors(&self) -> Vec<String> {
        self.reports
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.errors.iter().map(move |e| format!("lfs{i}: {e}")))
            .chain(self.machine.iter().flat_map(|m| {
                m.findings
                    .iter()
                    .map(|f| format!("machine: {}", f.describe()))
            }))
            .collect()
    }
}

/// The pure cross-check at the heart of the machine-wide pass: the
/// server's `manifest` against one [`FileInfo`] listing per instance
/// (`listings[i]` is machine index `i`). Findings are ordered: stale
/// placements first, then missing columns in manifest order, then orphans
/// in (node, file) order.
pub fn machine_check(
    manifest: &MachineManifest,
    listings: &[Vec<FileInfo>],
) -> Vec<MachineFinding> {
    let breadth = listings.len() as u32;
    let mut findings = Vec::new();
    // What each instance *should* hold, per the directory.
    let mut expected: Vec<BTreeSet<LfsFileId>> = vec![BTreeSet::new(); listings.len()];
    for entry in &manifest.files {
        for &node in &entry.nodes {
            if node >= breadth {
                findings.push(MachineFinding::NodeOutOfRange {
                    file: entry.file,
                    node,
                    breadth,
                });
                continue;
            }
            expected[node as usize].insert(entry.lfs_file);
            if let Some(companion) = entry.companion {
                expected[node as usize].insert(companion);
            }
        }
    }
    for entry in &manifest.files {
        for &node in &entry.nodes {
            if node >= breadth {
                continue;
            }
            // Only the primary column is load-bearing here: a redundant
            // file's companion may legitimately lag (an empty mirror
            // column is tolerated even by Delete).
            if !listings[node as usize]
                .iter()
                .any(|f| f.file == entry.lfs_file)
            {
                findings.push(MachineFinding::MissingColumn {
                    file: entry.file,
                    node,
                    lfs_file: entry.lfs_file,
                });
            }
        }
    }
    for (node, listing) in listings.iter().enumerate() {
        let mut strays: Vec<LfsFileId> = listing
            .iter()
            .map(|f| f.file)
            .filter(|f| !expected[node].contains(f))
            .collect();
        strays.sort();
        for lfs_file in strays {
            findings.push(MachineFinding::OrphanColumn {
                node: node as u32,
                lfs_file,
                resolvable: decision_resolves(&manifest.decisions, node as u32, lfs_file),
            });
        }
    }
    findings
}

/// Whether the decision log settles the fate of a stray column: the
/// *latest* logged decision touching (`node`, `lfs_file`) must be one
/// whose outcome is "this column should not exist" — a committed delete,
/// or an aborted (presumed or explicit) create.
fn decision_resolves(decisions: &[LoggedDecision], node: u32, lfs_file: LfsFileId) -> bool {
    decisions
        .iter()
        .rev()
        .find_map(|d| {
            d.participants
                .iter()
                .find(|p| p.node == node && p.intent.files().contains(&lfs_file))
                .and_then(|p| match &p.intent {
                    PrepareIntent::DeleteFiles(_) => Some(d.committed),
                    PrepareIntent::CreateFiles(_) => Some(!d.committed),
                    // A write neither creates nor deletes its column, so
                    // it settles nothing; keep scanning earlier decisions.
                    PrepareIntent::WriteBlock { .. } => None,
                })
        })
        .unwrap_or(false)
}

/// Checks (and with [`FsckOptions::repair`], repairs) every LFS instance
/// of a machine. `lfs` pairs each instance's server process with the node
/// it runs on, by LFS ordinal — zip a
/// [`BridgeMachine`](bridge_core::BridgeMachine)'s `lfs` and `lfs_nodes`.
///
/// Emits a `fsck.pfsck` span covering the whole run; each instance's
/// passes emit their own `fsck.*` spans server-side.
///
/// # Errors
///
/// Propagates LFS errors and worker protocol failures.
pub fn pfsck(
    ctx: &mut Ctx,
    lfs: &[(ProcId, NodeId)],
    opts: &FsckOptions,
) -> Result<FsckVerdict, ToolError> {
    let t0 = ctx.now();
    let repair = opts.repair;
    // A failed instance answers `NodeFailed` to everything, its own Fsck
    // included. Its local state is unknowable — contribute an empty
    // report and let the machine-wide pass decide what that means: a
    // redundant file's columns there are reconstructed from the group's
    // survivors; a plain file's are simply not reportable yet.
    let instance_report = |r: Result<LfsData, bridge_efs::EfsError>| match r {
        Ok(data) => expect_report(data),
        Err(bridge_efs::EfsError::NodeFailed) => Ok(FsckReport::default()),
        Err(e) => Err(ToolError::Lfs(e)),
    };
    let reports = match opts.mode {
        FsckMode::Serial => {
            let mut client = LfsClient::with_retry(opts.retry);
            let mut reports = Vec::with_capacity(lfs.len());
            for &(proc, _) in lfs {
                reports.push(instance_report(client.call(
                    ctx,
                    proc,
                    LfsOp::Fsck { repair },
                ))?);
            }
            reports
        }
        FsckMode::Parallel => {
            let specs: Vec<WorkerSpec<FsckReport>> = lfs
                .iter()
                .enumerate()
                .map(|(i, &(proc, node))| {
                    let retry = opts.retry;
                    WorkerSpec {
                        node,
                        name: format!("pfsck{i}"),
                        run: Box::new(move |c: &mut Ctx| {
                            let mut client = LfsClient::with_retry(retry);
                            match client.call(c, proc, LfsOp::Fsck { repair }) {
                                Ok(data) => expect_report(data),
                                Err(bridge_efs::EfsError::NodeFailed) => Ok(FsckReport::default()),
                                Err(e) => Err(ToolError::Lfs(e)),
                            }
                        }),
                    }
                })
                .collect();
            run_workers(ctx, &opts.tool, specs)?
        }
    };
    let machine = match opts.server {
        Some(server) => Some(machine_pass(ctx, server, lfs, opts)?),
        None => None,
    };
    let repaired = reports.iter().map(|r| r.repaired).sum::<u32>()
        + machine.as_ref().map_or(0, |m| m.repaired);
    let verdict = FsckVerdict {
        repaired,
        elapsed: ctx.now().duration_since(t0),
        reports,
        machine,
    };
    if ctx.trace_enabled() {
        ctx.trace_span(
            "fsck",
            "fsck.pfsck",
            t0,
            &[
                ("instances", lfs.len() as u64),
                ("repaired", u64::from(verdict.repaired)),
                ("errors", verdict.errors().len() as u64),
                ("clean", u64::from(verdict.clean())),
            ],
        );
    }
    Ok(verdict)
}

/// The machine-wide pass: manifest from the server, one listing per
/// instance (pipelined), the pure [`machine_check`], and — under
/// `repair` — deletion of every orphaned column a logged decision
/// resolves. An instance that answers `NodeFailed` contributes an empty
/// listing: its columns are unknowable, not missing — so nothing it
/// holds is reported, and nothing on it is repaired.
fn machine_pass(
    ctx: &mut Ctx,
    server: ProcId,
    lfs: &[(ProcId, NodeId)],
    opts: &FsckOptions,
) -> Result<MachineReport, ToolError> {
    let mut bridge = BridgeClient::with_retry(server, opts.retry);
    let manifest = bridge
        .get_manifest(ctx)
        .map_err(|e| ToolError::Protocol(format!("get_manifest failed: {e}")))?;
    let mut client = LfsClient::with_retry(opts.retry);
    let ids: Vec<(ProcId, u64)> = lfs
        .iter()
        .map(|&(proc, _)| (proc, client.send(ctx, proc, LfsOp::ListFiles)))
        .collect();
    let mut listings = Vec::with_capacity(lfs.len());
    let mut down = vec![false; lfs.len()];
    for (i, (proc, id)) in ids.into_iter().enumerate() {
        match client.wait(ctx, proc, id) {
            Ok(LfsData::Files(files)) => listings.push(files),
            Ok(other) => {
                return Err(ToolError::Protocol(format!(
                    "unexpected ListFiles reply: {other:?}"
                )))
            }
            Err(bridge_efs::EfsError::NodeFailed) => {
                down[i] = true;
                listings.push(Vec::new());
            }
            Err(e) => return Err(ToolError::Lfs(e)),
        }
    }
    let mut findings = machine_check(&manifest, &listings);
    // A failed node's columns look "missing" against the manifest. For a
    // file without redundancy they are unknowable until the node returns,
    // so those findings are dropped; a *redundant* file's columns are not
    // withheld — the audit below reconstructs them from the surviving
    // group members and reports only what really cannot be recovered.
    let redundant: BTreeSet<BridgeFileId> = manifest
        .files
        .iter()
        .filter(|e| e.redundancy != Redundancy::None)
        .map(|e| e.file)
        .collect();
    findings.retain(|f| match f {
        MachineFinding::MissingColumn { node, file, .. } => {
            !down[*node as usize] && !redundant.contains(file)
        }
        _ => true,
    });
    let mut repaired = 0u32;
    if opts.repair {
        let mut kept = Vec::with_capacity(findings.len());
        for finding in findings {
            if let MachineFinding::OrphanColumn {
                node,
                lfs_file,
                resolvable: true,
            } = finding
            {
                match client.call(ctx, lfs[node as usize].0, LfsOp::Delete { file: lfs_file }) {
                    Ok(_) => {
                        repaired += 1;
                        continue;
                    }
                    // Gone already (raced with the server's own phase-2
                    // redo): resolved all the same.
                    Err(bridge_efs::EfsError::UnknownFile(_)) => {
                        repaired += 1;
                        continue;
                    }
                    // Died since the listing: leave the finding standing.
                    Err(bridge_efs::EfsError::NodeFailed) => {}
                    Err(e) => return Err(ToolError::Lfs(e)),
                }
            }
            kept.push(finding);
        }
        findings = kept;
    }
    let mut reconstructed = 0u64;
    for entry in &manifest.files {
        if entry.redundancy == Redundancy::None
            || entry.size == 0
            || entry.nodes.iter().any(|&n| n as usize >= lfs.len())
        {
            continue;
        }
        let audit = audit_entry(ctx, &mut client, lfs, &down, entry, opts.repair)?;
        findings.extend(audit.findings);
        repaired += audit.repaired;
        reconstructed += audit.reconstructed;
    }
    Ok(MachineReport {
        findings,
        repaired,
        reconstructed,
    })
}

/// One manifest entry's worth of redundancy auditing.
struct EntryAudit {
    findings: Vec<MachineFinding>,
    repaired: u32,
    reconstructed: u64,
}

/// Reads one local block's payload; `Ok(None)` means the column is
/// unavailable (its node failed, or the instance no longer holds the
/// file) — the degraded case the audit reconstructs through.
fn read_payload(
    ctx: &mut Ctx,
    client: &mut LfsClient,
    proc: ProcId,
    file: LfsFileId,
    block: u32,
) -> Result<Option<Bytes>, ToolError> {
    match client.call(
        ctx,
        proc,
        LfsOp::Read {
            file,
            block,
            hint: None,
        },
    ) {
        Ok(LfsData::Block { data, .. }) => Ok(Some(data)),
        Ok(other) => Err(ToolError::Protocol(format!(
            "unexpected Read reply: {other:?}"
        ))),
        Err(bridge_efs::EfsError::NodeFailed) | Err(bridge_efs::EfsError::UnknownFile(_)) => {
            Ok(None)
        }
        Err(e) => Err(ToolError::Lfs(e)),
    }
}

/// Rewrites one local block; `Ok(false)` when the target column is
/// unavailable (the repair stands as a finding until the node returns).
fn write_payload(
    ctx: &mut Ctx,
    client: &mut LfsClient,
    proc: ProcId,
    file: LfsFileId,
    block: u32,
    data: Bytes,
) -> Result<bool, ToolError> {
    match client.call(
        ctx,
        proc,
        LfsOp::Write {
            file,
            block,
            data,
            hint: None,
        },
    ) {
        Ok(_) => Ok(true),
        Err(bridge_efs::EfsError::NodeFailed) | Err(bridge_efs::EfsError::UnknownFile(_)) => {
            Ok(false)
        }
        Err(e) => Err(ToolError::Lfs(e)),
    }
}

/// The redundancy audit for one manifest entry.
///
/// * **Mirror** — every global block's two copies are read; disagreeing
///   copies are a [`MachineFinding::MirrorMismatch`] (repair rewrites the
///   mirror from the primary), one unavailable copy counts as a verified
///   reconstruction, two is an [`MachineFinding::UnrecoverableBlock`].
/// * **Parity** — every stripe's parity is recomputed from its data
///   blocks: with all members present a mismatch is a
///   [`MachineFinding::StaleParity`] (repair rewrites the parity block);
///   with exactly one member unavailable the stripe reconstructs the
///   missing column from the survivors; with more than one its data
///   blocks are unrecoverable.
fn audit_entry(
    ctx: &mut Ctx,
    client: &mut LfsClient,
    lfs: &[(ProcId, NodeId)],
    down: &[bool],
    entry: &ManifestEntry,
    repair: bool,
) -> Result<EntryAudit, ToolError> {
    let mut audit = EntryAudit {
        findings: Vec::new(),
        repaired: 0,
        reconstructed: 0,
    };
    let breadth = entry.nodes.len() as u32;
    let companion = entry
        .companion
        .expect("redundant files always have a companion");
    // Reads a column's payload unless its node is already known down
    // (skipping the call keeps the audit from burning the retry budget on
    // a node the listing round has already sentenced).
    let column = |ctx: &mut Ctx,
                  client: &mut LfsClient,
                  pos: u32,
                  file: LfsFileId,
                  local: u32|
     -> Result<Option<Bytes>, ToolError> {
        let node = entry.nodes[pos as usize] as usize;
        if down[node] {
            return Ok(None);
        }
        read_payload(ctx, client, lfs[node].0, file, local)
    };
    match entry.redundancy {
        Redundancy::None => {}
        Redundancy::Mirror => {
            for block in 0..entry.size {
                let pos = ((block + u64::from(entry.start)) % u64::from(breadth)) as u32;
                let local = (block / u64::from(breadth)) as u32;
                let mpos = (pos + 1) % breadth;
                let primary = column(ctx, client, pos, entry.lfs_file, local)?;
                let mirror = column(ctx, client, mpos, companion, local)?;
                match (primary, mirror) {
                    (Some(p), Some(m)) => {
                        if p != m {
                            let node = entry.nodes[mpos as usize];
                            let fixed = repair
                                && write_payload(
                                    ctx,
                                    client,
                                    lfs[node as usize].0,
                                    companion,
                                    local,
                                    p,
                                )?;
                            if fixed {
                                audit.repaired += 1;
                            } else {
                                audit.findings.push(MachineFinding::MirrorMismatch {
                                    file: entry.file,
                                    block,
                                    node,
                                });
                            }
                        }
                    }
                    (Some(_), None) | (None, Some(_)) => audit.reconstructed += 1,
                    (None, None) => audit.findings.push(MachineFinding::UnrecoverableBlock {
                        file: entry.file,
                        block,
                    }),
                }
            }
        }
        Redundancy::Parity { group } => {
            let layout = ParityLayout::grouped(breadth, group);
            let width = layout.stripe_width();
            for stripe in 0..entry.size.div_ceil(width) {
                let lo = stripe * width;
                let hi = ((stripe + 1) * width).min(entry.size);
                let mut lost_data: Vec<u64> = Vec::new();
                let mut acc: Vec<u8> = Vec::new();
                for block in lo..hi {
                    let ptr = layout.locate(block);
                    match column(ctx, client, ptr.lfs.0, entry.lfs_file, ptr.local)? {
                        Some(p) => xor_into(&mut acc, &p),
                        None => lost_data.push(block),
                    }
                }
                let ppos = layout.parity_position(stripe);
                let plocal = layout.parity_local(stripe);
                let parity = column(ctx, client, ppos, companion, plocal)?;
                let lost = lost_data.len() + usize::from(parity.is_none());
                match (lost, parity) {
                    (0, Some(stored)) => {
                        acc.resize(stored.len(), 0);
                        if acc != stored {
                            let node = entry.nodes[ppos as usize];
                            let fixed = repair
                                && write_payload(
                                    ctx,
                                    client,
                                    lfs[node as usize].0,
                                    companion,
                                    plocal,
                                    Bytes::from(acc),
                                )?;
                            if fixed {
                                audit.repaired += 1;
                            } else {
                                audit.findings.push(MachineFinding::StaleParity {
                                    file: entry.file,
                                    stripe,
                                    node,
                                });
                            }
                        }
                    }
                    // Exactly one member gone: the survivors XOR back to
                    // the missing column — reconstructed and verified.
                    (1, _) => audit.reconstructed += 1,
                    (_, _) => {
                        for block in lost_data {
                            audit.findings.push(MachineFinding::UnrecoverableBlock {
                                file: entry.file,
                                block,
                            });
                        }
                    }
                }
            }
        }
    }
    Ok(audit)
}

fn expect_report(data: LfsData) -> Result<FsckReport, ToolError> {
    match data {
        LfsData::Fsck(report) => Ok(report),
        other => Err(ToolError::Protocol(format!(
            "unexpected fsck reply: {other:?}"
        ))),
    }
}
