//! The copy tool and its one-to-one filter family (paper §5.1).
//!
//! "If the copy program is written as a Bridge tool, files can be copied in
//! time O(n/p + log(p)) with p-way interleaving. … The while loop in ecopy
//! could contain any transformation on the blocks of data that preserves
//! their number and order" — character translation, encryption, lexical
//! analysis on fixed-length lines. `copy_with` is exactly that loop with a
//! pluggable transformation.

use crate::column::{ColumnReader, ColumnWriter};
use crate::error::ToolError;
use crate::options::ToolOptions;
use crate::toolkit::{run_workers, WorkerSpec};
use bridge_core::{
    BridgeClient, BridgeError, BridgeFileId, CreateSpec, PlacementKind, PlacementSpec,
};
use bridge_efs::LfsClient;
use parsim::{Ctx, SimDuration};
use std::sync::Arc;

/// A transformation applied in place to each block's 960 data bytes.
pub type BlockTransform = Arc<dyn Fn(&mut [u8]) + Send + Sync>;

/// Ready-made one-to-one filters.
pub mod transforms {
    use super::BlockTransform;
    use std::sync::Arc;

    /// The plain copy: leave every byte alone.
    pub fn identity() -> BlockTransform {
        Arc::new(|_| {})
    }

    /// Byte-for-byte character translation through a 256-entry table.
    pub fn translate(table: [u8; 256]) -> BlockTransform {
        Arc::new(move |data| {
            for b in data {
                *b = table[*b as usize];
            }
        })
    }

    /// ROT13 over ASCII letters (a classic translation filter).
    pub fn rot13() -> BlockTransform {
        let mut table = [0u8; 256];
        for (i, t) in table.iter_mut().enumerate() {
            let b = i as u8;
            *t = match b {
                b'a'..=b'z' => (b - b'a' + 13) % 26 + b'a',
                b'A'..=b'Z' => (b - b'A' + 13) % 26 + b'A',
                _ => b,
            };
        }
        translate(table)
    }

    /// XOR stream "encryption" with a repeating key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is empty.
    pub fn xor_cipher(key: Vec<u8>) -> BlockTransform {
        assert!(!key.is_empty(), "cipher key must be non-empty");
        Arc::new(move |data| {
            for (i, b) in data.iter_mut().enumerate() {
                *b ^= key[i % key.len()];
            }
        })
    }

    /// Lexical analysis on fixed-length lines: every byte of each
    /// `line_len`-byte line is replaced by a character-class code
    /// (`A` alpha, `0` digit, `_` space, `.` punctuation), a block-parallel
    /// tokenizer in the spirit of the paper's "lexical analysis on
    /// fixed-length lines".
    ///
    /// # Panics
    ///
    /// Panics if `line_len` is zero.
    pub fn lex_classes(line_len: usize) -> BlockTransform {
        assert!(line_len > 0, "line length must be positive");
        Arc::new(move |data| {
            for line in data.chunks_mut(line_len) {
                for b in line {
                    *b = match *b {
                        b'a'..=b'z' | b'A'..=b'Z' => b'A',
                        b'0'..=b'9' => b'0',
                        b' ' | b'\t' => b'_',
                        _ => b'.',
                    };
                }
            }
        })
    }
}

/// What a copy accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyStats {
    /// Global blocks copied.
    pub blocks: u64,
    /// Virtual time from first server contact to completion.
    pub elapsed: SimDuration,
}

/// Copies `src` into a fresh file with identical placement, using one
/// `ecopy` worker per LFS node. Returns the new file and stats.
///
/// # Errors
///
/// Propagates server and LFS errors; linked (disordered) files are not
/// supported (their chain endpoints live in the server's directory and
/// cannot be rebuilt from a column-wise copy).
pub fn copy(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    src: BridgeFileId,
    opts: &ToolOptions,
) -> Result<(BridgeFileId, CopyStats), ToolError> {
    copy_with(ctx, bridge, src, transforms::identity(), opts)
}

/// [`copy`] with a transformation applied to every block's data — "any
/// one-to-one filter will display the same behavior".
///
/// # Errors
///
/// See [`copy`].
pub fn copy_with(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    src: BridgeFileId,
    transform: BlockTransform,
    opts: &ToolOptions,
) -> Result<(BridgeFileId, CopyStats), ToolError> {
    let t0 = ctx.now();
    // (1) the brief phase of communication with the Bridge Server.
    let open = bridge.open(ctx, src)?;
    let placement = match open.placement {
        PlacementKind::RoundRobin { start } => PlacementSpec::RoundRobinAt { start },
        PlacementKind::Hashed { seed } => PlacementSpec::Hashed { seed },
        PlacementKind::Chunked { .. } => {
            // Chunked needs its size hint recomputed; handled separately.
            let breadth = open.nodes.len() as u64;
            return copy_chunked(ctx, bridge, open, transform, opts, t0, breadth);
        }
        PlacementKind::Linked => {
            return Err(ToolError::Bridge(BridgeError::LinkedUnsupported {
                op: "copy tool",
            }))
        }
    };
    let nodes: Vec<u32> = open.nodes.iter().map(|s| s.index.0).collect();
    let dst = bridge.create(
        ctx,
        CreateSpec {
            placement,
            nodes: Some(nodes),
            size_hint: Some(open.size),
            redundancy: open.redundancy,
        },
    )?;
    run_ecopy(ctx, bridge, open, dst, transform, opts, t0)
}

fn copy_chunked(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    open: bridge_core::OpenInfo,
    transform: BlockTransform,
    opts: &ToolOptions,
    t0: parsim::SimTime,
    breadth: u64,
) -> Result<(BridgeFileId, CopyStats), ToolError> {
    let PlacementKind::Chunked { blocks_per_chunk } = open.placement else {
        unreachable!("caller checked");
    };
    let nodes: Vec<u32> = open.nodes.iter().map(|s| s.index.0).collect();
    let dst = bridge.create(
        ctx,
        CreateSpec {
            placement: PlacementSpec::Chunked,
            nodes: Some(nodes),
            // The server derives blocks_per_chunk = ceil(hint / breadth);
            // this hint reproduces the source's chunk size exactly.
            size_hint: Some(u64::from(blocks_per_chunk) * breadth),
            redundancy: open.redundancy,
        },
    )?;
    run_ecopy(ctx, bridge, open, dst, transform, opts, t0)
}

fn run_ecopy(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    open: bridge_core::OpenInfo,
    dst: BridgeFileId,
    transform: BlockTransform,
    opts: &ToolOptions,
    t0: parsim::SimTime,
) -> Result<(BridgeFileId, CopyStats), ToolError> {
    let dst_open = bridge.open(ctx, dst)?;
    let batch = opts.batch;

    // (2) create subprocesses on all the LFS nodes; (3) they stream their
    // columns locally.
    let specs: Vec<WorkerSpec<u32>> = open
        .nodes
        .iter()
        .zip(dst_open.nodes.iter())
        .enumerate()
        .map(|(i, (src_slice, dst_slice))| {
            debug_assert_eq!(src_slice.index, dst_slice.index);
            let src_proc = src_slice.proc;
            let dst_proc = dst_slice.proc;
            let src_file = open.lfs_file;
            let dst_file = dst_open.lfs_file;
            let local_size = src_slice.local_size;
            let transform = Arc::clone(&transform);
            WorkerSpec {
                node: src_slice.node,
                name: format!("ecopy{i}"),
                run: Box::new(move |c: &mut Ctx| {
                    let worker_t0 = c.now();
                    let mut client = LfsClient::new();
                    let mut reader =
                        ColumnReader::new(src_proc, src_file, local_size).with_batch(batch);
                    let mut writer = ColumnWriter::new(dst_proc, dst_file, 0).with_batch(batch);
                    while let Some((mut header, data)) = reader.next_block(c, &mut client)? {
                        // "The copy tool ignores the Bridge headers in the
                        // file it is copying. Since all the header pointers
                        // are block-number/LFS-instance pairs, the pointers
                        // are still valid in the new file." Our headers also
                        // name the owning file (for integrity checks), so
                        // ecopy relabels that one field.
                        header.file = dst;
                        let mut data = data.to_vec();
                        transform(&mut data);
                        writer.append_block(c, &mut client, &header, &data)?;
                    }
                    writer.flush(c, &mut client)?;
                    if c.trace_enabled() {
                        c.trace_span(
                            "tool",
                            "tool.ecopy",
                            worker_t0,
                            &[("blocks", u64::from(writer.position()))],
                        );
                    }
                    Ok(writer.position())
                }),
            }
        })
        .collect();
    let per_node = run_workers(ctx, opts, specs)?;
    let blocks: u64 = per_node.iter().map(|&n| u64::from(n)).sum();

    // Refresh the server's view of the destination (tools grew it behind
    // the server's back).
    bridge.open(ctx, dst)?;
    // Tools write data columns directly, so a redundant destination's
    // mirror/parity companions are derived afterwards by the server.
    if open.redundancy != bridge_core::Redundancy::None {
        bridge.rebuild(ctx, dst)?;
    }
    if ctx.trace_enabled() {
        ctx.trace_span("tool", "tool.copy", t0, &[("blocks", blocks)]);
    }
    Ok((
        dst,
        CopyStats {
            blocks,
            elapsed: ctx.now() - t0,
        },
    ))
}
