//! Streaming one *column* of an interleaved file — the portion held by a
//! single LFS — with hint chaining, the access pattern at the heart of
//! every tool: "a lengthy series of interactions between the subprocesses
//! and the instances of LFS".
//!
//! With [`BatchPolicy::Runs`] both directions run-batch: the reader
//! prefetches up to `depth` consecutive local blocks per
//! [`LfsOp::ReadRun`] and the writer buffers appends until it can issue
//! one [`LfsOp::WriteRun`], turning `depth` request/reply pairs into one.
//! [`BatchPolicy::Off`] keeps the block-at-a-time protocol of the paper.

use crate::error::ToolError;
use bridge_core::{decode_payload, encode_payload, BatchPolicy, BridgeHeader};
use bridge_efs::{LfsClient, LfsData, LfsFileId, LfsOp};
use bytes::Bytes;
use parsim::{Ctx, ProcId};
use simdisk::BlockAddr;
use std::collections::VecDeque;

/// Sequentially reads the local blocks of one constituent LFS file.
#[derive(Debug)]
pub struct ColumnReader {
    lfs: ProcId,
    file: LfsFileId,
    size: u32,
    next: u32,
    hint: Option<BlockAddr>,
    depth: u32,
    prefetched: VecDeque<Bytes>,
}

impl ColumnReader {
    /// A reader over `size` local blocks of `file` on the LFS server `lfs`.
    pub fn new(lfs: ProcId, file: LfsFileId, size: u32) -> Self {
        ColumnReader {
            lfs,
            file,
            size,
            next: 0,
            hint: None,
            depth: 1,
            prefetched: VecDeque::new(),
        }
    }

    /// Enables run prefetching per `batch` (builder style).
    #[must_use]
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.depth = batch.depth();
        self
    }

    /// Local blocks remaining.
    pub fn remaining(&self) -> u32 {
        self.size - self.next
    }

    /// Reads the next local block's raw 1000-byte EFS payload, or `None`
    /// at the end of the column.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn next_raw(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
    ) -> Result<Option<Bytes>, ToolError> {
        if let Some(payload) = self.prefetched.pop_front() {
            self.next += 1;
            return Ok(Some(payload));
        }
        if self.next >= self.size {
            return Ok(None);
        }
        if self.depth > 1 {
            let count = self.depth.min(self.size - self.next);
            let t0 = ctx.now();
            let reply = client.call(
                ctx,
                self.lfs,
                LfsOp::ReadRun {
                    file: self.file,
                    first: self.next,
                    count,
                    hint: self.hint,
                },
            )?;
            if ctx.trace_enabled() {
                ctx.trace_span(
                    "tool",
                    "tool.read_batch",
                    t0,
                    &[("blocks", u64::from(count))],
                );
            }
            return match reply {
                LfsData::Run { blocks } if blocks.len() == count as usize => {
                    self.hint = blocks.last().map(|b| b.1);
                    self.prefetched = blocks.into_iter().map(|(data, _)| data).collect();
                    self.next += 1;
                    Ok(self.prefetched.pop_front())
                }
                other => Err(ToolError::Protocol(format!(
                    "unexpected LFS run reply {other:?}"
                ))),
            };
        }
        let reply = client.call(
            ctx,
            self.lfs,
            LfsOp::Read {
                file: self.file,
                block: self.next,
                hint: self.hint,
            },
        )?;
        match reply {
            LfsData::Block { data, addr } => {
                self.hint = Some(addr);
                self.next += 1;
                Ok(Some(data))
            }
            other => Err(ToolError::Protocol(format!(
                "unexpected LFS reply {other:?}"
            ))),
        }
    }

    /// Reads and decodes the next Bridge block: `(header, 960-byte data)`.
    /// The data is a zero-copy slice of the block's payload.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors; [`ToolError::Bridge`] on a corrupt header.
    pub fn next_block(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
    ) -> Result<Option<(BridgeHeader, Bytes)>, ToolError> {
        match self.next_raw(ctx, client)? {
            None => Ok(None),
            Some(payload) => {
                let (header, data) = decode_payload(&payload).map_err(ToolError::Bridge)?;
                Ok(Some((header, data)))
            }
        }
    }
}

/// Appends local blocks to one constituent LFS file.
///
/// Under [`BatchPolicy::Runs`] appends are buffered and shipped as
/// [`LfsOp::WriteRun`]s; call [`ColumnWriter::flush`] before relying on
/// the column's on-disk contents (readers, size reports).
#[derive(Debug)]
pub struct ColumnWriter {
    lfs: ProcId,
    file: LfsFileId,
    next: u32,
    hint: Option<BlockAddr>,
    depth: u32,
    pending: Vec<Bytes>,
}

impl ColumnWriter {
    /// A writer appending to `file` on `lfs`, starting at local block
    /// `start` (pass the current local size to append to an existing
    /// column).
    pub fn new(lfs: ProcId, file: LfsFileId, start: u32) -> Self {
        ColumnWriter {
            lfs,
            file,
            next: start,
            hint: None,
            depth: 1,
            pending: Vec::new(),
        }
    }

    /// Enables run write-behind per `batch` (builder style).
    #[must_use]
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.depth = batch.depth();
        self
    }

    /// Local blocks written so far through this writer (plus the starting
    /// offset), counting blocks still buffered for the next run.
    pub fn position(&self) -> u32 {
        self.next
    }

    /// Appends a raw 1000-byte EFS payload.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn append_raw(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
        payload: impl Into<Bytes>,
    ) -> Result<(), ToolError> {
        let payload = payload.into();
        if self.depth > 1 {
            self.pending.push(payload);
            self.next += 1;
            if self.pending.len() as u32 >= self.depth {
                self.flush(ctx, client)?;
            }
            return Ok(());
        }
        let reply = client.call(
            ctx,
            self.lfs,
            LfsOp::Write {
                file: self.file,
                block: self.next,
                data: payload,
                hint: self.hint,
            },
        )?;
        match reply {
            LfsData::Written { addr } => {
                self.hint = Some(addr);
                self.next += 1;
                Ok(())
            }
            other => Err(ToolError::Protocol(format!(
                "unexpected LFS reply {other:?}"
            ))),
        }
    }

    /// Ships any buffered appends as one [`LfsOp::WriteRun`]. A no-op when
    /// nothing is pending (in particular with batching off).
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn flush(&mut self, ctx: &mut Ctx, client: &mut LfsClient) -> Result<(), ToolError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let data = std::mem::take(&mut self.pending);
        let first = self.next - data.len() as u32;
        let blocks = data.len() as u64;
        let t0 = ctx.now();
        let reply = client.call(
            ctx,
            self.lfs,
            LfsOp::WriteRun {
                file: self.file,
                first,
                data,
                hint: self.hint,
            },
        )?;
        if ctx.trace_enabled() {
            ctx.trace_span("tool", "tool.write_batch", t0, &[("blocks", blocks)]);
        }
        match reply {
            LfsData::WrittenRun { addrs } => {
                self.hint = addrs.last().copied();
                Ok(())
            }
            other => Err(ToolError::Protocol(format!(
                "unexpected LFS run reply {other:?}"
            ))),
        }
    }

    /// Encodes and appends one Bridge block.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds 960 bytes.
    pub fn append_block(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
        header: &BridgeHeader,
        data: &[u8],
    ) -> Result<(), ToolError> {
        self.append_raw(ctx, client, encode_payload(header, data))
    }
}
