//! Streaming one *column* of an interleaved file — the portion held by a
//! single LFS — with hint chaining, the access pattern at the heart of
//! every tool: "a lengthy series of interactions between the subprocesses
//! and the instances of LFS".

use crate::error::ToolError;
use bridge_core::{decode_payload, encode_payload, BridgeHeader};
use bridge_efs::{LfsClient, LfsData, LfsFileId, LfsOp};
use parsim::{Ctx, ProcId};
use simdisk::BlockAddr;

/// Sequentially reads the local blocks of one constituent LFS file.
#[derive(Debug)]
pub struct ColumnReader {
    lfs: ProcId,
    file: LfsFileId,
    size: u32,
    next: u32,
    hint: Option<BlockAddr>,
}

impl ColumnReader {
    /// A reader over `size` local blocks of `file` on the LFS server `lfs`.
    pub fn new(lfs: ProcId, file: LfsFileId, size: u32) -> Self {
        ColumnReader {
            lfs,
            file,
            size,
            next: 0,
            hint: None,
        }
    }

    /// Local blocks remaining.
    pub fn remaining(&self) -> u32 {
        self.size - self.next
    }

    /// Reads the next local block's raw 1000-byte EFS payload, or `None`
    /// at the end of the column.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn next_raw(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
    ) -> Result<Option<Vec<u8>>, ToolError> {
        if self.next >= self.size {
            return Ok(None);
        }
        let reply = client.call(
            ctx,
            self.lfs,
            LfsOp::Read {
                file: self.file,
                block: self.next,
                hint: self.hint,
            },
        )?;
        match reply {
            LfsData::Block { data, addr } => {
                self.hint = Some(addr);
                self.next += 1;
                Ok(Some(data))
            }
            other => Err(ToolError::Protocol(format!("unexpected LFS reply {other:?}"))),
        }
    }

    /// Reads and decodes the next Bridge block: `(header, 960-byte data)`.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors; [`ToolError::Bridge`] on a corrupt header.
    pub fn next_block(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
    ) -> Result<Option<(BridgeHeader, Vec<u8>)>, ToolError> {
        match self.next_raw(ctx, client)? {
            None => Ok(None),
            Some(payload) => {
                let (header, data) = decode_payload(&payload).map_err(ToolError::Bridge)?;
                Ok(Some((header, data)))
            }
        }
    }
}

/// Appends local blocks to one constituent LFS file.
#[derive(Debug)]
pub struct ColumnWriter {
    lfs: ProcId,
    file: LfsFileId,
    next: u32,
    hint: Option<BlockAddr>,
}

impl ColumnWriter {
    /// A writer appending to `file` on `lfs`, starting at local block
    /// `start` (pass the current local size to append to an existing
    /// column).
    pub fn new(lfs: ProcId, file: LfsFileId, start: u32) -> Self {
        ColumnWriter {
            lfs,
            file,
            next: start,
            hint: None,
        }
    }

    /// Local blocks written so far through this writer (plus the starting
    /// offset).
    pub fn position(&self) -> u32 {
        self.next
    }

    /// Appends a raw 1000-byte EFS payload.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    pub fn append_raw(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
        payload: Vec<u8>,
    ) -> Result<(), ToolError> {
        let reply = client.call(
            ctx,
            self.lfs,
            LfsOp::Write {
                file: self.file,
                block: self.next,
                data: payload,
                hint: self.hint,
            },
        )?;
        match reply {
            LfsData::Written { addr } => {
                self.hint = Some(addr);
                self.next += 1;
                Ok(())
            }
            other => Err(ToolError::Protocol(format!("unexpected LFS reply {other:?}"))),
        }
    }

    /// Encodes and appends one Bridge block.
    ///
    /// # Errors
    ///
    /// Propagates LFS errors.
    ///
    /// # Panics
    ///
    /// Panics if `data` exceeds 960 bytes.
    pub fn append_block(
        &mut self,
        ctx: &mut Ctx,
        client: &mut LfsClient,
        header: &BridgeHeader,
        data: &[u8],
    ) -> Result<(), ToolError> {
        self.append_raw(ctx, client, encode_payload(header, data))
    }
}
