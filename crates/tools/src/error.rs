//! Tool error type.

use bridge_core::BridgeError;
use bridge_efs::EfsError;
use std::error::Error;
use std::fmt;

/// Errors surfaced by Bridge tools.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolError {
    /// An error from the Bridge Server.
    Bridge(BridgeError),
    /// An error from direct LFS access.
    Lfs(EfsError),
    /// A worker reported a failure or violated the tool's protocol.
    Protocol(String),
}

impl fmt::Display for ToolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToolError::Bridge(e) => write!(f, "bridge error: {e}"),
            ToolError::Lfs(e) => write!(f, "LFS error: {e}"),
            ToolError::Protocol(why) => write!(f, "tool protocol error: {why}"),
        }
    }
}

impl Error for ToolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ToolError::Bridge(e) => Some(e),
            ToolError::Lfs(e) => Some(e),
            ToolError::Protocol(_) => None,
        }
    }
}

impl From<BridgeError> for ToolError {
    fn from(e: BridgeError) -> Self {
        ToolError::Bridge(e)
    }
}

impl From<EfsError> for ToolError {
    fn from(e: EfsError) -> Self {
        ToolError::Lfs(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ToolError = BridgeError::EmptyWorkerList.into();
        assert!(e.to_string().contains("bridge error"));
        assert!(Error::source(&e).is_some());
        let e: ToolError = EfsError::NoSpace.into();
        assert!(e.to_string().contains("LFS error"));
        let e = ToolError::Protocol("bad".into());
        assert!(Error::source(&e).is_none());
    }
}
