//! Property tests for the tools: the sort tool against `std` sort, the
//! filters against plain maps, grep against a naive scan — over arbitrary
//! breadths, buffer sizes, and data.

use bridge_core::{BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec};
use bridge_tools::{
    copy_with, grep, key_of, sort, transforms, LocalMergeArity, SortOptions, ToolOptions,
};
use parsim::Ctx;
use proptest::prelude::*;

fn record_from(key: u64, body: u8) -> Vec<u8> {
    let mut r = key.to_be_bytes().to_vec();
    r.extend_from_slice(&[body; 24]);
    r
}

fn write_records(ctx: &mut Ctx, bridge: &mut BridgeClient, records: &[Vec<u8>]) -> BridgeFileId {
    let file = bridge.create(ctx, CreateSpec::default()).unwrap();
    for r in records {
        bridge.seq_write(ctx, file, r.clone()).unwrap();
    }
    file
}

fn read_records(ctx: &mut Ctx, bridge: &mut BridgeClient, file: BridgeFileId) -> Vec<Vec<u8>> {
    bridge.open(ctx, file).unwrap();
    let mut out = Vec::new();
    while let Some(b) = bridge.seq_read(ctx, file).unwrap() {
        out.push(b.to_vec());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// The full two-phase parallel sort equals a stable std sort by key,
    /// for arbitrary key multisets, machine breadths, in-core buffers,
    /// and both local merge arities.
    #[test]
    fn sort_tool_matches_std_sort(
        keys in proptest::collection::vec(0u64..50, 1..120),
        p in 1u32..7,
        in_core in 4u32..32,
        multiway in any::<bool>(),
    ) {
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(p));
        let server = machine.server;
        sim.block_on(machine.frontend, "prop", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let records: Vec<Vec<u8>> = keys
                .iter()
                .map(|&k| record_from(k, (k % 251) as u8))
                .collect();
            let src = write_records(ctx, &mut bridge, &records);
            let opts = SortOptions {
                in_core_records: in_core,
                local_merge: if multiway {
                    LocalMergeArity::MultiWay
                } else {
                    LocalMergeArity::Binary
                },
                ..SortOptions::default()
            };
            let (out, stats) = sort(ctx, &mut bridge, src, &opts).unwrap();
            assert_eq!(stats.records, keys.len() as u64);

            let got: Vec<[u8; 8]> = read_records(ctx, &mut bridge, out)
                .iter()
                .map(|b| key_of(b))
                .collect();
            let mut expected: Vec<[u8; 8]> =
                keys.iter().map(|&k| k.to_be_bytes()).collect();
            expected.sort_unstable();
            assert_eq!(got, expected);
        });
    }

    /// copy_with(f) equals mapping f over the blocks, for an arbitrary
    /// translation table.
    #[test]
    fn filters_equal_plain_maps(
        table in proptest::array::uniform32(any::<u8>()),
        blocks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 1..30),
        p in 1u32..5,
    ) {
        // Expand the 32-byte sample into a full 256-entry table.
        let mut full = [0u8; 256];
        for (i, slot) in full.iter_mut().enumerate() {
            *slot = table[i % 32].wrapping_add(i as u8);
        }
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(p));
        let server = machine.server;
        sim.block_on(machine.frontend, "prop", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let src = write_records(ctx, &mut bridge, &blocks);
            let (dst, _) = copy_with(
                ctx,
                &mut bridge,
                src,
                transforms::translate(full),
                &ToolOptions::default(),
            )
            .unwrap();
            let got = read_records(ctx, &mut bridge, dst);
            for (g, b) in got.iter().zip(&blocks) {
                // The tool transforms the whole 960-byte area (zero padding
                // included), exactly like the plain map.
                let mut expected = b.clone();
                expected.resize(bridge_core::BRIDGE_DATA, 0);
                for byte in &mut expected {
                    *byte = full[*byte as usize];
                }
                assert_eq!(g, &expected);
            }
        });
    }

    /// grep equals a naive client-side scan.
    #[test]
    fn grep_equals_naive_scan(
        texts in proptest::collection::vec(".{0,40}", 1..25),
        p in 1u32..5,
    ) {
        let needle = b"ab".to_vec();
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(p));
        let server = machine.server;
        sim.block_on(machine.frontend, "prop", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let blocks: Vec<Vec<u8>> = texts.iter().map(|t| t.clone().into_bytes()).collect();
            let file = write_records(ctx, &mut bridge, &blocks);
            let hits = grep(ctx, &mut bridge, file, needle.clone(), &ToolOptions::default())
                .unwrap();
            // Naive scan over the padded blocks.
            let mut expected = Vec::new();
            for (i, b) in blocks.iter().enumerate() {
                let mut padded = b.clone();
                padded.resize(bridge_core::BRIDGE_DATA, 0);
                for off in 0..padded.len().saturating_sub(needle.len() - 1) {
                    if padded[off..off + needle.len()] == needle[..] {
                        expected.push((i as u64, off as u32));
                    }
                }
            }
            let got: Vec<(u64, u32)> =
                hits.iter().map(|m| (m.global_block, m.offset)).collect();
            assert_eq!(got, expected);
        });
    }
}
