//! End-to-end tests of the Bridge tools: copy, filters, scan tools, and
//! the two-phase parallel merge sort.

use bridge_core::{
    BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec, PlacementSpec, BRIDGE_DATA,
};
use bridge_tools::{
    copy, copy_with, grep, key_of, sort, summarize, transforms, LocalMergeArity, SortOptions,
    ToolOptions,
};
use parsim::Ctx;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A record whose first 8 bytes are a big-endian key.
fn keyed_record(key: u64, salt: u8) -> Vec<u8> {
    let mut data = vec![0u8; 128];
    data[..8].copy_from_slice(&key.to_be_bytes());
    for (i, b) in data.iter_mut().enumerate().skip(8) {
        *b = salt.wrapping_add(i as u8);
    }
    data
}

fn write_file(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    records: &[Vec<u8>],
    spec: CreateSpec,
) -> BridgeFileId {
    let file = bridge.create(ctx, spec).unwrap();
    for r in records {
        bridge.seq_write(ctx, file, r.clone()).unwrap();
    }
    file
}

fn read_all(ctx: &mut Ctx, bridge: &mut BridgeClient, file: BridgeFileId) -> Vec<Vec<u8>> {
    bridge.open(ctx, file).unwrap();
    let mut out = Vec::new();
    while let Some(block) = bridge.seq_read(ctx, file).unwrap() {
        out.push(block.to_vec());
    }
    out
}

fn pad(mut v: Vec<u8>) -> Vec<u8> {
    v.resize(BRIDGE_DATA, 0);
    v
}

#[test]
fn copy_preserves_content_and_placement() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(5));
    let server = machine.server;
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let records: Vec<Vec<u8>> = (0..33).map(|i| keyed_record(i, 7)).collect();
        let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());
        let (dst, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).unwrap();
        assert_eq!(stats.blocks, 33);
        assert_ne!(src, dst);
        let src_open = bridge.open(ctx, src).unwrap();
        let dst_open = bridge.open(ctx, dst).unwrap();
        assert_eq!(src_open.placement, dst_open.placement);
        assert_eq!(dst_open.size, 33);
        let got = read_all(ctx, &mut bridge, dst);
        for (i, block) in got.iter().enumerate() {
            assert_eq!(block, &pad(records[i].clone()), "block {i}");
        }
        // Source unharmed.
        let again = read_all(ctx, &mut bridge, src);
        assert_eq!(again.len(), 33);
    });
}

#[test]
fn copy_works_for_chunked_and_hashed_placements() {
    for placement in [PlacementSpec::Chunked, PlacementSpec::Hashed { seed: 3 }] {
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
        let server = machine.server;
        sim.block_on(machine.frontend, "tool", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let records: Vec<Vec<u8>> = (0..24).map(|i| keyed_record(i, 1)).collect();
            let src = write_file(
                ctx,
                &mut bridge,
                &records,
                CreateSpec {
                    placement,
                    size_hint: Some(24),
                    ..CreateSpec::default()
                },
            );
            let (dst, _) = copy(ctx, &mut bridge, src, &ToolOptions::default()).unwrap();
            let got = read_all(ctx, &mut bridge, dst);
            assert_eq!(got.len(), 24, "{placement:?}");
            for (i, block) in got.iter().enumerate() {
                assert_eq!(block, &pad(records[i].clone()), "{placement:?} block {i}");
            }
        });
    }
}

#[test]
fn copy_tool_shows_parallel_speedup() {
    // Table 3's shape: same file size, more nodes, near-linear speedup.
    let time_copy = |p: u32, blocks: u64| -> f64 {
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(p));
        let server = machine.server;
        sim.block_on(machine.frontend, "tool", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let records: Vec<Vec<u8>> = (0..blocks).map(|i| keyed_record(i, 0)).collect();
            let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());
            let (_, stats) = copy(ctx, &mut bridge, src, &ToolOptions::default()).unwrap();
            stats.elapsed.as_secs_f64()
        })
    };
    let t2 = time_copy(2, 256);
    let t8 = time_copy(8, 256);
    let speedup = t2 / t8;
    assert!(
        speedup > 3.0,
        "2→8 nodes should speed copy up ~4x, got {speedup:.2} ({t2:.2}s → {t8:.2}s)"
    );
}

#[test]
fn filters_transform_every_block() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(3));
    let server = machine.server;
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let records: Vec<Vec<u8>> = (0..9)
            .map(|i| format!("Hello World {i}! 123").into_bytes())
            .collect();
        let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());

        // ROT13 twice is the identity.
        let (once, _) = copy_with(
            ctx,
            &mut bridge,
            src,
            transforms::rot13(),
            &ToolOptions::default(),
        )
        .unwrap();
        let (twice, _) = copy_with(
            ctx,
            &mut bridge,
            once,
            transforms::rot13(),
            &ToolOptions::default(),
        )
        .unwrap();
        let round_trip = read_all(ctx, &mut bridge, twice);
        for (i, block) in round_trip.iter().enumerate() {
            assert_eq!(block, &pad(records[i].clone()), "rot13∘rot13 block {i}");
        }
        let shifted = read_all(ctx, &mut bridge, once);
        assert_eq!(&shifted[0][..5], b"Uryyb", "rot13 applied");

        // XOR cipher: decrypt(encrypt(x)) == x, and ciphertext differs.
        let key = vec![0x5a, 0xa5, 0x3c];
        let (enc, _) = copy_with(
            ctx,
            &mut bridge,
            src,
            transforms::xor_cipher(key.clone()),
            &ToolOptions::default(),
        )
        .unwrap();
        let ciphertext = read_all(ctx, &mut bridge, enc);
        assert_ne!(&ciphertext[0][..5], b"Hello");
        let (dec, _) = copy_with(
            ctx,
            &mut bridge,
            enc,
            transforms::xor_cipher(key),
            &ToolOptions::default(),
        )
        .unwrap();
        let plaintext = read_all(ctx, &mut bridge, dec);
        for (i, block) in plaintext.iter().enumerate() {
            assert_eq!(block, &pad(records[i].clone()), "xor round trip block {i}");
        }

        // Lexical classifier.
        let (lexed, _) = copy_with(
            ctx,
            &mut bridge,
            src,
            transforms::lex_classes(80),
            &ToolOptions::default(),
        )
        .unwrap();
        let classes = read_all(ctx, &mut bridge, lexed);
        assert_eq!(&classes[0][..13], b"AAAAA_AAAAA_0");
    });
}

#[test]
fn grep_finds_all_matches_in_order() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let mut records = Vec::new();
        for i in 0..20u64 {
            let text = if i % 3 == 0 {
                format!("block {i} has NEEDLE inside; NEEDLE twice")
            } else {
                format!("block {i} is hay")
            };
            records.push(text.into_bytes());
        }
        let file = write_file(ctx, &mut bridge, &records, CreateSpec::default());
        let hits = grep(
            ctx,
            &mut bridge,
            file,
            b"NEEDLE".to_vec(),
            &ToolOptions::default(),
        )
        .unwrap();
        let expected_blocks: Vec<u64> = (0..20).filter(|i| i % 3 == 0).collect();
        assert_eq!(
            hits.len(),
            expected_blocks.len() * 2,
            "two hits per match block"
        );
        let mut sorted = hits.clone();
        sorted.sort();
        assert_eq!(hits, sorted, "matches come back ordered");
        for h in &hits {
            assert!(expected_blocks.contains(&h.global_block));
        }
        // No matches → empty.
        let none = grep(
            ctx,
            &mut bridge,
            file,
            b"ABSENT".to_vec(),
            &ToolOptions::default(),
        )
        .unwrap();
        assert!(none.is_empty());
    });
}

#[test]
fn summarize_matches_copy_checksums() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let records: Vec<Vec<u8>> = (0..17).map(|i| keyed_record(i * 3, 9)).collect();
        let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());
        let (dst, _) = copy(ctx, &mut bridge, src, &ToolOptions::default()).unwrap();
        let a = summarize(ctx, &mut bridge, src, &ToolOptions::default()).unwrap();
        let b = summarize(ctx, &mut bridge, dst, &ToolOptions::default()).unwrap();
        assert_eq!(a, b, "copy preserves the summary");
        assert_eq!(a.blocks, 17);
        assert_eq!(a.data_bytes, 17 * 960);
        assert_eq!(a.min_key, key_of(&records[0]));
        assert_eq!(a.max_key, key_of(&records[16]));

        // A filter changes the checksum.
        let (enc, _) = copy_with(
            ctx,
            &mut bridge,
            src,
            transforms::xor_cipher(vec![0xff]),
            &ToolOptions::default(),
        )
        .unwrap();
        let c = summarize(ctx, &mut bridge, enc, &ToolOptions::default()).unwrap();
        assert_ne!(a.checksum, c.checksum);
    });
}

// ---------------------------------------------------------------------
// Sort tool.

fn run_sort_case(p: u32, keys: Vec<u64>, opts: SortOptions) {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(p));
    let server = machine.server;
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let records: Vec<Vec<u8>> = keys.iter().map(|&k| keyed_record(k, 1)).collect();
        let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());
        let (out, stats) = sort(ctx, &mut bridge, src, &opts).unwrap();
        assert_eq!(stats.records, keys.len() as u64);

        let got = read_all(ctx, &mut bridge, out);
        assert_eq!(got.len(), keys.len());
        let mut expected = keys.clone();
        expected.sort_unstable();
        for (i, block) in got.iter().enumerate() {
            let key = u64::from_be_bytes(block[..8].try_into().unwrap());
            assert_eq!(key, expected[i], "position {i}");
            // Payload must be the record with that key, intact.
            assert_eq!(block, &pad(keyed_record(key, 1)), "payload {i}");
        }
        // Source intact.
        assert_eq!(bridge.open(ctx, src).unwrap().size, keys.len() as u64);
    });
}

fn shuffled_keys(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..n).map(|i| i * 3 % 1000).collect(); // duplicates included
    for i in (1..keys.len()).rev() {
        let j = rng.random_range(0..=i);
        keys.swap(i, j);
    }
    keys
}

#[test]
fn sort_small_in_core_only() {
    // Columns fit in core: zero local merge passes.
    run_sort_case(
        4,
        shuffled_keys(40, 1),
        SortOptions {
            in_core_records: 512,
            ..SortOptions::default()
        },
    );
}

#[test]
fn sort_with_local_merge_passes() {
    // Tiny in-core buffer forces run spills and 2-way merge passes.
    run_sort_case(
        4,
        shuffled_keys(120, 2),
        SortOptions {
            in_core_records: 8,
            ..SortOptions::default()
        },
    );
}

#[test]
fn sort_multiway_local_merge() {
    run_sort_case(
        4,
        shuffled_keys(120, 3),
        SortOptions {
            in_core_records: 8,
            local_merge: LocalMergeArity::MultiWay,
            ..SortOptions::default()
        },
    );
}

#[test]
fn sort_non_power_of_two_breadth() {
    // Odd p exercises the bye path in the merge pairing.
    run_sort_case(5, shuffled_keys(97, 4), SortOptions::default());
    run_sort_case(3, shuffled_keys(31, 5), SortOptions::default());
}

#[test]
fn sort_degenerate_inputs() {
    // Already sorted, reverse sorted, all-equal keys, single block, p=1.
    run_sort_case(4, (0..50).collect(), SortOptions::default());
    run_sort_case(4, (0..50).rev().collect(), SortOptions::default());
    run_sort_case(4, vec![7; 40], SortOptions::default());
    run_sort_case(4, vec![42], SortOptions::default());
    run_sort_case(1, shuffled_keys(20, 6), SortOptions::default());
}

#[test]
fn sort_empty_file() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let src = bridge.create(ctx, CreateSpec::default()).unwrap();
        let (out, stats) = sort(ctx, &mut bridge, src, &SortOptions::default()).unwrap();
        assert_eq!(stats.records, 0);
        assert_eq!(bridge.open(ctx, out).unwrap().size, 0);
    });
}

#[test]
fn sort_phase_times_and_pass_counts_are_reported() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::paper(4));
    let server = machine.server;
    let stats = sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let records: Vec<Vec<u8>> = shuffled_keys(128, 9)
            .iter()
            .map(|&k| keyed_record(k, 2))
            .collect();
        let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());
        let (_, stats) = sort(
            ctx,
            &mut bridge,
            src,
            &SortOptions {
                in_core_records: 8, // 32 records/column → 4 runs → 2 passes
                ..SortOptions::default()
            },
        )
        .unwrap();
        stats
    });
    assert_eq!(stats.records, 128);
    assert_eq!(stats.merge_passes, 2, "log2(4) merge passes");
    assert_eq!(stats.local_merge_passes, 2, "4 runs → 2 binary passes");
    assert!(!stats.local_sort.is_zero());
    assert!(!stats.merge.is_zero());
    assert!(stats.total >= stats.local_sort + stats.merge);
}

#[test]
fn sort_scratch_files_are_cleaned_up() {
    // After sorting, only the source and output remain (phase-1 files and
    // scratch runs are deleted), so a second sort can run immediately.
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(2));
    let server = machine.server;
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let records: Vec<Vec<u8>> = shuffled_keys(64, 11)
            .iter()
            .map(|&k| keyed_record(k, 3))
            .collect();
        let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());
        let (out1, _) = sort(
            ctx,
            &mut bridge,
            src,
            &SortOptions {
                in_core_records: 8,
                ..SortOptions::default()
            },
        )
        .unwrap();
        let (out2, _) = sort(ctx, &mut bridge, src, &SortOptions::default()).unwrap();
        let a = read_all(ctx, &mut bridge, out1);
        let b = read_all(ctx, &mut bridge, out2);
        assert_eq!(a, b, "two sorts of the same file agree");
    });
}

#[test]
fn copy_tool_preserves_redundancy_mode() {
    use bridge_core::Redundancy;
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    let victim = machine.lfs[3];
    sim.block_on(machine.frontend, "app", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let blocks = 16u64;
        let file = bridge
            .create(
                ctx,
                CreateSpec {
                    redundancy: Redundancy::Mirror,
                    ..CreateSpec::default()
                },
            )
            .unwrap();
        let records: Vec<Vec<u8>> = (0..blocks).map(|i| keyed_record(i, 4)).collect();
        for r in &records {
            bridge.seq_write(ctx, file, r.clone()).unwrap();
        }
        let (dup, _) = copy(ctx, &mut bridge, file, &ToolOptions::default()).unwrap();
        let info = bridge.open(ctx, dup).unwrap();
        assert_eq!(info.redundancy, Redundancy::Mirror);
        // ecopy writes data columns directly; the tool then asks the
        // server to derive the mirror columns, so the copy survives a
        // node failure just like its source.
        bridge_efs::set_failed(ctx, victim, true);
        for b in 0..blocks {
            let data = bridge.rand_read(ctx, dup, b).unwrap();
            assert_eq!(
                &data[..136],
                &pad(records[b as usize].clone())[..136],
                "block {b}"
            );
        }
    });
}

#[test]
fn batched_tools_match_unbatched() {
    use bridge_core::BatchPolicy;
    // Every tool, run with run-batched column streams, must produce exactly
    // what the block-at-a-time protocol produces.
    let records: Vec<Vec<u8>> = (0..61)
        .map(|i| keyed_record((i * 7) % 23, i as u8))
        .collect();
    let run = |batch: BatchPolicy| {
        let records = records.clone();
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
        let server = machine.server;
        sim.block_on(machine.frontend, "tool", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());
            let opts = ToolOptions {
                batch,
                ..ToolOptions::default()
            };
            let (copied, stats) = copy(ctx, &mut bridge, src, &opts).unwrap();
            assert_eq!(stats.blocks, 61);
            let copy_out = read_all(ctx, &mut bridge, copied);
            let hits = grep(ctx, &mut bridge, src, b"\x00\x00\x00\x07".to_vec(), &opts).unwrap();
            let summary = summarize(ctx, &mut bridge, src, &opts).unwrap();
            let sort_opts = SortOptions {
                in_core_records: 8,
                tool: opts,
                ..SortOptions::default()
            };
            let (sorted, sstats) = sort(ctx, &mut bridge, src, &sort_opts).unwrap();
            assert_eq!(sstats.records, 61);
            let sort_out = read_all(ctx, &mut bridge, sorted);
            (copy_out, hits, summary, sort_out)
        })
    };
    let baseline = run(BatchPolicy::Off);
    for depth in [2u32, 8, 32] {
        assert_eq!(run(BatchPolicy::Runs(depth)), baseline, "depth {depth}");
    }
    // And the baseline is right: copy preserves, sort orders by key (the
    // parallel sort is not stable, so only keys are comparable).
    assert_eq!(
        baseline.0,
        records.iter().cloned().map(pad).collect::<Vec<_>>()
    );
    let got_keys: Vec<[u8; 8]> = baseline.3.iter().map(|r| key_of(r)).collect();
    let mut expected_keys: Vec<[u8; 8]> = records.iter().map(|r| key_of(r)).collect();
    expected_keys.sort_unstable();
    assert_eq!(got_keys, expected_keys);
}

#[test]
fn batched_copy_sends_fewer_messages() {
    use bridge_core::BatchPolicy;
    // The headline batching claim at tool level: one LFS round trip per
    // run instead of per block, in both directions.
    let run = |batch: BatchPolicy| {
        let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
        let server = machine.server;
        let (tx, rx) = std::sync::mpsc::channel();
        sim.spawn(machine.frontend, "tool", move |ctx| {
            let mut bridge = BridgeClient::new(server);
            let records: Vec<Vec<u8>> = (0..64).map(|i| keyed_record(i, 3)).collect();
            let src = write_file(ctx, &mut bridge, &records, CreateSpec::default());
            let opts = ToolOptions {
                batch,
                ..ToolOptions::default()
            };
            let (_, stats) = copy(ctx, &mut bridge, src, &opts).unwrap();
            let _ = tx.send(stats.blocks);
        });
        let stats = sim.run();
        assert_eq!(rx.try_recv().unwrap(), 64);
        stats.messages
    };
    let unbatched = run(BatchPolicy::Off);
    let batched = run(BatchPolicy::Runs(8));
    assert!(
        batched < unbatched,
        "batched copy should send fewer messages: {batched} < {unbatched}"
    );
}
