//! pfsck's redundancy audit: stripe parity recomputed and verified
//! (`--repair` rewrites bad parity), mirror copies compared, and a down
//! node's columns reconstructed from the surviving group members instead
//! of being written off as unknowable.

use bridge_core::{
    BridgeClient, BridgeConfig, BridgeFileId, BridgeMachine, CreateSpec, ParityLayout, Redundancy,
};
use bridge_efs::{LfsClient, LfsFileId, LfsOp};
use bridge_tools::{pfsck, FsckOptions, MachineFinding};
use bytes::Bytes;
use parsim::{Ctx, NodeId, ProcId};

fn record(tag: u32, block: u64) -> Vec<u8> {
    let mut data = vec![0u8; 120];
    data[..4].copy_from_slice(&tag.to_le_bytes());
    data[4..12].copy_from_slice(&block.to_le_bytes());
    for (i, b) in data.iter_mut().enumerate().skip(12) {
        *b = (tag as usize * 3 + block as usize * 7 + i) as u8;
    }
    data
}

fn write_redundant(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    redundancy: Redundancy,
    blocks: u64,
) -> BridgeFileId {
    let file = bridge
        .create(
            ctx,
            CreateSpec {
                redundancy,
                ..CreateSpec::default()
            },
        )
        .unwrap();
    for b in 0..blocks {
        bridge
            .seq_write(ctx, file, record(redundancy.tag(), b))
            .unwrap();
    }
    file
}

fn pairs(machine: &BridgeMachine) -> Vec<(ProcId, NodeId)> {
    machine
        .lfs
        .iter()
        .copied()
        .zip(machine.lfs_nodes.iter().copied())
        .collect()
}

fn check(
    ctx: &mut Ctx,
    pairs: &[(ProcId, NodeId)],
    server: ProcId,
    repair: bool,
) -> bridge_tools::FsckVerdict {
    pfsck(
        ctx,
        pairs,
        &FsckOptions {
            repair,
            server: Some(server),
            ..FsckOptions::default()
        },
    )
    .expect("pfsck")
}

/// The companion naming and parity placement of `file` on a breadth-4
/// machine, read back from the server's manifest.
fn manifest_entry(
    ctx: &mut Ctx,
    bridge: &mut BridgeClient,
    file: BridgeFileId,
) -> (LfsFileId, Vec<u32>, u32) {
    let manifest = bridge.get_manifest(ctx).unwrap();
    let entry = manifest
        .files
        .iter()
        .find(|e| e.file == file)
        .expect("file in manifest");
    (
        entry.companion.expect("redundant"),
        entry.nodes.clone(),
        entry.start,
    )
}

#[test]
fn parity_audit_detects_and_repairs_stale_parity() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    let pairs = pairs(&machine);
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = write_redundant(ctx, &mut bridge, Redundancy::parity(), 13);
        assert!(check(ctx, &pairs, server, false).clean(), "healthy start");

        // Scribble over stripe 2's parity block behind the server's back.
        let (companion, nodes, _) = manifest_entry(ctx, &mut bridge, file);
        let layout = ParityLayout::new(4);
        let stripe = 2u64;
        let pnode = nodes[layout.parity_position(stripe) as usize];
        let mut lfs = LfsClient::new();
        lfs.call(
            ctx,
            pairs[pnode as usize].0,
            LfsOp::Write {
                file: companion,
                block: layout.parity_local(stripe),
                data: Bytes::from_static(b"scribble"),
                hint: None,
            },
        )
        .unwrap();

        let verdict = check(ctx, &pairs, server, false);
        assert!(!verdict.clean());
        let findings = &verdict.machine.as_ref().unwrap().findings;
        assert!(
            findings.contains(&MachineFinding::StaleParity {
                file,
                stripe,
                node: pnode,
            }),
            "stale parity reported: {findings:?}"
        );

        let repaired = check(ctx, &pairs, server, true);
        assert!(repaired.machine.as_ref().unwrap().repaired >= 1);
        assert!(repaired.clean(), "repair rewrote the parity block");
        assert!(check(ctx, &pairs, server, false).clean());
    });
}

#[test]
fn mirror_audit_detects_and_repairs_divergent_copy() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    let pairs = pairs(&machine);
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = write_redundant(ctx, &mut bridge, Redundancy::Mirror, 9);
        let (companion, nodes, start) = manifest_entry(ctx, &mut bridge, file);

        // Block 5's position honours the file's round-robin start
        // rotation; its mirror sits one position over.
        let block = 5u64;
        let pos = ((block + u64::from(start)) % 4) as usize;
        let mnode = nodes[(pos + 1) % 4];
        let mut lfs = LfsClient::new();
        lfs.call(
            ctx,
            pairs[mnode as usize].0,
            LfsOp::Write {
                file: companion,
                block: (block / 4) as u32,
                data: Bytes::from_static(b"divergent"),
                hint: None,
            },
        )
        .unwrap();

        let verdict = check(ctx, &pairs, server, false);
        let findings = &verdict.machine.as_ref().unwrap().findings;
        assert!(
            findings.contains(&MachineFinding::MirrorMismatch {
                file,
                block,
                node: mnode,
            }),
            "mirror mismatch reported: {findings:?}"
        );

        let repaired = check(ctx, &pairs, server, true);
        assert!(repaired.machine.as_ref().unwrap().repaired >= 1);
        assert!(
            repaired.clean(),
            "repair rewrote the mirror from the primary"
        );
    });
}

/// Regression for the machine pass withholding a down node's columns:
/// with redundancy on they are reconstructed from the surviving group
/// members and verified, so a degraded machine still gets a clean bill —
/// while a second failure in the same group surfaces as unrecoverable.
#[test]
fn down_node_columns_are_reconstructed_not_withheld() {
    let (mut sim, machine) = BridgeMachine::build(&BridgeConfig::instant(4));
    let server = machine.server;
    let pairs = pairs(&machine);
    let victim = machine.lfs[1];
    let second = machine.lfs[2];
    sim.block_on(machine.frontend, "tool", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let blocks = 13u64;
        let parity = write_redundant(ctx, &mut bridge, Redundancy::parity(), blocks);
        let mirror = write_redundant(ctx, &mut bridge, Redundancy::Mirror, blocks);
        write_redundant(ctx, &mut bridge, Redundancy::None, blocks);

        bridge_efs::set_failed(ctx, victim, true);
        let verdict = check(ctx, &pairs, server, false);
        let machine_report = verdict.machine.as_ref().unwrap();
        assert!(
            machine_report.reconstructed > 0,
            "degraded columns were reconstructed: {machine_report:?}"
        );
        assert!(
            verdict.clean(),
            "one failure is fully recoverable: {:?}",
            verdict.errors()
        );

        // A second failure leaves single-survivor groups unrecoverable.
        bridge_efs::set_failed(ctx, second, true);
        let verdict = check(ctx, &pairs, server, false);
        assert!(!verdict.clean());
        let findings = &verdict.machine.as_ref().unwrap().findings;
        assert!(
            findings.iter().any(|f| matches!(
                f,
                MachineFinding::UnrecoverableBlock { file, .. } if *file == parity || *file == mirror
            )),
            "double failure surfaces unrecoverable blocks: {findings:?}"
        );
    });
}
