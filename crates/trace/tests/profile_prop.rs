//! Property tests for the causal profiler: on randomized Bridge
//! workloads, attribution must be an exact partition, the critical path
//! must agree with the kernel clock, and profiling must be deterministic
//! and observation-only.

use bridge_core::{BridgeClient, BridgeConfig, BridgeMachine, CreateSpec};
use bridge_tools::{copy, ToolOptions};
use bridge_trace::{profile, validate_causality, Category, ProfileReport, TraceCollector};
use parsim::RunStats;
use proptest::prelude::*;

/// Runs a randomized write → read-back (→ optional copy tool) workload
/// on the paper machine, optionally traced, returning the kernel's run
/// counters and the trace (empty when untraced).
fn run_workload(
    p: u32,
    blocks: u64,
    seed: u64,
    copy_after: bool,
    traced: bool,
) -> (RunStats, bridge_trace::TraceData) {
    let collector = traced.then(TraceCollector::install);
    let mut config = BridgeConfig::paper(p);
    config.tracer = collector.as_ref().map(|c| c.as_tracer());
    let (mut sim, machine) = BridgeMachine::build(&config);
    let server = machine.server;
    sim.block_on(machine.frontend, "prop", move |ctx| {
        let mut bridge = BridgeClient::new(server);
        let file = bridge.create(ctx, CreateSpec::default()).expect("create");
        for i in 0..blocks {
            let mut rec = (i.wrapping_mul(0x9E37_79B9).wrapping_add(seed))
                .to_be_bytes()
                .to_vec();
            rec.extend_from_slice(b" prop record");
            bridge.seq_write(ctx, file, rec).expect("write");
        }
        bridge.open(ctx, file).expect("open");
        while bridge.seq_read(ctx, file).expect("read").is_some() {}
        if copy_after {
            let (out, _) = copy(ctx, &mut bridge, file, &ToolOptions::default()).expect("copy");
            bridge.delete(ctx, out).expect("delete");
        }
    });
    let stats = sim.stats();
    let data = collector.map(|c| c.take()).unwrap_or_default();
    (stats, data)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// The whole-run critical path partitions `[0, makespan]` exactly,
    /// lands on the kernel's own end time, and can never be shorter than
    /// the longest single traced span.
    #[test]
    fn critical_path_is_exact_and_bounded(
        p in 2u32..=4,
        blocks in 1u64..20,
        seed in any::<u64>(),
        copy_after in any::<bool>(),
    ) {
        let (stats, data) = run_workload(p, blocks, seed, copy_after, true);
        prop_assert!(validate_causality(&data).is_ok());
        let prof = profile(&data);
        let cp = &prof.critical_path;
        prop_assert_eq!(cp.breakdown.total(), cp.makespan_nanos);
        prop_assert_eq!(cp.makespan_nanos, stats.end_time.as_nanos());
        let longest = data
            .spans
            .iter()
            .map(|s| s.end.as_nanos().saturating_sub(s.start.as_nanos()))
            .max()
            .unwrap_or(0);
        prop_assert!(
            cp.makespan_nanos >= longest,
            "makespan {} < longest span {}",
            cp.makespan_nanos,
            longest
        );
    }

    /// Every operation's category breakdown partitions its latency
    /// exactly: the categories sum to the measured latency, and whatever
    /// the trace cannot explain is reported as `untraced`, never absorbed.
    #[test]
    fn per_op_breakdowns_partition_latency(
        p in 2u32..=4,
        blocks in 1u64..20,
        seed in any::<u64>(),
        copy_after in any::<bool>(),
    ) {
        let (_, data) = run_workload(p, blocks, seed, copy_after, true);
        let prof = profile(&data);
        prop_assert!(!prof.ops.is_empty(), "workload produced no client ops");
        for op in &prof.ops {
            prop_assert!(op.end_nanos >= op.start_nanos);
            prop_assert_eq!(
                op.breakdown.total(),
                op.latency_nanos(),
                "op {} ({}) does not partition its latency",
                op.id,
                op.name.clone()
            );
            prop_assert_eq!(op.breakdown.get(Category::Untraced), op.untraced_nanos());
            prop_assert!(op.untraced_nanos() <= op.latency_nanos());
        }
    }

    /// Profiling is deterministic and observation-only: a traced re-run
    /// reproduces the untraced run's kernel counters bit for bit, and two
    /// traced runs render byte-identical profile reports.
    #[test]
    fn profiling_is_deterministic_and_observation_only(
        p in 2u32..=4,
        blocks in 1u64..16,
        seed in any::<u64>(),
    ) {
        let (plain, _) = run_workload(p, blocks, seed, false, false);
        let (traced_a, data_a) = run_workload(p, blocks, seed, false, true);
        let (traced_b, data_b) = run_workload(p, blocks, seed, false, true);
        prop_assert_eq!(&plain, &traced_a, "tracing changed the kernel counters");
        prop_assert_eq!(&traced_a, &traced_b, "traced runs diverged");
        let json_a = ProfileReport::from_trace(&data_a, 32).to_json();
        let json_b = ProfileReport::from_trace(&data_b, 32).to_json();
        prop_assert_eq!(json_a, json_b, "profile reports diverged");
    }
}
