//! Chrome trace-event JSON export and validation.
//!
//! The exported file loads in Perfetto (<https://ui.perfetto.dev>) or
//! `chrome://tracing`. Simulated *nodes* map to trace "processes" and
//! simulated *processes* to trace "threads", so a p-node Bridge machine
//! renders as p+2 swimlane groups, exactly like the paper's Figure 2.
//!
//! Scheduler run intervals (`cat == "sched"`) go on a separate synthetic
//! thread lane per process: a Bridge-server dispatch span legitimately
//! *crosses* run-interval boundaries (the server blocks mid-request
//! awaiting LFS replies), and the Chrome format requires events on one
//! thread to nest.

use crate::collect::TraceData;
use crate::json::{self, write_str, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Offset added to a process's thread id to form its scheduler lane.
const SCHED_TID_BASE: usize = 100_000;

fn push_us(out: &mut String, nanos: u64) {
    // Chrome timestamps are microseconds; emit sub-us precision as a
    // fraction so nothing collapses at ns resolution.
    let _ = write!(out, "{}.{:03}", nanos / 1_000, nanos % 1_000);
}

fn push_common(out: &mut String, ph: char, pid: usize, tid: usize, name: &str, cat: &str) {
    let _ = write!(out, r#"{{"ph":"{ph}","pid":{pid},"tid":{tid},"#);
    out.push_str("\"name\":");
    write_str(out, name);
    out.push_str(",\"cat\":");
    write_str(out, cat);
}

fn push_args(out: &mut String, args: &[(&'static str, u64)]) {
    if args.is_empty() {
        return;
    }
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_str(out, k);
        let _ = write!(out, ":{v}");
    }
    out.push('}');
}

/// Renders collected trace data as a Chrome trace-event JSON document.
///
/// Layout: trace pid = node index + 1 (named by `process_name`
/// metadata), trace tid = process index + 1 (named by `thread_name`),
/// plus one `"(sched)"` lane per process holding its scheduler run
/// intervals. Spans become `"X"` (complete) events, instants `"i"`
/// events, and message send/delivery pairs `"s"`/`"f"` flow events.
pub fn chrome_trace_json(data: &TraceData) -> String {
    let mut out = String::with_capacity(
        256 + 160 * (data.spans.len() + data.instants.len() + data.flows.len()),
    );
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
    };

    let node_pid = |node: usize| node + 1;
    let proc_pid = |pid: usize| {
        data.procs
            .get(pid)
            .map(|p| node_pid(p.node))
            .unwrap_or(usize::MAX)
    };

    for (idx, name) in data.nodes.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            r#"{{"ph":"M","pid":{},"name":"process_name","args":{{"name":"#,
            node_pid(idx)
        );
        write_str(&mut out, name);
        out.push_str("}}");
    }
    for (idx, meta) in data.procs.iter().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            r#"{{"ph":"M","pid":{},"tid":{},"name":"thread_name","args":{{"name":"#,
            node_pid(meta.node),
            idx + 1
        );
        write_str(&mut out, &meta.name);
        out.push_str("}}");
        sep(&mut out);
        let _ = write!(
            out,
            r#"{{"ph":"M","pid":{},"tid":{},"name":"thread_name","args":{{"name":"#,
            node_pid(meta.node),
            idx + 1 + SCHED_TID_BASE
        );
        write_str(&mut out, &format!("{} (sched)", meta.name));
        out.push_str("}}");
    }

    for span in &data.spans {
        sep(&mut out);
        let tid = if span.cat == "sched" {
            span.pid + 1 + SCHED_TID_BASE
        } else {
            span.pid + 1
        };
        push_common(&mut out, 'X', proc_pid(span.pid), tid, &span.name, span.cat);
        out.push_str(",\"ts\":");
        push_us(&mut out, span.start.as_nanos());
        out.push_str(",\"dur\":");
        push_us(&mut out, span.dur_nanos());
        push_args(&mut out, &span.args);
        out.push('}');
    }

    for inst in &data.instants {
        sep(&mut out);
        push_common(
            &mut out,
            'i',
            proc_pid(inst.pid),
            inst.pid + 1,
            &inst.name,
            inst.cat,
        );
        out.push_str(",\"s\":\"t\",\"ts\":");
        push_us(&mut out, inst.at.as_nanos());
        push_args(&mut out, &inst.args);
        out.push('}');
    }

    for flow in &data.flows {
        sep(&mut out);
        let (ph, owner) = if flow.send {
            ('s', flow.from)
        } else {
            ('f', flow.to)
        };
        push_common(&mut out, ph, proc_pid(owner), owner + 1, "msg", "msg");
        let _ = write!(out, r#","id":{}"#, flow.id);
        if !flow.send {
            out.push_str(r#","bp":"e""#);
        }
        out.push_str(",\"ts\":");
        push_us(&mut out, flow.at.as_nanos());
        if flow.send {
            push_args(&mut out, &[("bytes", flow.bytes as u64)]);
        }
        out.push('}');
    }

    out.push_str("\n]}\n");
    out
}

/// What [`validate_chrome_trace`] learned about a well-formed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeSummary {
    /// Total events in `traceEvents`.
    pub events: usize,
    /// Number of `"X"` (complete span) events.
    pub spans: usize,
    /// Number of flow (`"s"`/`"f"`) events.
    pub flows: usize,
    /// Trace pids that have `process_name` metadata.
    pub named_pids: BTreeSet<u64>,
    /// Counts of `"X"` events per span name.
    pub span_counts: BTreeMap<String, u64>,
}

fn num_field(ev: &Json, key: &str, i: usize) -> Result<f64, String> {
    ev.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("event {i}: missing numeric \"{key}\""))
}

/// Checks that `src` is a loadable Chrome trace: it parses as JSON, has a
/// `traceEvents` array, every `"X"` event carries numeric `ts`/`dur`,
/// spans on each (pid, tid) lane nest properly, and every pid referenced
/// by a span has `process_name` metadata.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn validate_chrome_trace(src: &str) -> Result<ChromeSummary, String> {
    let doc = json::parse(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;

    let mut named_pids = BTreeSet::new();
    let mut span_pids = BTreeSet::new();
    let mut span_counts: BTreeMap<String, u64> = BTreeMap::new();
    // (pid, tid) -> [(start_ns, end_ns, name)]
    type Lane = Vec<(u64, u64, String)>;
    let mut lanes: BTreeMap<(u64, u64), Lane> = BTreeMap::new();
    let mut spans = 0usize;
    let mut flows = 0usize;

    for (i, ev) in events.iter().enumerate() {
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        match ph {
            "M" => {
                let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
                if name == "process_name" {
                    let pid = num_field(ev, "pid", i)? as u64;
                    named_pids.insert(pid);
                }
            }
            "X" => {
                spans += 1;
                let pid = num_field(ev, "pid", i)? as u64;
                let tid = num_field(ev, "tid", i)? as u64;
                let ts = num_field(ev, "ts", i)?;
                let dur = num_field(ev, "dur", i)?;
                if !(ts >= 0.0 && dur >= 0.0) {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                let name = ev
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("event {i}: span without name"))?;
                *span_counts.entry(name.to_string()).or_insert(0) += 1;
                span_pids.insert(pid);
                let start = (ts * 1_000.0).round() as u64;
                let end = start + (dur * 1_000.0).round() as u64;
                lanes
                    .entry((pid, tid))
                    .or_default()
                    .push((start, end, name.to_string()));
            }
            "s" | "f" => {
                flows += 1;
                num_field(ev, "ts", i)?;
                ev.get("id")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: flow without id"))?;
            }
            "i" => {
                num_field(ev, "ts", i)?;
            }
            other => return Err(format!("event {i}: unknown ph \"{other}\"")),
        }
    }

    for pid in &span_pids {
        if !named_pids.contains(pid) {
            return Err(format!("pid {pid} has spans but no process_name metadata"));
        }
    }

    // Nesting check per lane: order by (start asc, end desc) so an outer
    // span precedes the spans it contains, then verify stack containment.
    for ((pid, tid), mut lane) in lanes {
        lane.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for (start, end, name) in &lane {
            while let Some(&(_, top_end)) = stack.last() {
                if top_end <= *start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(top_start, top_end)) = stack.last() {
                if *end > top_end {
                    return Err(format!(
                        "lane ({pid},{tid}): span \"{name}\" [{start},{end}] \
                         overlaps enclosing [{top_start},{top_end}] without nesting"
                    ));
                }
            }
            stack.push((*start, *end));
        }
    }

    Ok(ChromeSummary {
        events: events.len(),
        spans,
        flows,
        named_pids,
        span_counts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::TraceCollector;
    use parsim::{SimConfig, SimDuration, Simulation};

    fn sample_trace() -> TraceData {
        let collector = TraceCollector::install();
        let mut sim = Simulation::new(SimConfig {
            tracer: Some(collector.as_tracer()),
            ..SimConfig::default()
        });
        let node_a = sim.add_node("alpha");
        let node_b = sim.add_node("beta");
        let worker = sim.spawn(node_b, "worker", |ctx| {
            let (from, n) = ctx.recv_as::<u32>();
            let t0 = ctx.now();
            ctx.delay(SimDuration::from_millis(5));
            ctx.trace_span("tool", "tool.work", t0, &[("n", u64::from(n))]);
            ctx.send(from, n);
        });
        sim.block_on(node_a, "main", move |ctx| {
            let t0 = ctx.now();
            ctx.send(worker, 7u32);
            let _ = ctx.recv_as::<u32>();
            ctx.trace_span("tool", "tool.round", t0, &[]);
            ctx.trace_instant("tool", "done", &[("ok", 1)]);
        });
        collector.snapshot()
    }

    #[test]
    fn export_validates_and_reflects_the_run() {
        let data = sample_trace();
        let json = chrome_trace_json(&data);
        let summary = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(summary.spans, data.spans.len());
        assert_eq!(summary.flows, data.flows.len());
        assert_eq!(summary.span_counts.get("tool.work"), Some(&1));
        assert_eq!(summary.span_counts.get("tool.round"), Some(&1));
        // Both nodes referenced and named.
        assert!(summary.named_pids.contains(&1));
        assert!(summary.named_pids.contains(&2));
    }

    #[test]
    fn validator_rejects_overlapping_spans_on_one_lane() {
        let bad = r#"{"traceEvents":[
            {"ph":"M","pid":1,"name":"process_name","args":{"name":"n"}},
            {"ph":"X","pid":1,"tid":1,"name":"a","cat":"t","ts":0,"dur":10},
            {"ph":"X","pid":1,"tid":1,"name":"b","cat":"t","ts":5,"dur":10}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("without nesting"), "{err}");
    }

    #[test]
    fn validator_rejects_spans_without_process_metadata() {
        let bad = r#"{"traceEvents":[
            {"ph":"X","pid":9,"tid":1,"name":"a","cat":"t","ts":0,"dur":1}
        ]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("process_name"), "{err}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
    }
}
