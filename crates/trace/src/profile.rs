//! Causal profiling: per-operation critical-path attribution and a
//! whole-run critical path computed from a recorded [`TraceData`].
//!
//! The profiler stitches the trace's spans into a causality DAG — client
//! RPC spans pair with their server-side service spans by request id,
//! service spans contain disk spans and nested RPCs by virtual-time
//! containment on the same process, and [`FlowEvent`](crate::FlowEvent)s connect processes
//! across the interconnect (every posted message and every spawn carries
//! a flow). Two analyses run over that DAG:
//!
//! * **Per-op attribution** ([`profile`], [`OpProfile`]): each client
//!   operation's latency `[send, reply]` is partitioned — exactly, with
//!   zero slack — into [`Category`] buckets. Anything the decomposition
//!   cannot justify lands in [`Category::Untraced`], never silently in a
//!   neighbouring bucket.
//! * **Whole-run critical path** ([`CriticalPath`]): a backward walk from
//!   the last scheduler run interval, hopping flow edges to whichever
//!   process the current one was waiting on, painting every traversed
//!   nanosecond with the innermost application span covering it. The
//!   painted total always equals the makespan exactly.
//!
//! [`validate_causality`] audits the DAG: every successful client op must
//! reach its service span through a request flow and return through a
//! reply flow.

use crate::collect::{SpanEvent, TraceData};
use crate::json::write_str;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

/// Maximum recursion depth when a service span's interior contains nested
/// RPCs (the Bridge Server calling LFS servers, which could in principle
/// nest further).
const MAX_NEST: usize = 8;

/// Where a nanosecond of an operation's (or the run's) latency went.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Client-side RPC machinery (send/receive bookkeeping, and any part
    /// of a nested RPC too deep to decompose further).
    ClientRpc,
    /// Bridge Server: request CPU charge, mailbox wait, dispatch logic,
    /// and fan-out agent relaying.
    Bridge,
    /// Message flight time on the interconnect (request and reply legs,
    /// and flow edges on the run critical path).
    Interconnect,
    /// Waiting in an LFS server's request queue behind other requests.
    LfsQueueWait,
    /// LFS server execution that is not disk time (allocation, header
    /// bookkeeping, scheduling).
    LfsServe,
    /// Disk head positioning: seeks, rotational settle, and fault
    /// repositioning penalties.
    DiskPosition,
    /// Disk media transfer at streaming rate.
    DiskTransfer,
    /// Waiting out a retry timeout before resending a request.
    RetryBackoff,
    /// Tool-side compute (sort comparisons, record shuffling — any
    /// process time not otherwise claimed on a non-server process).
    ToolCompute,
    /// Time the trace cannot explain. Always reported, never absorbed.
    Untraced,
}

impl Category {
    /// Every category, in rendering order.
    pub const ALL: [Category; 10] = [
        Category::ClientRpc,
        Category::Bridge,
        Category::Interconnect,
        Category::LfsQueueWait,
        Category::LfsServe,
        Category::DiskPosition,
        Category::DiskTransfer,
        Category::RetryBackoff,
        Category::ToolCompute,
        Category::Untraced,
    ];

    /// The category's stable label (used in JSON and tables).
    pub fn label(self) -> &'static str {
        match self {
            Category::ClientRpc => "client.rpc",
            Category::Bridge => "bridge",
            Category::Interconnect => "interconnect",
            Category::LfsQueueWait => "lfs.queue_wait",
            Category::LfsServe => "lfs.serve",
            Category::DiskPosition => "disk.position",
            Category::DiskTransfer => "disk.transfer",
            Category::RetryBackoff => "retry.backoff",
            Category::ToolCompute => "tool.compute",
            Category::Untraced => "untraced",
        }
    }

    fn index(self) -> usize {
        Category::ALL
            .iter()
            .position(|c| *c == self)
            .expect("category is in ALL")
    }
}

/// Nanoseconds attributed per [`Category`]. Sums are exact: every helper
/// that fills a breakdown partitions an interval, so
/// [`total`](Breakdown::total) equals the interval's width.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    nanos: [u64; Category::ALL.len()],
}

impl Breakdown {
    /// Adds `nanos` to `cat`'s bucket.
    pub fn add(&mut self, cat: Category, nanos: u64) {
        self.nanos[cat.index()] += nanos;
    }

    /// The bucket for `cat`.
    pub fn get(&self, cat: Category) -> u64 {
        self.nanos[cat.index()]
    }

    /// Sum over all buckets.
    pub fn total(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Breakdown) {
        for (mine, theirs) in self.nanos.iter_mut().zip(&other.nanos) {
            *mine += theirs;
        }
    }

    /// `(category, nanos)` pairs in rendering order (zeros included).
    pub fn iter(&self) -> impl Iterator<Item = (Category, u64)> + '_ {
        Category::ALL.iter().map(|&c| (c, self.get(c)))
    }
}

/// One client operation's critical-path attribution.
#[derive(Debug, Clone)]
pub struct OpProfile {
    /// Process index of the caller.
    pub client: usize,
    /// Process index of the server it called.
    pub server: usize,
    /// Request id (unique per client process).
    pub id: u64,
    /// The client span's name, e.g. `"client.bridge.seq_read"`.
    pub name: String,
    /// Send time of the first attempt, nanoseconds of virtual time.
    pub start_nanos: u64,
    /// Reply receipt time, nanoseconds of virtual time.
    pub end_nanos: u64,
    /// Whether the server reported success.
    pub ok: bool,
    /// Exact partition of `[start, end]` into categories.
    pub breakdown: Breakdown,
}

impl OpProfile {
    /// End-to-end latency in nanoseconds.
    pub fn latency_nanos(&self) -> u64 {
        self.end_nanos - self.start_nanos
    }

    /// Nanoseconds of this op's latency the trace could not explain.
    pub fn untraced_nanos(&self) -> u64 {
        self.breakdown.get(Category::Untraced)
    }

    /// `untraced / latency`, zero for zero-latency ops.
    pub fn untraced_fraction(&self) -> f64 {
        let latency = self.latency_nanos();
        if latency == 0 {
            0.0
        } else {
            self.untraced_nanos() as f64 / latency as f64
        }
    }
}

/// The whole run's critical path: a contiguous backward walk from the
/// last run interval to time zero, painted by category. The breakdown's
/// total equals `makespan_nanos` exactly.
#[derive(Debug, Clone, Default)]
pub struct CriticalPath {
    /// End of the latest scheduler run interval (the run's makespan).
    pub makespan_nanos: u64,
    /// Exact partition of `[0, makespan]` into categories.
    pub breakdown: Breakdown,
    /// Number of flow edges the walk crossed between processes.
    pub hops: usize,
}

/// Everything [`profile`] computes from one trace.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Per-operation attributions, in client-span emission order.
    pub ops: Vec<OpProfile>,
    /// The whole-run critical path.
    pub critical_path: CriticalPath,
}

impl Profile {
    /// Sum of all per-op breakdowns.
    pub fn total(&self) -> Breakdown {
        let mut total = Breakdown::default();
        for op in &self.ops {
            total.merge(&op.breakdown);
        }
        total
    }

    /// The ops whose send time falls inside `[from_nanos, to_nanos)` —
    /// e.g. one benchmark phase — summed into a breakdown.
    pub fn breakdown_between(&self, from_nanos: u64, to_nanos: u64) -> Breakdown {
        let mut sum = Breakdown::default();
        for op in &self.ops {
            if op.start_nanos >= from_nanos && op.start_nanos < to_nanos {
                sum.merge(&op.breakdown);
            }
        }
        sum
    }

    /// The largest `untraced / latency` ratio over all ops (zero when
    /// there are none). The CI smoke gate fails when this exceeds 5%.
    pub fn worst_untraced_fraction(&self) -> f64 {
        self.ops
            .iter()
            .map(OpProfile::untraced_fraction)
            .fold(0.0, f64::max)
    }
}

/// One contiguous piece of an op's timeline.
type Seg = (u64, u64, Category);

/// Prebuilt lookup tables over one trace.
struct Stitcher<'a> {
    data: &'a TraceData,
    /// `(server pid, request id, client pid)` → `lfs.queue_wait` span.
    queue_waits: HashMap<(usize, u64, usize), usize>,
    /// Per-pid emission-ordered `lfs` service spans (non-queue-wait).
    lfs_services: HashMap<usize, Vec<usize>>,
    /// `(server pid, request id, client pid)` → `bridge` service span.
    bridge_services: HashMap<(usize, u64, usize), usize>,
    /// Per-pid `disk` + `client` spans, sorted by start (children for
    /// interior painting).
    children: HashMap<usize, Vec<usize>>,
    /// `(from pid, to pid)` → delivery times, sorted.
    recvs: HashMap<(usize, usize), Vec<u64>>,
    /// `(client pid, request id)` → `retry.resend` times, sorted.
    resends: HashMap<(usize, u64), Vec<u64>>,
    /// Per-pid non-scheduler spans sorted by start (critical-path paint).
    app_spans: HashMap<usize, Vec<usize>>,
    /// Per-pid scheduler run intervals `(start, end)`, sorted by start.
    runs: HashMap<usize, Vec<(u64, u64)>>,
}

impl<'a> Stitcher<'a> {
    fn build(data: &'a TraceData) -> Self {
        let mut s = Stitcher {
            data,
            queue_waits: HashMap::new(),
            lfs_services: HashMap::new(),
            bridge_services: HashMap::new(),
            children: HashMap::new(),
            recvs: HashMap::new(),
            resends: HashMap::new(),
            app_spans: HashMap::new(),
            runs: HashMap::new(),
        };
        for (idx, span) in data.spans.iter().enumerate() {
            match span.cat {
                "lfs" if span.name == "lfs.queue_wait" => {
                    if let (Some(id), Some(client)) = (span.arg("id"), span.arg("client")) {
                        s.queue_waits
                            .entry((span.pid, id, client as usize))
                            .or_insert(idx);
                    }
                }
                "lfs" => {
                    s.lfs_services.entry(span.pid).or_default().push(idx);
                }
                "bridge" => {
                    if let (Some(id), Some(client)) = (span.arg("id"), span.arg("client")) {
                        s.bridge_services
                            .entry((span.pid, id, client as usize))
                            .or_insert(idx);
                    }
                }
                _ => {}
            }
            match span.cat {
                "disk" | "client" => s.children.entry(span.pid).or_default().push(idx),
                _ => {}
            }
            if span.cat == "sched" && span.name == "run" {
                s.runs
                    .entry(span.pid)
                    .or_default()
                    .push((span.start.as_nanos(), span.end.as_nanos()));
            } else {
                s.app_spans.entry(span.pid).or_default().push(idx);
            }
        }
        for f in &data.flows {
            if !f.send {
                s.recvs
                    .entry((f.from, f.to))
                    .or_default()
                    .push(f.at.as_nanos());
            }
        }
        for i in &data.instants {
            if i.name == "retry.resend" {
                if let Some(id) = i.arg("id") {
                    s.resends
                        .entry((i.pid, id))
                        .or_default()
                        .push(i.at.as_nanos());
                }
            }
        }
        for times in s.recvs.values_mut() {
            times.sort_unstable();
        }
        for times in s.resends.values_mut() {
            times.sort_unstable();
        }
        let by_start = |spans: &[SpanEvent], list: &mut Vec<usize>| {
            list.sort_by_key(|&i| (spans[i].start, i));
        };
        for list in s.children.values_mut() {
            by_start(&data.spans, list);
        }
        for list in s.app_spans.values_mut() {
            by_start(&data.spans, list);
        }
        for list in s.runs.values_mut() {
            list.sort_unstable();
        }
        s
    }

    /// The service span answering client span `op_idx`, if the stitch
    /// closes: the `lfs.queue_wait` span keyed by `(server, id, client)`
    /// pairs with the next `lfs` service span the server emitted for that
    /// id, and `bridge` spans carry the key directly.
    fn service_of(&self, op_idx: usize) -> Option<ServiceRef> {
        let span = &self.data.spans[op_idx];
        let id = span.arg("id")?;
        let server = span.arg("server")? as usize;
        if let Some(&qw) = self.queue_waits.get(&(server, id, span.pid)) {
            // The queue-wait span is emitted at service start, the service
            // span at service end: the request's service span is the first
            // service span emitted after its queue-wait with a matching id.
            let svc = self.lfs_services.get(&server).and_then(|list| {
                list.iter()
                    .copied()
                    .find(|&i| i > qw && self.data.spans[i].arg("id") == Some(id))
            });
            return Some(ServiceRef::Lfs { qw, svc });
        }
        if let Some(&svc) = self.bridge_services.get(&(server, id, span.pid)) {
            return Some(ServiceRef::Bridge { svc });
        }
        None
    }

    /// Earliest delivery from `from` to `to` within `[lo, hi]`.
    fn recv_between(&self, from: usize, to: usize, lo: u64, hi: u64) -> Option<u64> {
        let times = self.recvs.get(&(from, to))?;
        let at = times.partition_point(|&t| t < lo);
        times.get(at).copied().filter(|&t| t <= hi)
    }

    /// Last `retry.resend` of `(client, id)` within `[lo, hi]`, if any.
    fn last_resend(&self, client: usize, id: u64, lo: u64, hi: u64) -> Option<u64> {
        let times = self.resends.get(&(client, id))?;
        times.iter().rev().copied().find(|&t| t >= lo && t <= hi)
    }

    /// Partitions client span `op_idx`'s interval into category segments.
    /// The segments are contiguous and cover `[start, end]` exactly.
    fn op_timeline(&self, op_idx: usize, depth: usize, out: &mut Vec<Seg>) {
        let span = &self.data.spans[op_idx];
        let (s, e) = (span.start.as_nanos(), span.end.as_nanos());
        if depth >= MAX_NEST {
            push_seg(out, s, e, Category::ClientRpc);
            return;
        }
        let id = span.arg("id").unwrap_or(0);
        // Time until the last resend went out is backoff (waiting out
        // timeouts and re-posting); zero when the first attempt answered.
        let last_send = self
            .last_resend(span.pid, id, s, e)
            .unwrap_or(s)
            .clamp(s, e);
        push_seg(out, s, last_send, Category::RetryBackoff);
        match self.service_of(op_idx) {
            Some(ServiceRef::Lfs { qw, svc }) => {
                let qw_span = &self.data.spans[qw];
                // The queue-wait span starts at the request's delivery
                // time: everything before it is wire flight.
                let arrival = qw_span.start.as_nanos().clamp(last_send, e);
                push_seg(out, last_send, arrival, Category::Interconnect);
                match svc {
                    Some(svc) => {
                        let svc_span = &self.data.spans[svc];
                        let svc_s = svc_span.start.as_nanos().clamp(arrival, e);
                        let svc_e = svc_span.end.as_nanos().clamp(svc_s, e);
                        push_seg(out, arrival, svc_s, Category::LfsQueueWait);
                        self.paint_interior(svc, svc_s, svc_e, Category::LfsServe, depth, out);
                        push_seg(out, svc_e, e, Category::Interconnect);
                    }
                    None => {
                        let qw_e = qw_span.end.as_nanos().clamp(arrival, e);
                        push_seg(out, arrival, qw_e, Category::LfsQueueWait);
                        push_seg(out, qw_e, e, Category::Untraced);
                    }
                }
            }
            Some(ServiceRef::Bridge { svc }) => {
                let svc_span = &self.data.spans[svc];
                let svc_s = svc_span.start.as_nanos().clamp(last_send, e);
                let svc_e = svc_span.end.as_nanos().clamp(svc_s, e);
                // The bridge span opens only after the per-request CPU
                // charge; the request's wire arrival comes from its flow.
                let arrival = self
                    .recv_between(span.pid, svc_span.pid, s, svc_s)
                    .unwrap_or(svc_s)
                    .clamp(last_send, svc_s);
                push_seg(out, last_send, arrival, Category::Interconnect);
                push_seg(out, arrival, svc_s, Category::Bridge);
                self.paint_interior(svc, svc_s, svc_e, Category::Bridge, depth, out);
                push_seg(out, svc_e, e, Category::Interconnect);
            }
            None => {
                push_seg(out, last_send, e, Category::Untraced);
            }
        }
    }

    /// Paints `[a, b]` of service span `parent`'s interior: disk
    /// children split into positioning and transfer, nested RPC children
    /// recurse, and uncovered gaps get `default` (the server's own
    /// execution). Overlapping children (pipelined nested RPCs) resolve
    /// innermost-wins, so the output still partitions `[a, b]` exactly.
    fn paint_interior(
        &self,
        parent: usize,
        a: u64,
        b: u64,
        default: Category,
        depth: usize,
        out: &mut Vec<Seg>,
    ) {
        if a >= b {
            return;
        }
        let pid = self.data.spans[parent].pid;
        // Children: disk and client spans on the server pid fully inside
        // the window (the parent span itself is excluded by category).
        let kids: Vec<usize> = self
            .children
            .get(&pid)
            .map(|list| {
                list.iter()
                    .copied()
                    .filter(|&i| {
                        i != parent
                            && self.data.spans[i].start.as_nanos() >= a
                            && self.data.spans[i].end.as_nanos() <= b
                    })
                    .collect()
            })
            .unwrap_or_default();
        if kids.is_empty() {
            push_seg(out, a, b, default);
            return;
        }
        // Each child's own exact timeline, computed first so elementary
        // segments can be labelled by lookup.
        let timelines: Vec<Vec<Seg>> = kids
            .iter()
            .map(|&i| {
                let child = &self.data.spans[i];
                let mut tl = Vec::new();
                if child.cat == "disk" {
                    disk_timeline(child, &mut tl);
                } else {
                    self.op_timeline(i, depth + 1, &mut tl);
                }
                tl
            })
            .collect();
        let mut cuts: Vec<u64> = vec![a, b];
        for tl in &timelines {
            for &(x, y, _) in tl {
                cuts.push(x);
                cuts.push(y);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        for w in cuts.windows(2) {
            let (x, y) = (w[0], w[1]);
            // Innermost covering child wins: latest start, then latest
            // emission order.
            let cover = kids
                .iter()
                .enumerate()
                .filter(|&(_, &i)| {
                    self.data.spans[i].start.as_nanos() <= x
                        && self.data.spans[i].end.as_nanos() >= y
                })
                .max_by_key(|&(_, &i)| (self.data.spans[i].start, i));
            match cover {
                Some((k, _)) => {
                    let cat = timelines[k]
                        .iter()
                        .find(|&&(cx, cy, _)| cx <= x && cy >= y)
                        .map(|&(_, _, c)| c)
                        .unwrap_or(default);
                    push_seg(out, x, y, cat);
                }
                None => push_seg(out, x, y, default),
            }
        }
    }

    /// The default category for uncovered time on `pid`, from its name.
    fn default_category(&self, pid: usize) -> Category {
        let name = self.data.proc_name(pid);
        if name.starts_with("lfs") {
            Category::LfsServe
        } else if name.starts_with("bridge") || name.starts_with("agent") {
            Category::Bridge
        } else {
            Category::ToolCompute
        }
    }

    /// Paints `[a, b]` of `pid`'s timeline into `bd` by the innermost
    /// application span covering each elementary piece; uncovered time
    /// gets the process's default category.
    fn paint_pid_interval(&self, pid: usize, a: u64, b: u64, bd: &mut Breakdown) {
        if a >= b {
            return;
        }
        let default = self.default_category(pid);
        let Some(spans) = self.app_spans.get(&pid) else {
            bd.add(default, b - a);
            return;
        };
        let live: Vec<usize> = spans
            .iter()
            .copied()
            .filter(|&i| {
                self.data.spans[i].start.as_nanos() < b && self.data.spans[i].end.as_nanos() > a
            })
            .collect();
        if live.is_empty() {
            bd.add(default, b - a);
            return;
        }
        let mut cuts: Vec<u64> = vec![a, b];
        for &i in &live {
            let span = &self.data.spans[i];
            cuts.push(span.start.as_nanos().clamp(a, b));
            cuts.push(span.end.as_nanos().clamp(a, b));
            if span.cat == "disk" {
                // Disk spans paint in two colours; cut at the seam.
                let seam = span.start.as_nanos() + position_nanos(span);
                cuts.push(seam.clamp(a, b));
            }
        }
        cuts.sort_unstable();
        cuts.dedup();
        for w in cuts.windows(2) {
            let (x, y) = (w[0], w[1]);
            let cover = live
                .iter()
                .copied()
                .filter(|&i| {
                    self.data.spans[i].start.as_nanos() <= x
                        && self.data.spans[i].end.as_nanos() >= y
                })
                .max_by_key(|&i| (self.data.spans[i].start, i));
            let cat = match cover {
                Some(i) => span_category(&self.data.spans[i], x, default),
                None => default,
            };
            bd.add(cat, y - x);
        }
    }

    /// The run interval on `pid` covering `t`, preferring the one that
    /// *ends* at `t` when two touch there (a send or block at `t` belongs
    /// to the interval that led up to it).
    fn run_covering(&self, pid: usize, t: u64) -> Option<(u64, u64)> {
        let runs = self.runs.get(&pid)?;
        runs.iter()
            .copied()
            .filter(|&(s, e)| s <= t && e >= t)
            .min_by_key(|&(s, _)| s)
    }

    /// The latest run interval on `pid` ending at or before `t`,
    /// excluding the one starting exactly at `t`.
    fn run_before(&self, pid: usize, t: u64) -> Option<(u64, u64)> {
        let runs = self.runs.get(&pid)?;
        runs.iter()
            .copied()
            .filter(|&(s, e)| e <= t && s < t)
            .max_by_key(|&(_, e)| e)
    }
}

/// How a client span's service half was located.
enum ServiceRef {
    /// An LFS request: its queue-wait span, and (normally) the service
    /// span that followed it.
    Lfs { qw: usize, svc: Option<usize> },
    /// A Bridge Server request: the dispatch span.
    Bridge { svc: usize },
}

/// `position` arg clamped to the span's wall time (deferred writes can
/// have busy > wall; attribution never exceeds what elapsed).
fn position_nanos(span: &SpanEvent) -> u64 {
    span.arg("position").unwrap_or(0).min(span.dur_nanos())
}

/// A disk span's exact two-part timeline: positioning then transfer.
fn disk_timeline(span: &SpanEvent, out: &mut Vec<Seg>) {
    let (s, e) = (span.start.as_nanos(), span.end.as_nanos());
    let seam = s + position_nanos(span);
    push_seg(out, s, seam, Category::DiskPosition);
    push_seg(out, seam, e, Category::DiskTransfer);
}

/// The category a span paints at time `x` (disk spans switch colour at
/// their positioning seam).
fn span_category(span: &SpanEvent, x: u64, default: Category) -> Category {
    match span.cat {
        "client" => Category::ClientRpc,
        "bridge" => Category::Bridge,
        "lfs" if span.name == "lfs.queue_wait" => Category::LfsQueueWait,
        "lfs" => Category::LfsServe,
        "disk" => {
            if x < span.start.as_nanos() + position_nanos(span) {
                Category::DiskPosition
            } else {
                Category::DiskTransfer
            }
        }
        "tool" => Category::ToolCompute,
        _ => default,
    }
}

fn push_seg(out: &mut Vec<Seg>, a: u64, b: u64, cat: Category) {
    if b > a {
        out.push((a, b, cat));
    }
}

/// Computes the full profile: one [`OpProfile`] per *top-level* client
/// span (RPCs issued by server processes while serving are folded into
/// their parent op, not double-counted) plus the whole-run critical path.
pub fn profile(data: &TraceData) -> Profile {
    let stitcher = Stitcher::build(data);
    // Server pids: anything that emitted service spans. Client spans on
    // those pids are nested RPCs, already attributed inside their parent.
    let server_pids: HashSet<usize> = data
        .spans
        .iter()
        .filter(|s| s.cat == "bridge" || s.cat == "lfs")
        .map(|s| s.pid)
        .collect();
    let mut ops = Vec::new();
    let mut segs = Vec::new();
    for (idx, span) in data.spans.iter().enumerate() {
        if span.cat != "client" || server_pids.contains(&span.pid) {
            continue;
        }
        segs.clear();
        stitcher.op_timeline(idx, 0, &mut segs);
        let mut breakdown = Breakdown::default();
        for &(x, y, cat) in &segs {
            breakdown.add(cat, y - x);
        }
        debug_assert_eq!(
            breakdown.total(),
            span.dur_nanos(),
            "op timeline must partition the span"
        );
        ops.push(OpProfile {
            client: span.pid,
            server: span.arg("server").unwrap_or(0) as usize,
            id: span.arg("id").unwrap_or(0),
            name: span.name.clone(),
            start_nanos: span.start.as_nanos(),
            end_nanos: span.end.as_nanos(),
            ok: span.arg("ok") == Some(1),
            breakdown,
        });
    }
    Profile {
        critical_path: critical_path(&stitcher),
        ops,
    }
}

/// Backward walk from the last run interval: paint the current process's
/// run time, then follow the flow that woke it (interconnect), or fall
/// back to the gap since its previous run (timeout backoff). Whatever the
/// walk cannot reach is reported untraced, so the total is always exactly
/// the makespan.
fn critical_path(stitcher: &Stitcher<'_>) -> CriticalPath {
    let mut end: Option<(usize, u64)> = None;
    for (&pid, runs) in &stitcher.runs {
        for &(_, e) in runs {
            if end.is_none_or(|(_, cur)| e > cur) {
                end = Some((pid, e));
            }
        }
    }
    let Some((mut pid, mut t)) = end else {
        return CriticalPath::default();
    };
    let makespan = t;
    let mut bd = Breakdown::default();
    let mut hops = 0usize;
    let mut visited_flows: HashSet<u64> = HashSet::new();
    // Zero-latency message cycles at one timestamp cannot loop forever:
    // each flow edge is crossed at most once, and every other step moves
    // strictly backward. The cap is belt and braces.
    let cap = stitcher.data.flows.len() + stitcher.data.spans.len() + 1024;
    for _ in 0..cap {
        if t == 0 {
            break;
        }
        let Some((rs, _)) = stitcher.run_covering(pid, t) else {
            // A gap (e.g. the walk landed between runs): skip back to the
            // previous run, charging the unexplained gap.
            match stitcher.run_before(pid, t) {
                Some((_, prev_end)) => {
                    bd.add(Category::Untraced, t - prev_end);
                    t = prev_end;
                    continue;
                }
                None => break,
            }
        };
        stitcher.paint_pid_interval(pid, rs, t, &mut bd);
        t = rs;
        if t == 0 {
            break;
        }
        // Why did this run start? A message (or spawn) delivered exactly
        // at its start is the cause; follow it back to the sender.
        let edge = stitcher.data.flows.iter().find_map(|f| {
            if f.send || f.to != pid || f.at.as_nanos() != t || visited_flows.contains(&f.id) {
                return None;
            }
            let send = stitcher
                .data
                .flows
                .iter()
                .find(|g| g.send && g.id == f.id)?;
            (send.at.as_nanos() <= t).then_some((f.id, send.from, send.at.as_nanos()))
        });
        match edge {
            Some((flow, from, sent)) => {
                visited_flows.insert(flow);
                bd.add(Category::Interconnect, t - sent);
                hops += 1;
                pid = from;
                t = sent;
            }
            None => match stitcher.run_before(pid, t) {
                // No flow: the process woke itself (a retry timeout or a
                // delay that outlived its run interval).
                Some((_, prev_end)) => {
                    bd.add(Category::RetryBackoff, t - prev_end);
                    t = prev_end;
                }
                None => break,
            },
        }
    }
    // The stretch before the walk's horizon (host-spawned process start,
    // or the safety cap) is unexplained by construction.
    bd.add(Category::Untraced, t);
    debug_assert_eq!(bd.total(), makespan, "walk must partition the makespan");
    CriticalPath {
        makespan_nanos: makespan,
        breakdown: bd,
        hops,
    }
}

/// Audits the causality DAG: every successful client op must stitch to a
/// service span, reach it through a request-leg flow, and return through
/// a reply-leg flow.
///
/// # Errors
///
/// A description of every broken op (capped at ten), or `Ok` when the
/// DAG closes.
pub fn validate_causality(data: &TraceData) -> Result<(), String> {
    let stitcher = Stitcher::build(data);
    let mut errors = Vec::new();
    for (idx, span) in data.spans.iter().enumerate() {
        if span.cat != "client" || span.arg("ok") != Some(1) {
            continue;
        }
        if errors.len() >= 10 {
            break;
        }
        let id = span.arg("id").unwrap_or(0);
        let server = span.arg("server").unwrap_or(0) as usize;
        let (s, e) = (span.start.as_nanos(), span.end.as_nanos());
        let (svc_s, svc_e) = match stitcher.service_of(idx) {
            Some(ServiceRef::Lfs { svc: Some(svc), .. }) | Some(ServiceRef::Bridge { svc }) => {
                let svc = &data.spans[svc];
                (svc.start.as_nanos(), svc.end.as_nanos())
            }
            Some(ServiceRef::Lfs { svc: None, .. }) => {
                errors.push(format!(
                    "{} id {id} (pid {}): queue-wait span has no service span",
                    span.name, span.pid
                ));
                continue;
            }
            None => {
                errors.push(format!(
                    "{} id {id} (pid {}): no service span on server pid {server}",
                    span.name, span.pid
                ));
                continue;
            }
        };
        if stitcher.recv_between(span.pid, server, s, svc_s).is_none() {
            errors.push(format!(
                "{} id {id} (pid {}): no request flow reaches server pid {server}",
                span.name, span.pid
            ));
            continue;
        }
        if stitcher.recv_between(server, span.pid, svc_e, e).is_none() {
            errors.push(format!(
                "{} id {id} (pid {}): no reply flow returns from server pid {server}",
                span.name, span.pid
            ));
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors.join("\n"))
    }
}

/// Serialises a breakdown as a JSON object keyed by category label.
pub(crate) fn breakdown_json(out: &mut String, bd: &Breakdown) {
    out.push('{');
    let mut first = true;
    for (cat, nanos) in bd.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        write_str(out, cat.label());
        let _ = write!(out, ":{nanos}");
    }
    out.push('}');
}

/// Renders a breakdown as an aligned two-column ASCII table with percent
/// of `total` (rows with zero nanos are skipped).
pub(crate) fn breakdown_table(out: &mut String, bd: &Breakdown, total: u64) {
    for (cat, nanos) in bd.iter() {
        if nanos == 0 {
            continue;
        }
        let pct = if total == 0 {
            0.0
        } else {
            nanos as f64 * 100.0 / total as f64
        };
        let _ = writeln!(out, "  {:<16} {:>16} ns  {:>6.2}%", cat.label(), nanos, pct);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::TraceCollector;
    use parsim::{SimConfig, SimDuration, Simulation};

    fn traced_echo_run() -> TraceData {
        let collector = TraceCollector::install();
        let mut sim = Simulation::new(SimConfig {
            tracer: Some(collector.as_tracer()),
            ..SimConfig::default()
        });
        let node = sim.add_node("n0");
        let echo = sim.spawn(node, "echo", |ctx| loop {
            let (from, n) = ctx.recv_as::<u64>();
            ctx.delay(SimDuration::from_micros(5));
            ctx.send(from, n + 1);
        });
        sim.block_on(node, "main", move |ctx| {
            for i in 0..3u64 {
                ctx.send(echo, i);
                let (_, _reply) = ctx.recv_as::<u64>();
            }
        });
        collector.take()
    }

    #[test]
    fn critical_path_partitions_the_makespan() {
        let data = traced_echo_run();
        let p = profile(&data);
        assert_eq!(
            p.critical_path.breakdown.total(),
            p.critical_path.makespan_nanos
        );
        assert!(p.critical_path.makespan_nanos > 0);
        assert!(p.critical_path.hops > 0, "echo round trips cross flows");
        // Interconnect + compute explain the path; nothing big untraced.
        assert!(
            p.critical_path.breakdown.get(Category::Untraced) == 0,
            "fully message-driven run leaves no untraced path time"
        );
    }

    #[test]
    fn spawn_flows_reach_spawned_processes() {
        let collector = TraceCollector::install();
        let mut sim = Simulation::new(SimConfig {
            tracer: Some(collector.as_tracer()),
            ..SimConfig::default()
        });
        let node = sim.add_node("n0");
        sim.block_on(node, "parent", |ctx| {
            let child = ctx.spawn(ctx.node(), "child", |cctx| {
                let (from, n) = cctx.recv_as::<u64>();
                cctx.send(from, n);
            });
            ctx.send(child, 7u64);
            let (_, _r) = ctx.recv_as::<u64>();
        });
        let data = collector.take();
        // One spawn flow: zero bytes, send and recv sides both present.
        let spawn_sends: Vec<_> = data
            .flows
            .iter()
            .filter(|f| f.send && f.bytes == 0)
            .collect();
        assert!(!spawn_sends.is_empty(), "spawn emits a zero-byte flow");
        for send in spawn_sends {
            assert!(
                data.flows.iter().any(|f| !f.send && f.id == send.id),
                "spawn flow {} has a recv side",
                send.id
            );
        }
    }

    #[test]
    fn breakdown_sums_are_exact() {
        let mut bd = Breakdown::default();
        bd.add(Category::DiskPosition, 30);
        bd.add(Category::DiskTransfer, 70);
        assert_eq!(bd.total(), 100);
        assert_eq!(bd.get(Category::DiskPosition), 30);
        let mut other = Breakdown::default();
        other.add(Category::Untraced, 1);
        bd.merge(&other);
        assert_eq!(bd.total(), 101);
    }

    #[test]
    fn validate_causality_accepts_the_empty_trace() {
        assert!(validate_causality(&TraceData::default()).is_ok());
    }
}
