//! Flight recorder: fixed-width virtual-time binning of trace counters.
//!
//! Where [`profile`](crate::profile()) answers *where did each operation's
//! latency go*, the [`TimeSeries`] answers *what was the system doing at
//! minute N*: operations completed, queue-depth high-water, per-disk busy
//! fraction, and retry resends, each binned into equal virtual-time
//! columns. Sampling is a pure post-hoc pass over the recorded
//! [`TraceData`], so it is deterministic and has no effect on the run.

use crate::collect::TraceData;
use crate::json::write_str;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One disk's busy fraction per bin. Disk spans are emitted by the LFS
/// process driving the device, so a "disk" here is identified by that
/// process.
#[derive(Debug, Clone)]
pub struct DiskBusySeries {
    /// Process index of the LFS server driving the disk.
    pub pid: usize,
    /// That process's spawn name (e.g. `"lfs3"`).
    pub name: String,
    /// Busy nanoseconds in each bin divided by the bin width. Deferred
    /// (write-behind) service can push a bin past 1.0; the value is
    /// reported as-is rather than clamped.
    pub busy_fraction: Vec<f64>,
}

/// Per-bin counters over one run, all vectors the same length.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    /// Width of each bin in virtual nanoseconds.
    pub bin_nanos: u64,
    /// Client RPCs whose reply landed in the bin.
    pub ops_completed: Vec<u64>,
    /// Highest LFS queue depth observed at any service start in the bin.
    pub queue_depth_high: Vec<u64>,
    /// `retry.resend` instants in the bin.
    pub retry_resends: Vec<u64>,
    /// Per-disk busy fractions, ordered by process index.
    pub disks: Vec<DiskBusySeries>,
}

impl TimeSeries {
    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.ops_completed.len()
    }

    /// Renders every series as one compact ASCII sparkline per row.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} bins x {:.3} ms",
            self.bins(),
            self.bin_nanos as f64 / 1e6
        );
        render_line(&mut out, "ops completed", &to_f64(&self.ops_completed));
        render_line(&mut out, "queue depth hw", &to_f64(&self.queue_depth_high));
        render_line(&mut out, "retry resends", &to_f64(&self.retry_resends));
        for disk in &self.disks {
            render_line(
                &mut out,
                &format!("{} busy", disk.name),
                &disk.busy_fraction,
            );
        }
        out
    }

    /// Serialises the series as a JSON object (hand-rolled, no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(out, "\"bin_nanos\":{},", self.bin_nanos);
        write_u64_array(&mut out, "ops_completed", &self.ops_completed);
        out.push(',');
        write_u64_array(&mut out, "queue_depth_high", &self.queue_depth_high);
        out.push(',');
        write_u64_array(&mut out, "retry_resends", &self.retry_resends);
        out.push_str(",\"disks\":[");
        for (i, disk) in self.disks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let _ = write!(out, "\"pid\":{},\"name\":", disk.pid);
            write_str(&mut out, &disk.name);
            out.push_str(",\"busy_fraction\":[");
            for (j, f) in disk.busy_fraction.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{f:.6}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Bins the trace's counters into `bins` fixed-width virtual-time
/// columns covering `[0, last_time]`. With an empty trace (or `bins ==
/// 0`) every series is empty.
pub fn sample(data: &TraceData, bins: usize) -> TimeSeries {
    let end = data.last_time().as_nanos();
    if bins == 0 || end == 0 {
        return TimeSeries::default();
    }
    let bin_nanos = end.div_ceil(bins as u64).max(1);
    let bin_of = |t: u64| ((t / bin_nanos) as usize).min(bins - 1);
    let mut series = TimeSeries {
        bin_nanos,
        ops_completed: vec![0; bins],
        queue_depth_high: vec![0; bins],
        retry_resends: vec![0; bins],
        disks: Vec::new(),
    };
    let mut disk_busy: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
    for span in &data.spans {
        match span.cat {
            "client" => series.ops_completed[bin_of(span.end.as_nanos())] += 1,
            "lfs" if span.name == "lfs.queue_wait" => {
                let depth = span.arg("depth").unwrap_or(0);
                let bin = bin_of(span.end.as_nanos());
                let cell = &mut series.queue_depth_high[bin];
                *cell = (*cell).max(depth);
            }
            "disk" => {
                let busy = span.arg("busy").unwrap_or(span.dur_nanos());
                let row = disk_busy.entry(span.pid).or_insert_with(|| vec![0; bins]);
                spread(
                    row,
                    bin_nanos,
                    span.start.as_nanos(),
                    span.end.as_nanos(),
                    busy,
                );
            }
            _ => {}
        }
    }
    for inst in &data.instants {
        if inst.name == "retry.resend" {
            series.retry_resends[bin_of(inst.at.as_nanos())] += 1;
        }
    }
    series.disks = disk_busy
        .into_iter()
        .map(|(pid, row)| DiskBusySeries {
            pid,
            name: data.proc_name(pid).to_string(),
            busy_fraction: row.iter().map(|&ns| ns as f64 / bin_nanos as f64).collect(),
        })
        .collect();
    series
}

/// Distributes `busy` nanoseconds across the bins `[start, end]`
/// overlaps, proportionally to wall-time overlap (all in the start bin
/// for zero-width spans).
fn spread(row: &mut [u64], bin_nanos: u64, start: u64, end: u64, busy: u64) {
    let bins = row.len();
    let clamp_bin = |t: u64| ((t / bin_nanos) as usize).min(bins - 1);
    if end <= start {
        row[clamp_bin(start)] += busy;
        return;
    }
    let wall = end - start;
    let (first, last) = (clamp_bin(start), clamp_bin(end.saturating_sub(1)));
    let mut assigned = 0u64;
    for (bin, cell) in row.iter_mut().enumerate().take(last + 1).skip(first) {
        let bin_start = bin as u64 * bin_nanos;
        let bin_end = bin_start + bin_nanos;
        let overlap = end.min(bin_end).saturating_sub(start.max(bin_start));
        let share = if bin == last {
            busy - assigned
        } else {
            busy * overlap / wall
        };
        *cell += share;
        assigned += share;
    }
}

fn to_f64(values: &[u64]) -> Vec<f64> {
    values.iter().map(|&v| v as f64).collect()
}

/// One sparkline row: a ten-step ASCII ramp scaled to the series max.
fn render_line(out: &mut String, label: &str, values: &[f64]) {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = values.iter().copied().fold(0.0f64, f64::max);
    let _ = write!(out, "  {label:<16} |");
    for &v in values {
        let step = if max <= 0.0 || v <= 0.0 {
            0
        } else {
            (((v / max) * (RAMP.len() - 1) as f64).round() as usize).clamp(1, RAMP.len() - 1)
        };
        out.push(RAMP[step] as char);
    }
    let _ = writeln!(out, "| max {max:.2}");
}

fn write_u64_array(out: &mut String, key: &str, values: &[u64]) {
    write_str(out, key);
    out.push_str(":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{SpanEvent, TraceData};
    use parsim::SimTime;

    fn span(
        pid: usize,
        cat: &'static str,
        name: &str,
        start: u64,
        end: u64,
        args: &[(&'static str, u64)],
    ) -> SpanEvent {
        SpanEvent {
            pid,
            cat,
            name: name.to_string(),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
            args: args.to_vec(),
        }
    }

    #[test]
    fn busy_spread_conserves_nanoseconds() {
        let mut row = vec![0u64; 4];
        spread(&mut row, 250, 100, 900, 800);
        assert_eq!(row.iter().sum::<u64>(), 800);
        assert!(
            row.iter().all(|&b| b > 0),
            "every overlapped bin gets a share"
        );
    }

    #[test]
    fn sample_bins_ops_and_disks() {
        let mut data = TraceData::default();
        data.procs.resize(2, Default::default());
        data.procs[1].name = "lfs0".to_string();
        data.spans
            .push(span(0, "client", "client.lfs.read", 0, 400, &[("id", 1)]));
        data.spans.push(span(
            1,
            "disk",
            "disk.read.load",
            100,
            300,
            &[("busy", 200), ("position", 120)],
        ));
        data.spans
            .push(span(1, "lfs", "lfs.queue_wait", 50, 90, &[("depth", 3)]));
        let s = sample(&data, 4);
        assert_eq!(s.bins(), 4);
        assert_eq!(s.ops_completed.iter().sum::<u64>(), 1);
        assert_eq!(s.queue_depth_high.iter().max(), Some(&3));
        assert_eq!(s.disks.len(), 1);
        assert_eq!(s.disks[0].name, "lfs0");
        let busy: f64 = s.disks[0].busy_fraction.iter().sum::<f64>() * s.bin_nanos as f64;
        assert!((busy - 200.0).abs() < 1e-6, "busy is conserved, got {busy}");
        let json = s.to_json();
        crate::json::parse(&json).expect("series JSON parses");
        assert!(s.render().contains("lfs0 busy"));
    }

    #[test]
    fn empty_trace_yields_empty_series() {
        let s = sample(&TraceData::default(), 8);
        assert_eq!(s.bins(), 0);
    }
}
